"""Write BENCH_PR1.json and BENCH_PR2.json: timing evidence per PR.

Three parts:

1. **Micro benches** (run in-process, median of repeats): the PR1 gate —
   4096 random cuts through one ``CSRGraph.cut_weights`` call vs 4096
   ``DiGraph.cut_weight`` calls (must be >= 5x), plus full cut
   enumeration and sparsifier quality-evaluation timings on both
   engines.
2. **pytest-benchmark medians** for the suite's timed kernels
   (cut-kernel, sparsifier quality, Theorem 1.1/1.2 pipelines), pulled
   from a ``--benchmark-json`` run.  Skipped with ``--micro-only``
   (the micro section alone decides the acceptance gate).
3. **Observability guard** (the PR2 gate, written to BENCH_PR2.json):
   the instrumented hot CSR batch loop with telemetry *disabled* must
   stay within 5% of the BENCH_PR1 baseline — the global switch's off
   path is one attribute load and a branch, and this keeps it honest.
   The enabled/disabled ratio is recorded alongside for context.

Usage::

    PYTHONPATH=src python scripts/bench_report.py \
        [--micro-only] [--pr2-only] [--pr3-only]

``--pr3-only`` re-times the PR2 guard with the PR3 additions (bound
certification and the span-attributed profiler) imported but inactive
and writes BENCH_PR3.json — the new layers must keep the disabled hot
path within the same 5% envelope.

``--pr4-only`` does the same for the PR4 additions (wire capture,
replay, and trace export) imported with no capture installed, and
writes BENCH_PR4.json.

``--pr5-only`` gates the parallel trial-execution engine and writes
BENCH_PR5.json: the full E1-E9 table output must be byte-identical at
every worker count (sha256 digests at jobs 1/2/4), and a blocking
multi-trial workload must reach >= 3x throughput on 4 workers.  A
CPU-bound speedup is recorded alongside when the machine has >= 4
cores, and marked skipped otherwise — fan-out cannot beat physics on a
single-core box, and the digest gate is the determinism evidence that
transfers across machines.

``--pr6-only`` gates the native kernel escalation and writes
BENCH_PR6.json: the native backend must reach a >= 5x geometric-mean
speedup over the python reference across the three ported hot kernels
(Dinic solves, edge contraction, Hadamard coefficient decode), the
shared-memory result arena must beat the executor pickle pipe by
>= 1.5x on large numeric result tables, and the full E1-E9 stdout must
stay byte-identical across every kernels x jobs combination.  Both
performance gates degrade to explicit skip markers (never silent
passes pretending to have measured) when the machine lacks a native
toolchain, the fork start method, or — for the transport gate, whose
win is end-to-end pipe avoidance — a second core to run workers on.

``--pr8-only`` gates the live-observability substrate and writes
BENCH_PR8.json: the PR2 disabled-path guard must still hold with the
live/slo/exporters modules imported, the guard workload with a live
bus + aggregator + SLO engine subscribed must stay within 5% of plain
enabled telemetry, ``run_all --slo`` must exit 6 on a seeded breach
and 0 otherwise, and the full E1-E9 stdout must stay byte-identical
with worker heartbeats streaming at jobs 1/2/4.
"""

import argparse
import json
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import obs  # noqa: E402
from repro.graphs.cuts import all_directed_cut_values  # noqa: E402
from repro.graphs.generators import random_balanced_digraph  # noqa: E402
from repro.sketch.sparsifier import SparsifierSketch  # noqa: E402

GATE_CUTS = 4096
GATE_NODES = 256
BENCH_FILES = [
    "benchmarks/bench_cut_kernel.py",
    "benchmarks/bench_sparsifier_quality.py",
    "benchmarks/bench_theorem11_foreach.py",
    "benchmarks/bench_theorem12_forall.py",
]


def artifact_header():
    """Provenance stamp carried by every BENCH_*.json report.

    Records which kernel backend produced the numbers and — when the
    versioned experiment store exists — the store commit and branch the
    repository was at, so any gate number can be traced back to the run
    lineage it belongs to (and ``obs_store.py bisect --gate`` can trace
    it forward again).
    """
    header = {"generated_at": time.strftime("%Y-%m-%dT%H:%M:%S")}
    try:
        from repro.kernels import get_backend

        backend = get_backend()
        header["kernels"] = {"name": backend.name, "source": backend.source}
    except Exception as exc:  # an unavailable backend must not kill a report
        header["kernels"] = {"error": str(exc)}
    try:
        from repro.obs.store import DEFAULT_STORE, ExperimentStore, StoreError

        store_root = REPO / DEFAULT_STORE
        if ExperimentStore.is_store(store_root):
            store = ExperimentStore.open(store_root)
            kind, value = store.refs.head()
            header["store"] = {
                "commit": store.refs.resolve_head(),
                "branch": value if kind == "branch" else None,
            }
    except StoreError as exc:
        header["store"] = {"error": str(exc)}
    return header


def _write_report(name, report):
    """Stamp the provenance header and write one BENCH_*.json report."""
    report["header"] = artifact_header()
    out_path = REPO / name
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return out_path


def _median_time(fn, repeats=5):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _random_sides(graph, k, rng):
    nodes = graph.nodes()
    n = len(nodes)
    sides = []
    for _ in range(k):
        size = int(rng.integers(1, n))
        picks = rng.choice(n, size=size, replace=False)
        sides.append(frozenset(nodes[i] for i in picks))
    return sides


def micro_benches():
    rng = np.random.default_rng(7)
    out = {}

    # The acceptance gate: one batched kernel call vs GATE_CUTS dict calls.
    g = random_balanced_digraph(GATE_NODES, beta=2.0, density=0.3, rng=GATE_NODES)
    sides = _random_sides(g, GATE_CUTS, rng)
    csr = g.freeze()
    member = csr.membership_matrix(sides)
    csr.cut_weights(member)  # warm the dense adjacency cache
    dict_s = _median_time(lambda: [g.cut_weight(side) for side in sides], repeats=3)
    batch_s = _median_time(lambda: csr.cut_weights(member), repeats=5)
    out["cut_kernel_4096"] = {
        "nodes": GATE_NODES,
        "edges": g.num_edges,
        "cuts": GATE_CUTS,
        "dict_loop_median_s": dict_s,
        "csr_batch_median_s": batch_s,
        "speedup": dict_s / batch_s,
    }

    # Full 2^(n-1) directed cut enumeration, both engines.
    g16 = random_balanced_digraph(16, beta=2.0, density=0.5, rng=16)
    dict_enum = _median_time(
        lambda: list(all_directed_cut_values(g16, engine="dict")), repeats=3
    )
    csr_enum = _median_time(
        lambda: list(all_directed_cut_values(g16, engine="csr")), repeats=3
    )
    out["cut_enumeration_n16"] = {
        "nodes": 16,
        "cuts": 2 ** 15 - 1,
        "dict_engine_median_s": dict_enum,
        "csr_engine_median_s": csr_enum,
        "speedup": dict_enum / csr_enum,
    }

    # Sparsifier quality evaluation: every cut error via query_many vs query.
    gq = random_balanced_digraph(14, beta=2.0, density=0.5, rng=14)
    sketch = SparsifierSketch(gq, 0.5, rng=3, constant=0.4)
    pairs = list(all_directed_cut_values(gq, engine="csr"))
    eval_sides = [side for side, _ in pairs]

    def looped():
        return [sketch.query(set(side)) for side in eval_sides]

    def batched():
        return sketch.query_many(eval_sides)

    loop_s = _median_time(looped, repeats=3)
    batch_q = _median_time(batched, repeats=3)
    out["sparsifier_quality_n14"] = {
        "nodes": 14,
        "cuts": len(eval_sides),
        "query_loop_median_s": loop_s,
        "query_many_median_s": batch_q,
        "speedup": loop_s / batch_q,
    }
    return out


def obs_guard():
    """Time the hot CSR batch loop with telemetry off and on.

    Returns the BENCH_PR2 payload.  The gate compares the disabled-path
    timing against the committed BENCH_PR1 baseline when one exists
    (same benchmark, same machine class); the enabled run uses the
    global registry with no sink, i.e. pure metering cost.
    """
    rng = np.random.default_rng(7)
    g = random_balanced_digraph(GATE_NODES, beta=2.0, density=0.3, rng=GATE_NODES)
    sides = _random_sides(g, GATE_CUTS, rng)
    csr = g.freeze()
    member = csr.membership_matrix(sides)
    csr.cut_weights(member)  # warm the dense adjacency cache

    obs.disable()
    disabled_s = _median_time(lambda: csr.cut_weights(member), repeats=9)
    with obs.enabled():
        enabled_s = _median_time(lambda: csr.cut_weights(member), repeats=9)
        obs.reset_metrics()

    out = {
        "nodes": GATE_NODES,
        "edges": g.num_edges,
        "cuts": GATE_CUTS,
        "disabled_median_s": disabled_s,
        "enabled_median_s": enabled_s,
        "enabled_over_disabled": enabled_s / disabled_s,
    }
    baseline_path = REPO / "BENCH_PR1.json"
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        pr1 = (
            baseline.get("micro", {})
            .get("cut_kernel_4096", {})
            .get("csr_batch_median_s")
        )
        if pr1:
            out["pr1_baseline_s"] = pr1
            out["disabled_over_pr1"] = disabled_s / pr1
    return out


def pytest_benchmark_medians():
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *BENCH_FILES,
        "--benchmark-only",
        f"--benchmark-json={json_path}",
        "-q",
    ]
    proc = subprocess.run(
        cmd,
        cwd=REPO,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"},
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return {"error": proc.stdout[-2000:] + proc.stderr[-2000:]}
    data = json.loads(Path(json_path).read_text())
    return {
        bench["fullname"]: {"median_s": bench["stats"]["median"]}
        for bench in data["benchmarks"]
    }


def write_pr2_report():
    guard = obs_guard()
    ratio = guard.get("disabled_over_pr1", guard["enabled_over_disabled"])
    report = {
        "obs_guard": guard,
        "gate": {
            "requirement": (
                "instrumented cut_weights on 4096 cuts, telemetry disabled, "
                "within 5% of the BENCH_PR1 baseline"
            ),
            "ratio": ratio,
            "passed": ratio <= 1.05,
        },
    }
    _write_report("BENCH_PR2.json", report)
    print(
        f"obs guard ratio: {ratio:.3f}x "
        f"({'PASS' if report['gate']['passed'] else 'FAIL'})"
    )


def write_pr3_report():
    """The PR3 gate: the PR2 guard must still hold with the bound-
    certification and profiler modules imported (profiler constructed
    but never started) — importing the new observability layers must
    not put anything on the disabled hot path.
    """
    from repro.obs import bounds, profile  # noqa: F401

    profiler = profile.SpanProfiler()  # imported and instantiated, never started
    assert not profiler.running
    guard = obs_guard()
    ratio = guard.get("disabled_over_pr1", guard["enabled_over_disabled"])
    report = {
        "obs_guard": guard,
        "profiler_imported": True,
        "profiler_running": profiler.running,
        "bound_specs_registered": len(bounds.registered_specs()),
        "gate": {
            "requirement": (
                "instrumented cut_weights on 4096 cuts, telemetry disabled, "
                "profiler module imported but off, within 5% of the "
                "BENCH_PR1 baseline"
            ),
            "ratio": ratio,
            "passed": ratio <= 1.05,
        },
    }
    _write_report("BENCH_PR3.json", report)
    print(
        f"obs guard ratio (profiler imported): {ratio:.3f}x "
        f"({'PASS' if report['gate']['passed'] else 'FAIL'})"
    )


def write_pr4_report():
    """The PR4 gate: the guard must still hold with the wire-capture,
    replay, and export modules imported but no capture installed — the
    capture hook is one list-truthiness check on the hot path, and the
    export/replay layers must stay entirely off it.
    """
    from repro.obs import capture, export, replay  # noqa: F401

    assert capture.active() is None  # imported, nothing installed
    guard = obs_guard()
    ratio = guard.get("disabled_over_pr1", guard["enabled_over_disabled"])
    report = {
        "obs_guard": guard,
        "capture_imported": True,
        "capture_installed": capture.active() is not None,
        "replay_families": list(replay.GAME_FAMILIES),
        "gate": {
            "requirement": (
                "instrumented cut_weights on 4096 cuts, telemetry disabled, "
                "wire capture module imported but not installed, within 5% "
                "of the BENCH_PR1 baseline"
            ),
            "ratio": ratio,
            "passed": ratio <= 1.05,
        },
    }
    _write_report("BENCH_PR4.json", report)
    print(
        f"obs guard ratio (capture imported): {ratio:.3f}x "
        f"({'PASS' if report['gate']['passed'] else 'FAIL'})"
    )


def _run_all_digest(jobs, kernels=None, live=False, memory=False):
    """Sha256 of the complete E1-E9 stdout at a given worker count.

    ``live=True`` installs a live bus + aggregator around the run —
    turning worker heartbeats and parent-side tick draining on — to
    prove the live path never touches stdout (the PR8 digest gate).
    ``memory=True`` turns the measured-space profiler on, so footprint
    sizes feed the ``*.space_bytes`` bound checks that print on stdout
    — the PR9 digest gate proves those measurements are deterministic
    across worker counts.
    """
    import contextlib
    import hashlib
    import io

    from repro.experiments.run_all import main as run_all_main
    from repro.obs import live as live_mod

    argv = ["--no-telemetry"]
    if jobs is not None:
        argv += ["--jobs", str(jobs)]
    if kernels is not None:
        argv += ["--kernels", kernels]
    if memory:
        argv += ["--memory"]
    buf = io.StringIO()
    live_cm = (
        live_mod.publishing(live_mod.LiveBus())
        if live
        else contextlib.nullcontext()
    )
    with live_cm as bus, contextlib.redirect_stdout(buf):
        if bus is not None:
            live_mod.LiveAggregator().attach(bus)
        rc = run_all_main(argv)
    if rc != 0:
        raise RuntimeError(
            f"run_all failed with jobs={jobs}, kernels={kernels} (rc={rc})"
        )
    text = buf.getvalue()
    digest = {
        "jobs": 1 if jobs is None else jobs,
        "bytes": len(text),
        "sha256": hashlib.sha256(text.encode()).hexdigest(),
    }
    if kernels is not None:
        digest["kernels"] = kernels
    if live:
        digest["live"] = True
    if memory:
        digest["memory"] = True
    return digest


def _blocking_trial_pr5(rng):
    time.sleep(0.35)
    return float(rng.random())


def _cpu_trial_pr5(rng):
    total = 0
    for value in rng.integers(0, 1 << 16, size=20000).tolist():
        total = (total * 31 + value) % 1000003
    return total


def write_pr5_report():
    """The PR5 gate: parallel fan-out is fast AND invisible in results."""
    import os

    from repro.parallel import fork_available, run_trials

    report = {}

    # Determinism gate: byte-identical E1-E9 output at every worker count.
    digests = [_run_all_digest(jobs) for jobs in (None, 2, 4)]
    identical = len({d["sha256"] for d in digests}) == 1
    report["run_all_digests"] = digests
    report["digest_gate"] = {
        "requirement": "full E1-E9 stdout byte-identical at jobs 1/2/4",
        "passed": identical,
    }

    # Throughput gate: a blocking multi-trial workload (the distributed
    # experiment shape — trials dominated by waiting) on 4 workers.
    def timed(jobs):
        start = time.perf_counter()
        results = run_trials(
            _blocking_trial_pr5, 16, np.random.default_rng(1), jobs=jobs
        )
        return time.perf_counter() - start, results

    if fork_available():
        serial_s, serial_results = timed(1)
        parallel_s, parallel_results = timed(4)
        speedup = serial_s / parallel_s
        report["blocking_workload"] = {
            "trials": 16,
            "sleep_per_trial_s": 0.35,
            "serial_median_s": serial_s,
            "jobs4_median_s": parallel_s,
            "speedup": speedup,
            "results_identical": parallel_results == serial_results,
        }
        report["throughput_gate"] = {
            "requirement": "16 blocking trials >= 3x faster on 4 workers",
            "speedup": speedup,
            "passed": speedup >= 3.0 and parallel_results == serial_results,
        }
    else:
        report["throughput_gate"] = {
            "requirement": "16 blocking trials >= 3x faster on 4 workers",
            "skipped": "fork start method unavailable",
            "passed": True,
        }

    # CPU-bound scaling: informative on >= 4 physical cores, marked
    # skipped (not failed) below that — single-core fan-out cannot beat
    # physics, and the digest gate carries the determinism evidence.
    cores = os.cpu_count() or 1
    if fork_available() and cores >= 4:
        def timed_cpu(jobs):
            start = time.perf_counter()
            run_trials(
                _cpu_trial_pr5, 16, np.random.default_rng(2), jobs=jobs
            )
            return time.perf_counter() - start

        cpu_serial = min(timed_cpu(1) for _ in range(3))
        cpu_parallel = min(timed_cpu(4) for _ in range(3))
        report["cpu_workload"] = {
            "cores": cores,
            "serial_best_s": cpu_serial,
            "jobs4_best_s": cpu_parallel,
            "speedup": cpu_serial / cpu_parallel,
        }
    else:
        report["cpu_workload"] = {
            "cores": cores,
            "skipped": "skipped_insufficient_cores"
            if fork_available()
            else "fork start method unavailable",
        }

    passed = (
        report["digest_gate"]["passed"]
        and report["throughput_gate"]["passed"]
    )
    report["gate"] = {
        "requirement": (
            "byte-identical E1-E9 digests at jobs 1/2/4 AND >= 3x on the "
            "blocking 4-worker workload"
        ),
        "passed": passed,
    }
    _write_report("BENCH_PR5.json", report)
    print(
        "digest gate: %s; throughput gate: %s"
        % (
            "PASS" if report["digest_gate"]["passed"] else "FAIL",
            "PASS" if report["throughput_gate"]["passed"] else "FAIL",
        )
    )
    if not passed:
        sys.exit(1)


def _geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def write_pr6_report():
    """The PR6 gate: native kernels are fast, equal, and optional."""
    import os

    from repro.graphs.generators import random_balanced_digraph
    from repro.kernels import (
        KernelUnavailableError,
        reference,
        using_backend,
    )
    from repro.linalg.hadamard import Lemma32Matrix
    from repro.parallel import TrialPool, fork_available, shmipc

    report = {}

    try:
        from repro.kernels import native

        nat = native.load_native()
    except KernelUnavailableError as exc:
        nat = None
        report["native_toolchain"] = f"unavailable: {exc}"
    else:
        report["native_toolchain"] = f"{nat.source} ({nat.meta})"

    def best(fn, repeats=3):
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    # Kernel gate: >= 5x geomean over the three ported hot kernels.
    if nat is not None:
        kernels = {}

        g = random_balanced_digraph(200, beta=2.0, density=0.15, rng=200)
        csr = g.freeze()

        def dinic():
            return [csr.max_flow(0, t).value for t in range(1, 6)]

        with using_backend("python"):
            py_s, py_values = best(dinic), dinic()
        with using_backend("native"):
            nat_s, nat_values = best(dinic), dinic()
        assert py_values == nat_values
        kernels["dinic"] = {
            "workload": "5 max-flow solves, n=200 balanced digraph",
            "python_s": py_s,
            "native_s": nat_s,
            "speedup": py_s / nat_s,
        }

        gen = np.random.default_rng(12)
        n, m = 400, 12000
        tails = gen.integers(0, n, size=m).astype(np.int64)
        heads = ((tails + 1 + gen.integers(0, n - 1, size=m)) % n).astype(
            np.int64
        )
        weights = gen.random(m) + 0.5
        uniforms = gen.random(n)

        def contract(kernel):
            parent = np.arange(n, dtype=np.int64)
            return kernel(tails, heads, weights, parent, n, 2, uniforms)

        py_s = best(lambda: contract(reference.contract_to))
        nat_s = best(lambda: contract(nat.contract_to))
        assert contract(reference.contract_to) == contract(nat.contract_to)
        kernels["contraction"] = {
            "workload": "full contraction to 2 supernodes, n=400 m=12000",
            "python_s": py_s,
            "native_s": nat_s,
            "speedup": py_s / nat_s,
        }

        matrix = Lemma32Matrix(16)
        x = gen.integers(-30, 30, size=matrix.row_length).astype(np.float64)

        def decode():
            return [
                matrix.decode_coefficient(x, t)
                for t in range(matrix.num_rows)
            ]

        with using_backend("python"):
            py_s, py_coeffs = best(decode), decode()
        with using_backend("native"):
            nat_s, nat_coeffs = best(decode), decode()
        assert py_coeffs == nat_coeffs
        kernels["hadamard_decode"] = {
            "workload": "225 single-coefficient decodes, side=16",
            "python_s": py_s,
            "native_s": nat_s,
            "speedup": py_s / nat_s,
        }

        geomean = _geomean([k["speedup"] for k in kernels.values()])
        report["kernels"] = kernels
        report["kernel_gate"] = {
            "requirement": (
                "native >= 5x geometric-mean speedup over the python "
                "reference on dinic + contraction + hadamard decode"
            ),
            "geomean_speedup": geomean,
            "passed": geomean >= 5.0,
        }
    else:
        report["kernel_gate"] = {
            "requirement": (
                "native >= 5x geometric-mean speedup over the python "
                "reference on dinic + contraction + hadamard decode"
            ),
            "skipped": "no native toolchain (numba or a C compiler)",
            "passed": True,
        }

    # Transport gate: shared-memory result tables vs the pickle pipe.
    # The win is pipe avoidance, so it is only observable end-to-end;
    # on a single core the forked workers and the parent fight for the
    # same CPU and the measurement is scheduler noise, so (PR5
    # precedent) the numbers are recorded but the gate is skipped.
    transport_requirement = (
        "shared-memory arena >= 1.5x (median of 5) over the pickle "
        "pipe on 96 x 2MiB numeric results"
    )
    cores = os.cpu_count() or 1
    if fork_available():
        os.environ[shmipc.SHM_SLOT_ENV] = str(128 << 20)

        def payload(i):
            return np.full(262144, float(i))  # 2 MiB per result

        items = list(range(96))

        def timed_transport(enabled):
            os.environ[shmipc.SHM_ENV] = "1" if enabled else "0"
            pool = TrialPool(jobs=2, chunk_factor=2)
            times = []
            for _ in range(5):
                start = time.perf_counter()
                pool.map(payload, items)
                times.append(time.perf_counter() - start)
            return statistics.median(times), dict(pool.last_transport_stats)

        try:
            pickle_s, pickle_stats = timed_transport(False)
            shm_s, shm_stats = timed_transport(True)
        finally:
            os.environ.pop(shmipc.SHM_ENV, None)
            os.environ.pop(shmipc.SHM_SLOT_ENV, None)
        speedup = pickle_s / shm_s
        report["transport"] = {
            "trials": len(items),
            "bytes_per_result": 262144 * 8,
            "pickle_median_s": pickle_s,
            "shm_median_s": shm_s,
            "pickle_stats": pickle_stats,
            "shm_stats": shm_stats,
            "speedup": speedup,
        }
        if cores >= 2:
            report["transport_gate"] = {
                "requirement": transport_requirement,
                "speedup": speedup,
                "passed": speedup >= 1.5
                and shm_stats["pickle_chunks"] == 0
                and pickle_stats["shm_chunks"] == 0,
            }
        else:
            report["transport_gate"] = {
                "requirement": transport_requirement,
                "speedup": speedup,
                "skipped": "skipped_insufficient_cores",
                "passed": True,
            }
    else:
        report["transport_gate"] = {
            "requirement": transport_requirement,
            "skipped": "fork start method unavailable",
            "passed": True,
        }

    # Determinism gate: byte-identical E1-E9 output across every
    # backend x worker-count combination.
    backends = ["python"] + (["native"] if nat is not None else [])
    digests = [
        _run_all_digest(jobs, kernels=backend)
        for backend in backends
        for jobs in (None, 2, 4)
    ]
    identical = len({d["sha256"] for d in digests}) == 1
    report["run_all_digests"] = digests
    report["digest_gate"] = {
        "requirement": (
            "full E1-E9 stdout byte-identical across kernels "
            f"{backends} x jobs 1/2/4"
        ),
        "passed": identical,
    }

    passed = (
        report["kernel_gate"]["passed"]
        and report["transport_gate"]["passed"]
        and report["digest_gate"]["passed"]
    )
    report["gate"] = {
        "requirement": (
            ">= 5x kernel geomean AND >= 1.5x shm transport AND "
            "byte-identical digests across backends and worker counts"
        ),
        "passed": passed,
    }
    _write_report("BENCH_PR6.json", report)
    print(
        "kernel gate: %s; transport gate: %s; digest gate: %s"
        % (
            "PASS"
            if report["kernel_gate"]["passed"]
            else "FAIL",
            "PASS"
            if report["transport_gate"]["passed"]
            else "FAIL",
            "PASS" if report["digest_gate"]["passed"] else "FAIL",
        )
    )
    if not passed:
        sys.exit(1)


def write_pr8_report():
    """The PR8 gates: the live-observability substrate must be free
    when idle and near-free when watching.

    1. Disabled path unchanged: the PR2 obs guard still holds with the
       live/slo/exporters modules imported but no bus installed.
    2. Live path <= 1.05x: the same workload, spans flowing, with a bus
       + aggregator + SLO engine subscribed vs. plain enabled telemetry.
    3. run_all --slo exits 6 on a seeded breach and 0 otherwise.
    4. E1-E9 stdout digests stay byte-identical with heartbeats on at
       jobs 1/2/4 (and equal to the no-live serial digest).
    """
    import contextlib
    import io
    import os
    import tempfile

    from repro.experiments.run_all import EXIT_SLO_BREACH
    from repro.experiments.run_all import main as run_all_main
    from repro.obs import exporters, live, slo  # noqa: F401

    assert live.active() is None  # imported, nothing installed
    guard = obs_guard()
    ratio = guard.get("disabled_over_pr1", guard["enabled_over_disabled"])
    report = {"obs_guard": guard}
    report["disabled_gate"] = {
        "requirement": (
            "instrumented cut_weights on 4096 cuts, telemetry disabled, "
            "live/slo/exporters modules imported but no bus installed, "
            "within 5% of the BENCH_PR1 baseline"
        ),
        "ratio": ratio,
        "passed": ratio <= 1.05,
    }

    # Live-enabled overhead: the guard workload wrapped in a span (so
    # records actually flow through the sink.emit tee) with telemetry
    # on — once bare, once with a bus + aggregator + default-rule SLO
    # engine subscribed.
    rng = np.random.default_rng(7)
    g = random_balanced_digraph(
        GATE_NODES, beta=2.0, density=0.3, rng=GATE_NODES
    )
    sides = _random_sides(g, GATE_CUTS, rng)
    csr = g.freeze()
    member = csr.membership_matrix(sides)
    csr.cut_weights(member)  # warm the dense adjacency cache

    def spanned():
        with obs.span("bench.cut_weights"):
            csr.cut_weights(member)

    with obs.enabled():
        plain_s = _median_time(spanned, repeats=9)
        obs.reset_metrics()
    bus = live.LiveBus()
    aggregator = live.LiveAggregator().attach(bus)
    slo.SloEngine(slo.default_rules(), aggregator=aggregator).attach(bus)
    with obs.enabled(), live.publishing(bus):
        live_s = _median_time(spanned, repeats=9)
        obs.reset_metrics()
    live_ratio = live_s / plain_s
    report["live_path"] = {
        "plain_enabled_median_s": plain_s,
        "live_enabled_median_s": live_s,
        "bus_records": bus.published,
        "subscriber_errors": len(bus.errors),
    }
    report["live_gate"] = {
        "requirement": (
            "spanned cut_weights on 4096 cuts with a live bus, "
            "aggregator, and SLO engine subscribed within 5% of plain "
            "enabled telemetry"
        ),
        "ratio": live_ratio,
        "passed": live_ratio <= 1.05 and not bus.errors,
    }

    # Seeded SLO breach: a deliberately tight metric threshold on E3
    # must exit 6; a loose one must exit 0.
    def slo_rc(spec):
        buf = io.StringIO()
        with tempfile.TemporaryDirectory() as tmp:
            argv = [
                "--telemetry",
                os.path.join(tmp, "telemetry.jsonl"),
                f"--slo={spec}",
                "e3",
            ]
            with contextlib.redirect_stdout(buf):
                return run_all_main(argv)

    tight_rc = slo_rc("metric:oracle.query.neighbor<=10")
    loose_rc = slo_rc("metric:oracle.query.neighbor<=1000000000")
    report["slo_exit"] = {"tight_rc": tight_rc, "loose_rc": loose_rc}
    report["slo_gate"] = {
        "requirement": (
            f"run_all --slo exits {EXIT_SLO_BREACH} on a seeded breach "
            "and 0 otherwise"
        ),
        "passed": tight_rc == EXIT_SLO_BREACH and loose_rc == 0,
    }

    # Heartbeat digest gate: full E1-E9 stdout with a bus installed and
    # every-trial heartbeats must stay byte-identical across worker
    # counts — and identical to the no-live serial run.
    os.environ["REPRO_HEARTBEAT_S"] = "0"  # beat on every trial
    try:
        baseline = _run_all_digest(None)
        live_digests = [
            _run_all_digest(jobs, live=True) for jobs in (None, 2, 4)
        ]
    finally:
        os.environ.pop("REPRO_HEARTBEAT_S", None)
    shas = {d["sha256"] for d in live_digests} | {baseline["sha256"]}
    report["run_all_digests"] = [baseline] + live_digests
    report["digest_gate"] = {
        "requirement": (
            "full E1-E9 stdout byte-identical with heartbeats on at "
            "jobs 1/2/4 and equal to the no-live serial digest"
        ),
        "passed": len(shas) == 1,
    }

    passed = (
        report["disabled_gate"]["passed"]
        and report["live_gate"]["passed"]
        and report["slo_gate"]["passed"]
        and report["digest_gate"]["passed"]
    )
    report["gate"] = {
        "requirement": (
            "disabled path unchanged AND live bus + SLO <= 1.05x AND "
            "seeded --slo exit codes AND heartbeat digests identical"
        ),
        "passed": passed,
    }
    _write_report("BENCH_PR8.json", report)
    print(
        "disabled gate: %s; live gate: %s (%.3fx); slo gate: %s; "
        "digest gate: %s"
        % (
            "PASS" if report["disabled_gate"]["passed"] else "FAIL",
            "PASS" if report["live_gate"]["passed"] else "FAIL",
            live_ratio,
            "PASS" if report["slo_gate"]["passed"] else "FAIL",
            "PASS" if report["digest_gate"]["passed"] else "FAIL",
        )
    )
    if not passed:
        sys.exit(1)


def write_pr9_report():
    """The PR9 gates: measured-space observability must be free when
    off and deterministic when on.

    1. Disabled path unchanged: the PR2 obs guard still holds with the
       memory module imported but no profiler active.
    2. Sampling-mode overhead recorded: the spanned guard workload with
       a sample-mode profiler running vs. plain enabled telemetry (the
       RSS sampler lives on its own thread, so this is informational —
       the hard gate is the disabled path).
    3. run_all --memory --slo exits 6 on a seeded rss:/mem: breach and
       0 on a loose one.
    4. E1-E9 stdout digests — including every ``*.space_bytes`` bound
       check printed from measured footprints — stay byte-identical
       with --memory on at jobs 1/2/4.
    """
    import contextlib
    import io
    import os
    import tempfile

    from repro.experiments.run_all import EXIT_SLO_BREACH
    from repro.experiments.run_all import main as run_all_main
    from repro.obs import memory

    assert memory.active() is None  # imported, nothing profiling
    guard = obs_guard()
    ratio = guard.get("disabled_over_pr1", guard["enabled_over_disabled"])
    report = {"obs_guard": guard}
    report["disabled_gate"] = {
        "requirement": (
            "instrumented cut_weights on 4096 cuts, telemetry disabled, "
            "memory module imported but no profiler active, within 5% "
            "of the BENCH_PR1 baseline"
        ),
        "ratio": ratio,
        "passed": ratio <= 1.05,
    }

    # Sampling-mode overhead: the spanned guard workload with a
    # sample-mode profiler (background RSS thread + span boundary
    # checkpoints) vs. plain enabled telemetry.  Recorded, not gated.
    rng = np.random.default_rng(7)
    g = random_balanced_digraph(
        GATE_NODES, beta=2.0, density=0.3, rng=GATE_NODES
    )
    sides = _random_sides(g, GATE_CUTS, rng)
    csr = g.freeze()
    member = csr.membership_matrix(sides)
    csr.cut_weights(member)  # warm the dense adjacency cache

    def spanned():
        with obs.span("bench.cut_weights"):
            csr.cut_weights(member)

    with obs.enabled():
        plain_s = _median_time(spanned, repeats=9)
        obs.reset_metrics()
    with obs.enabled(), memory.profiling(mode=memory.SAMPLE) as profiler:
        sample_s = _median_time(spanned, repeats=9)
        obs.reset_metrics()
    sample_ratio = sample_s / plain_s
    report["sampling_overhead"] = {
        "plain_enabled_median_s": plain_s,
        "sample_mode_median_s": sample_s,
        "ratio": sample_ratio,
        "rss_samples": profiler.rss_record()["samples"],
    }

    # Seeded SLO breach: an unreachably tight rss: ceiling (any live
    # process has more than 1000 resident bytes) must exit 6; a loose
    # one must exit 0.  Both run with --memory so the aggregator
    # actually has RSS records to judge.
    def slo_rc(spec):
        buf = io.StringIO()
        with tempfile.TemporaryDirectory() as tmp:
            argv = [
                "--telemetry",
                os.path.join(tmp, "telemetry.jsonl"),
                "--memory",
                f"--slo={spec}",
                "e1",
            ]
            with contextlib.redirect_stdout(buf):
                return run_all_main(argv)

    tight_rc = slo_rc("rss:<=1000")
    loose_rc = slo_rc("rss:<=1000000000000")
    report["slo_exit"] = {"tight_rc": tight_rc, "loose_rc": loose_rc}
    report["slo_gate"] = {
        "requirement": (
            f"run_all --memory --slo exits {EXIT_SLO_BREACH} on a "
            "seeded rss: breach and 0 otherwise"
        ),
        "passed": tight_rc == EXIT_SLO_BREACH and loose_rc == 0,
    }

    # Memory digest gate: full E1-E9 stdout with --memory on (footprint
    # measurements feeding the *.space_bytes bound checks) must stay
    # byte-identical across worker counts.  Compared among themselves:
    # the extra bound-check lines mean the text legitimately differs
    # from a no-memory run.
    os.environ["REPRO_HEARTBEAT_S"] = "0"  # beat on every trial
    try:
        digests = [
            _run_all_digest(jobs, memory=True) for jobs in (None, 2, 4)
        ]
    finally:
        os.environ.pop("REPRO_HEARTBEAT_S", None)
    report["run_all_digests"] = digests
    report["digest_gate"] = {
        "requirement": (
            "full E1-E9 stdout (measured space_bytes bound checks "
            "included) byte-identical with --memory at jobs 1/2/4"
        ),
        "passed": len({d["sha256"] for d in digests}) == 1,
    }

    passed = (
        report["disabled_gate"]["passed"]
        and report["slo_gate"]["passed"]
        and report["digest_gate"]["passed"]
    )
    report["gate"] = {
        "requirement": (
            "disabled path unchanged AND seeded --memory --slo exit "
            "codes AND memory digests identical at jobs 1/2/4"
        ),
        "passed": passed,
    }
    _write_report("BENCH_PR9.json", report)
    print(
        "disabled gate: %s; sampling overhead: %.3fx (recorded); "
        "slo gate: %s; digest gate: %s"
        % (
            "PASS" if report["disabled_gate"]["passed"] else "FAIL",
            sample_ratio,
            "PASS" if report["slo_gate"]["passed"] else "FAIL",
            "PASS" if report["digest_gate"]["passed"] else "FAIL",
        )
    )
    if not passed:
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--micro-only",
        action="store_true",
        help="skip the pytest-benchmark suite run",
    )
    parser.add_argument(
        "--pr2-only",
        action="store_true",
        help="only run the observability guard and write BENCH_PR2.json",
    )
    parser.add_argument(
        "--pr3-only",
        action="store_true",
        help="only run the profiler-imported guard and write BENCH_PR3.json",
    )
    parser.add_argument(
        "--pr4-only",
        action="store_true",
        help="only run the capture-imported guard and write BENCH_PR4.json",
    )
    parser.add_argument(
        "--pr5-only",
        action="store_true",
        help="only run the parallel-engine gates and write BENCH_PR5.json",
    )
    parser.add_argument(
        "--pr6-only",
        action="store_true",
        help="only run the kernel-backend gates and write BENCH_PR6.json",
    )
    parser.add_argument(
        "--pr8-only",
        action="store_true",
        help="only run the live-observability gates and write "
        "BENCH_PR8.json",
    )
    parser.add_argument(
        "--pr9-only",
        action="store_true",
        help="only run the measured-space observability gates and "
        "write BENCH_PR9.json",
    )
    args = parser.parse_args()

    if args.pr9_only:
        write_pr9_report()
        return

    if args.pr8_only:
        write_pr8_report()
        return

    if args.pr6_only:
        write_pr6_report()
        return

    if args.pr5_only:
        write_pr5_report()
        return

    if args.pr4_only:
        write_pr4_report()
        return

    if args.pr3_only:
        write_pr3_report()
        return

    if not args.pr2_only:
        report = {"micro": micro_benches()}
        if not args.micro_only:
            report["pytest_benchmarks"] = pytest_benchmark_medians()

        gate = report["micro"]["cut_kernel_4096"]["speedup"]
        report["gate"] = {
            "requirement": "cut_weights on 4096 cuts >= 5x faster than looped cut_weight",
            "speedup": gate,
            "passed": gate >= 5.0,
        }

        _write_report("BENCH_PR1.json", report)
        print(f"gate speedup: {gate:.1f}x ({'PASS' if gate >= 5.0 else 'FAIL'})")

    write_pr2_report()


if __name__ == "__main__":
    main()
