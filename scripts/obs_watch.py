#!/usr/bin/env python
"""Live ASCII dashboard over a running ``run_all`` experiment.

Tails either output of the live exporters (:mod:`repro.obs.exporters`)
and redraws a terminal dashboard — windowed span percentiles, bound
slack margins, counter rates, worker liveness, and SLO violations —
while the experiment is still going:

* ``--follow PATH`` tails the ``--live-export`` JSONL stream, folding
  records through a :class:`repro.obs.live.LiveAggregator` (and
  preferring the exporter's own ``live.snapshot`` frames when present,
  so worker state and counter rates match the producing process);
* ``--url http://127.0.0.1:PORT`` polls the ``--live-port`` HTTP
  endpoint instead (``/snapshot`` JSON; falls back to rendering the
  raw ``/metrics`` Prometheus text when no aggregator is attached);
* ``--announce PATH`` resolves the poll URL from a stderr announcement
  file (``label: url`` lines, :mod:`repro.obs.announce`) — the
  ephemeral-port pattern: launch with ``--live-port 0`` (or the
  serving daemon's ``--metrics-port 0``) redirecting stderr to PATH,
  then watch without knowing the bound port.  ``--announce-label``
  picks the line (default ``live metrics``; the serving daemon
  announces ``serving metrics``).

Usage::

    PYTHONPATH=src python -m repro.experiments.run_all --slo \\
        --live-export=live.jsonl &
    PYTHONPATH=src python scripts/obs_watch.py --follow live.jsonl

    PYTHONPATH=src python scripts/obs_watch.py \\
        --url http://127.0.0.1:9464 --once

Runs producing ``memory`` events (``run_all --memory``) add a memory
panel: peak RSS, a per-worker RSS sparkline built from the heartbeat
``rss`` fields across frames, and the top span allocators.

``--once`` renders a single frame and exits (CI smoke tests) — exit
code 1 when the snapshot source is unreachable (no such file / nothing
listening on the URL) instead of rendering an empty frame.
``--interval`` tunes the redraw cadence.  Interrupt with Ctrl-C.
"""

import argparse
import collections
import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.errors import ObsError  # noqa: E402
from repro.obs.announce import read_announcement  # noqa: E402
from repro.obs.live import LiveAggregator  # noqa: E402

#: Sparkline geometry: samples kept per worker == characters drawn.
SPARK_WIDTH = 24
#: Plain-ASCII intensity ramp (low -> high); no unicode so the frame
#: survives dumb terminals and CI logs.
SPARK_LEVELS = " .:-=+*#"


def _fmt(value, width=9):
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.4g}".rjust(width)
    return str(value).rjust(width)


def _fmt_bytes(value):
    if not isinstance(value, (int, float)):
        return "-"
    if value >= 1 << 20:
        return f"{value / (1 << 20):.1f} MiB"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.1f} KiB"
    return f"{value:.0f} B"


def _sparkline(values):
    """``values`` as one ASCII intensity character each."""
    values = [v for v in values if isinstance(v, (int, float))]
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return SPARK_LEVELS[-1] * len(values)
    scale = (len(SPARK_LEVELS) - 1) / (high - low)
    return "".join(
        SPARK_LEVELS[int((v - low) * scale)] for v in values
    )


def update_rss_history(snapshot, history):
    """Fold one snapshot's per-worker RSS into the sparkline history.

    ``history`` maps pid -> deque of the last :data:`SPARK_WIDTH`
    samples; snapshots only carry each worker's *current* RSS, so the
    watcher keeps the time axis itself, across frames.
    """
    if history is None:
        return
    for pid, entry in (snapshot.get("workers") or {}).items():
        rss = entry.get("rss") if isinstance(entry, dict) else None
        if isinstance(rss, (int, float)):
            history.setdefault(
                pid, collections.deque(maxlen=SPARK_WIDTH)
            ).append(rss)


def render_frame(snapshot, violations, rss_history=None):
    """The snapshot dict as dashboard text (one string, no ANSI)."""
    lines = []
    ts = snapshot.get("ts")
    stamp = (
        time.strftime("%H:%M:%S", time.localtime(ts))
        if isinstance(ts, (int, float))
        else "?"
    )
    lines.append(
        f"== live observability @ {stamp} "
        f"(window {snapshot.get('window_s', '?')}s) =="
    )

    events = snapshot.get("events") or {}
    if events:
        shown = ", ".join(
            f"{kind}={count}" for kind, count in sorted(events.items())
        )
        lines.append(f"events: {shown}")

    rates = snapshot.get("rates") or {}
    if rates:
        lines.append("")
        lines.append("-- counter rates (per second) --")
        top = sorted(rates.items(), key=lambda kv: -abs(kv[1]))[:8]
        for name, rate in top:
            lines.append(f"  {name:<40} {rate:>10.4g}/s")

    spans = snapshot.get("spans") or {}
    if spans:
        lines.append("")
        lines.append("-- span latency (windowed, seconds) --")
        lines.append(
            f"  {'span':<32}{'count':>7}{'p50':>10}{'p95':>10}"
            f"{'p99':>10}{'max':>10}"
        )
        for path, summary in sorted(spans.items()):
            if summary.get("empty"):
                continue
            lines.append(
                f"  {path:<32}{summary.get('count', 0):>7}"
                f"{_fmt(summary.get('p50'), 10)}{_fmt(summary.get('p95'), 10)}"
                f"{_fmt(summary.get('p99'), 10)}{_fmt(summary.get('max'), 10)}"
            )

    bounds = snapshot.get("bounds") or {}
    if bounds:
        lines.append("")
        lines.append("-- bound slack margins (>= 1 is inside the envelope) --")
        for spec, summary in sorted(bounds.items()):
            margin = summary.get("min_margin")
            status = "??"
            if isinstance(margin, (int, float)):
                status = "OK" if margin >= 1.0 else "BREACH"
            lines.append(
                f"  {spec:<32} min margin {_fmt(margin)}  [{status}]"
            )

    workers = snapshot.get("workers") or {}
    if workers:
        lines.append("")
        lines.append("-- workers --")
        for pid, entry in sorted(workers.items()):
            lines.append(
                f"  pid {pid:<8} chunk {_fmt(entry.get('chunk'), 5)} "
                f"trial {_fmt(entry.get('trial'), 5)} "
                f"done {_fmt(entry.get('done'), 5)} "
                f"beat {_fmt(entry.get('age_s'), 7)}s ago"
            )

    memory = snapshot.get("memory") or {}
    alloc = memory.get("spans") or {}
    peak = memory.get("rss_peak_bytes")
    history = {
        pid: hist for pid, hist in (rss_history or {}).items() if hist
    }
    if peak is not None or alloc or history:
        lines.append("")
        lines.append("-- memory --")
        if peak is not None:
            lines.append(
                f"  peak rss {_fmt_bytes(peak)} (process + workers)"
            )
        for pid, hist in sorted(history.items()):
            lines.append(
                f"  pid {pid:<8} rss {_fmt_bytes(hist[-1]):>10}"
                f"  [{_sparkline(hist):<{SPARK_WIDTH}}]"
            )
        if alloc:
            lines.append("  top span allocators (by peak bytes):")
            ranked = sorted(
                alloc.items(),
                key=lambda kv: -(kv[1].get("peak_bytes") or 0),
            )[:5]
            for path, entry in ranked:
                lines.append(
                    f"    {path or '(no span)':<38}"
                    f" peak {_fmt_bytes(entry.get('peak_bytes')):>10}"
                    f" net {_fmt_bytes(entry.get('net_bytes')):>10}"
                )

    count = snapshot.get("violations", len(violations))
    lines.append("")
    if count:
        lines.append(f"!! SLO violations: {count}")
        for record in violations[-5:]:
            lines.append(
                f"  {record.get('rule', '?')} "
                f"[{record.get('subject', '?')}] "
                f"value {_fmt(record.get('value'))}"
            )
    else:
        lines.append("slo: no violations")
    return "\n".join(lines)


class JsonlFollower:
    """Incremental reader over a ``--live-export`` JSONL stream."""

    def __init__(self, path):
        self.path = Path(path)
        self.offset = 0
        self.aggregator = LiveAggregator()
        self.snapshot_frame = None
        self.violations = []
        self.rss_history = {}
        #: Whether the stream file existed at the last poll; ``--once``
        #: turns a False here into a non-zero exit.
        self.reachable = False

    def poll(self):
        """Consume newly appended lines; True if anything arrived."""
        try:
            size = self.path.stat().st_size
        except OSError:
            self.reachable = False
            return False
        self.reachable = True
        if size < self.offset:  # truncated / rewritten: start over
            self.offset = 0
            self.aggregator = LiveAggregator()
            self.snapshot_frame = None
            self.violations = []
        if size == self.offset:
            return False
        with open(self.path) as fh:
            fh.seek(self.offset)
            chunk = fh.read()
            self.offset = fh.tell()
        fresh = False
        for line in chunk.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a partially flushed trailing line
            fresh = True
            kind = record.get("event")
            if kind == "live.snapshot":
                self.snapshot_frame = record
            elif kind == "slo.violation":
                self.violations.append(record)
                self.aggregator.on_record(record)
            else:
                self.aggregator.on_record(record)
        return fresh

    def frame(self):
        # Prefer the producer's own snapshot frames (they carry worker
        # state and counter rates measured in the producing process);
        # fall back to locally re-aggregated records.
        if self.snapshot_frame is not None:
            snapshot, violations = self.snapshot_frame, self.violations
        else:
            snapshot = self.aggregator.snapshot()
            violations = self.aggregator.violations
        update_rss_history(snapshot, self.rss_history)
        return render_frame(snapshot, violations, self.rss_history)


def fetch_url_frame(base_url, rss_history=None):
    """One dashboard frame from a ``--live-port`` endpoint.

    Raises :class:`urllib.error.URLError` / :class:`OSError` when
    nothing answers on either path — the caller decides whether that is
    fatal (``--once``) or just a frame to skip.
    """
    base = base_url.rstrip("/")
    try:
        with urllib.request.urlopen(base + "/snapshot", timeout=5) as resp:
            snapshot = json.loads(resp.read().decode())
        update_rss_history(snapshot, rss_history)
        return render_frame(snapshot, [], rss_history)
    except json.JSONDecodeError:
        pass
    except urllib.error.HTTPError:
        pass  # listening, but no aggregator: fall back to /metrics
    with urllib.request.urlopen(base + "/metrics", timeout=5) as resp:
        return resp.read().decode()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Live ASCII dashboard over run_all's exporters."
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--follow",
        metavar="PATH",
        help="tail a --live-export JSONL stream",
    )
    source.add_argument(
        "--url",
        metavar="URL",
        help="poll a --live-port endpoint (e.g. http://127.0.0.1:9464)",
    )
    source.add_argument(
        "--announce",
        metavar="PATH",
        help="resolve the poll URL from an announcement file (a stderr "
        "log written by run_all --live-port or the serving daemon's "
        "--metrics-port); pairs with --announce-label",
    )
    parser.add_argument(
        "--announce-label",
        metavar="LABEL",
        default="live metrics",
        help="announcement label to look for in the --announce file "
        "(default: %(default)r; the serving daemon uses "
        "'serving metrics')",
    )
    parser.add_argument(
        "--announce-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long to wait for the announcement line to appear "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="redraw cadence (default: %(default)s)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit (CI smoke tests)",
    )
    parser.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen",
    )
    args = parser.parse_args(argv)

    follower = JsonlFollower(args.follow) if args.follow else None
    url_history = {}
    url = args.url

    if args.announce:
        try:
            url = read_announcement(
                args.announce,
                args.announce_label,
                timeout_s=args.announce_timeout,
            )
        except (ObsError, OSError) as exc:
            print(
                f"error: no {args.announce_label!r} announcement in "
                f"{args.announce}: {exc}",
                file=sys.stderr,
            )
            return 1
        # Announcements carry the scrape URL (.../metrics); the poller
        # wants the base so it can try /snapshot first.
        url = url.rstrip("/")
        if url.endswith("/metrics"):
            url = url[: -len("/metrics")]
        print(f"announced endpoint: {url}", file=sys.stderr)

    def one_frame():
        if follower is not None:
            follower.poll()
            return follower.frame()
        return fetch_url_frame(url, url_history)

    if args.once:
        try:
            frame = one_frame()
        except (urllib.error.URLError, OSError) as exc:
            print(f"error: snapshot source unreachable: {exc}", file=sys.stderr)
            return 1
        if follower is not None and not follower.reachable:
            print(
                f"error: snapshot source unreachable: no such stream "
                f"{follower.path}",
                file=sys.stderr,
            )
            return 1
        print(frame)
        return 0

    try:
        while True:
            try:
                frame = one_frame()
            except (urllib.error.URLError, OSError) as exc:
                # A watcher started before the run (or outliving it)
                # keeps polling rather than dying mid-dashboard.
                frame = f"(snapshot source unreachable: {exc})"
            if not args.no_clear:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(frame, flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
