#!/usr/bin/env python
"""Live ASCII dashboard over a running ``run_all`` experiment.

Tails either output of the live exporters (:mod:`repro.obs.exporters`)
and redraws a terminal dashboard — windowed span percentiles, bound
slack margins, counter rates, worker liveness, and SLO violations —
while the experiment is still going:

* ``--follow PATH`` tails the ``--live-export`` JSONL stream, folding
  records through a :class:`repro.obs.live.LiveAggregator` (and
  preferring the exporter's own ``live.snapshot`` frames when present,
  so worker state and counter rates match the producing process);
* ``--url http://127.0.0.1:PORT`` polls the ``--live-port`` HTTP
  endpoint instead (``/snapshot`` JSON; falls back to rendering the
  raw ``/metrics`` Prometheus text when no aggregator is attached).

Usage::

    PYTHONPATH=src python -m repro.experiments.run_all --slo \\
        --live-export=live.jsonl &
    PYTHONPATH=src python scripts/obs_watch.py --follow live.jsonl

    PYTHONPATH=src python scripts/obs_watch.py \\
        --url http://127.0.0.1:9464 --once

``--once`` renders a single frame and exits (CI smoke tests);
``--interval`` tunes the redraw cadence.  Exit code 0; interrupt with
Ctrl-C.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.live import LiveAggregator  # noqa: E402


def _fmt(value, width=9):
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.4g}".rjust(width)
    return str(value).rjust(width)


def render_frame(snapshot, violations):
    """The snapshot dict as dashboard text (one string, no ANSI)."""
    lines = []
    ts = snapshot.get("ts")
    stamp = (
        time.strftime("%H:%M:%S", time.localtime(ts))
        if isinstance(ts, (int, float))
        else "?"
    )
    lines.append(
        f"== live observability @ {stamp} "
        f"(window {snapshot.get('window_s', '?')}s) =="
    )

    events = snapshot.get("events") or {}
    if events:
        shown = ", ".join(
            f"{kind}={count}" for kind, count in sorted(events.items())
        )
        lines.append(f"events: {shown}")

    rates = snapshot.get("rates") or {}
    if rates:
        lines.append("")
        lines.append("-- counter rates (per second) --")
        top = sorted(rates.items(), key=lambda kv: -abs(kv[1]))[:8]
        for name, rate in top:
            lines.append(f"  {name:<40} {rate:>10.4g}/s")

    spans = snapshot.get("spans") or {}
    if spans:
        lines.append("")
        lines.append("-- span latency (windowed, seconds) --")
        lines.append(
            f"  {'span':<32}{'count':>7}{'p50':>10}{'p95':>10}"
            f"{'p99':>10}{'max':>10}"
        )
        for path, summary in sorted(spans.items()):
            if summary.get("empty"):
                continue
            lines.append(
                f"  {path:<32}{summary.get('count', 0):>7}"
                f"{_fmt(summary.get('p50'), 10)}{_fmt(summary.get('p95'), 10)}"
                f"{_fmt(summary.get('p99'), 10)}{_fmt(summary.get('max'), 10)}"
            )

    bounds = snapshot.get("bounds") or {}
    if bounds:
        lines.append("")
        lines.append("-- bound slack margins (>= 1 is inside the envelope) --")
        for spec, summary in sorted(bounds.items()):
            margin = summary.get("min_margin")
            status = "??"
            if isinstance(margin, (int, float)):
                status = "OK" if margin >= 1.0 else "BREACH"
            lines.append(
                f"  {spec:<32} min margin {_fmt(margin)}  [{status}]"
            )

    workers = snapshot.get("workers") or {}
    if workers:
        lines.append("")
        lines.append("-- workers --")
        for pid, entry in sorted(workers.items()):
            lines.append(
                f"  pid {pid:<8} chunk {_fmt(entry.get('chunk'), 5)} "
                f"trial {_fmt(entry.get('trial'), 5)} "
                f"done {_fmt(entry.get('done'), 5)} "
                f"beat {_fmt(entry.get('age_s'), 7)}s ago"
            )

    count = snapshot.get("violations", len(violations))
    lines.append("")
    if count:
        lines.append(f"!! SLO violations: {count}")
        for record in violations[-5:]:
            lines.append(
                f"  {record.get('rule', '?')} "
                f"[{record.get('subject', '?')}] "
                f"value {_fmt(record.get('value'))}"
            )
    else:
        lines.append("slo: no violations")
    return "\n".join(lines)


class JsonlFollower:
    """Incremental reader over a ``--live-export`` JSONL stream."""

    def __init__(self, path):
        self.path = Path(path)
        self.offset = 0
        self.aggregator = LiveAggregator()
        self.snapshot_frame = None
        self.violations = []

    def poll(self):
        """Consume newly appended lines; True if anything arrived."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return False
        if size < self.offset:  # truncated / rewritten: start over
            self.offset = 0
            self.aggregator = LiveAggregator()
            self.snapshot_frame = None
            self.violations = []
        if size == self.offset:
            return False
        with open(self.path) as fh:
            fh.seek(self.offset)
            chunk = fh.read()
            self.offset = fh.tell()
        fresh = False
        for line in chunk.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a partially flushed trailing line
            fresh = True
            kind = record.get("event")
            if kind == "live.snapshot":
                self.snapshot_frame = record
            elif kind == "slo.violation":
                self.violations.append(record)
                self.aggregator.on_record(record)
            else:
                self.aggregator.on_record(record)
        return fresh

    def frame(self):
        # Prefer the producer's own snapshot frames (they carry worker
        # state and counter rates measured in the producing process);
        # fall back to locally re-aggregated records.
        if self.snapshot_frame is not None:
            return render_frame(self.snapshot_frame, self.violations)
        return render_frame(
            self.aggregator.snapshot(), self.aggregator.violations
        )


def fetch_url_frame(base_url):
    """One dashboard frame from a ``--live-port`` endpoint."""
    base = base_url.rstrip("/")
    try:
        with urllib.request.urlopen(base + "/snapshot", timeout=5) as resp:
            snapshot = json.loads(resp.read().decode())
        return render_frame(snapshot, [])
    except (urllib.error.URLError, OSError, json.JSONDecodeError):
        pass
    with urllib.request.urlopen(base + "/metrics", timeout=5) as resp:
        return resp.read().decode()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Live ASCII dashboard over run_all's exporters."
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--follow",
        metavar="PATH",
        help="tail a --live-export JSONL stream",
    )
    source.add_argument(
        "--url",
        metavar="URL",
        help="poll a --live-port endpoint (e.g. http://127.0.0.1:9464)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="redraw cadence (default: %(default)s)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit (CI smoke tests)",
    )
    parser.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen",
    )
    args = parser.parse_args(argv)

    follower = JsonlFollower(args.follow) if args.follow else None

    def one_frame():
        if follower is not None:
            follower.poll()
            return follower.frame()
        return fetch_url_frame(args.url)

    if args.once:
        print(one_frame())
        return 0

    try:
        while True:
            frame = one_frame()
            if not args.no_clear:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(frame, flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
