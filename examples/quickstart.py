"""Quickstart: build a balanced digraph, sketch it, query cuts.

Run with:  python examples/quickstart.py

Walks the core objects in five minutes: a beta-balanced directed graph,
its exact balance, a real for-all sparsifier sketch of it, and the gap
between exact and sketched cut values.
"""

from repro.graphs import (
    exact_balance,
    is_strongly_connected,
    random_balanced_digraph,
)
from repro.sketch import BalancedDigraphSparsifier, ExactCutSketch


def main() -> None:
    # A random strongly connected digraph, certified 4-balanced: every
    # directed cut carries at most 4x more weight one way than the other
    # (Definition 2.1 of the paper).
    graph = random_balanced_digraph(n=16, beta=4.0, density=0.9, rng=7)
    print(f"graph: {graph}")
    print(f"strongly connected: {is_strongly_connected(graph)}")
    print(f"tight balance beta*: {exact_balance(graph):.3f}")

    # The exact sketch stores everything; the sparsifier samples edges
    # by inverse connectivity and reweights, targeting (1 +- eps) on
    # every directed cut simultaneously (the for-all model).
    exact = ExactCutSketch(graph)
    # A generous epsilon and a small oversampling constant make the
    # compression visible at this toy size.
    sketch = BalancedDigraphSparsifier(graph, epsilon=0.9, rng=7, constant=0.25)
    print(f"exact sketch size:      {exact.size_bits()} bits")
    print(f"sparsifier sketch size: {sketch.size_bits()} bits")

    # Query a few directed cuts through both.
    nodes = graph.nodes()
    for size in (1, 3, len(nodes) // 2):
        side = set(nodes[:size])
        truth = exact.query(side)
        estimate = sketch.query(side)
        rel = abs(estimate - truth) / truth if truth else 0.0
        print(
            f"cut |S|={size}: true={truth:8.3f}  sketched={estimate:8.3f}  "
            f"rel.err={rel:.3f}"
        )


if __name__ == "__main__":
    main()
