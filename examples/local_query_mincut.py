"""Estimating a hidden graph's min cut through a query oracle (§5).

Run with:  python examples/local_query_mincut.py

The graph is hidden behind degree/neighbor/pair queries.  We estimate
its global minimum cut with the (modified) VERIFY-GUESS binary search of
Theorem 5.7 and report the query bill against the
``min{m, m/(eps^2 k)}`` price that Theorem 1.3 proves unavoidable.
"""

from repro.graphs import planted_min_cut_ugraph
from repro.localquery import GraphOracle, estimate_min_cut


def main() -> None:
    graph, k = planted_min_cut_ugraph(cluster_size=40, cut_size=20, rng=3)
    m = graph.num_edges
    print(f"hidden graph: n={graph.num_nodes}, m={m}, true min cut k={k}")

    print("\neps sweep (modified variant, Theorem 5.7):")
    print(f"{'eps':>6} {'estimate':>9} {'queries':>8} {'bound':>9} {'q/bound':>8}")
    for eps in (0.6, 0.45, 0.3, 0.15):
        oracle = GraphOracle(graph)
        result = estimate_min_cut(
            oracle, eps=eps, rng=11, constant=0.5,
            search_accuracy=0.5, acceptance_gap=2.0,
        )
        bound = min(2 * m, m / (eps * eps * k))
        print(
            f"{eps:>6} {result.value:>9.1f} {result.total_queries:>8} "
            f"{bound:>9.0f} {result.total_queries / bound:>8.2f}"
        )

    print("\nsearch-phase anatomy at eps=0.3 (naive vs modified, §5.4):")
    for variant in ("naive", "modified"):
        oracle = GraphOracle(graph)
        result = estimate_min_cut(
            oracle, eps=0.3, rng=11, variant=variant,
            constant=0.5, search_accuracy=0.5,
        )
        print(
            f"  {variant:>9}: search={result.search_queries:5d} queries, "
            f"refine={result.refined_queries:5d}, steps={result.search_steps}, "
            f"estimate={result.value:.1f}"
        )
    print(
        "\nthe naive search pays eps into every guess; the modified search "
        "pays a constant and leaves eps to the single refined call."
    )


if __name__ == "__main__":
    main()
