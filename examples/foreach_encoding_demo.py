"""Theorem 1.1 in action: hide a message in a graph, read it from cuts.

Run with:  python examples/foreach_encoding_demo.py

Alice encodes a bit string into the edge weights of a balanced digraph
using the Hadamard superposition of Lemma 3.2; Bob recovers any bit with
four cut queries (Figure 1's cut).  We then degrade Bob's cut oracle and
watch the decoding collapse — the operational content of the
Omega(n sqrt(beta)/eps) lower bound.
"""

import numpy as np

from repro.foreach_lb import ForEachDecoder, ForEachEncoder, ForEachParams
from repro.sketch import ExactCutSketch, NoisyForEachSketch
from repro.utils.bitstrings import random_signstring


def decode_accuracy(decoder, sketch, s, params) -> float:
    hits = sum(
        1
        for q in range(params.string_length)
        if decoder.decode_bit(sketch, q) == int(s[q])
    )
    return hits / params.string_length


def main() -> None:
    params = ForEachParams(inv_eps=4, sqrt_beta=2, num_groups=3)
    print(
        f"construction: n={params.num_nodes} nodes, beta={params.beta}, "
        f"eps={params.epsilon}, message={params.string_length} bits"
    )

    rng = np.random.default_rng(42)
    s = random_signstring(params.string_length, rng=rng)
    encoder = ForEachEncoder(params)
    encoded = encoder.encode(s)
    print(
        f"encoded graph: {encoded.graph}; "
        f"failed blocks: {len(encoded.failed_blocks)}"
    )

    decoder = ForEachDecoder(params)

    # Bob reads one bit: four cut queries, subtract the public backward
    # skeleton, combine with the signs of M_t, take the sign.
    q = 17
    plans = decoder.query_plans(q)
    print(f"\nbit #{q} lives in block {params.locate_bit(q)[:3]}")
    for plan in plans:
        print(
            f"  query |S|={len(plan.side):3d}  sign={plan.sign:+d}  "
            f"fixed backward weight={plan.fixed_backward:.2f}"
        )
    exact = ExactCutSketch(encoded.graph)
    value = decoder.estimate_inner_product(exact, q)
    print(f"  <w, M_t> = {value:+.2f}  (predicted {int(s[q]) / params.epsilon:+.1f})")
    print(f"  decoded bit: {decoder.decode_bit(exact, q):+d}, true: {int(s[q]):+d}")

    # Degrade the oracle: the phase transition of Theorem 1.1.
    print("\ndecoding accuracy vs cut-oracle error:")
    for eps_sketch in (0.0, 0.005, 0.02, 0.1, 0.4):
        if eps_sketch == 0.0:
            sketch = exact
        else:
            sketch = NoisyForEachSketch(encoded.graph, epsilon=eps_sketch, rng=rng)
        acc = decode_accuracy(decoder, sketch, s, params)
        bar = "#" * int(40 * acc)
        print(f"  oracle error {eps_sketch:5.3f}: accuracy {acc:.2f} {bar}")


if __name__ == "__main__":
    main()
