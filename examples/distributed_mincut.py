"""Distributed min-cut across edge-sharded servers (the §1 application).

Run with:  python examples/distributed_mincut.py

A graph's edges live on several servers.  The coordinator compares the
two strategies the paper's introduction contrasts: shipping eps-accurate
for-all sketches (communication ~ 1/eps^2), versus shipping cheap
constant-accuracy sketches and refining a poly(n) list of near-minimum
candidate cuts with high-precision per-cut queries.
"""

from repro.distributed import distributed_min_cut, partition_edges
from repro.graphs import UGraph, stoer_wagner


def complete_graph(n: int) -> UGraph:
    g = UGraph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, 1.0)
    return g


def main() -> None:
    graph = complete_graph(32)
    servers = partition_edges(graph, num_servers=3, rng=1)
    true_value, _ = stoer_wagner(graph)
    print(
        f"workload: K32 (m={graph.num_edges}) sharded over "
        f"{len(servers)} servers; true min cut = {true_value:.0f}"
    )
    for server in servers:
        print(f"  {server.name}: {server.num_edges} edges")

    header = f"{'eps':>6} {'strategy':>12} {'estimate':>9} {'ship kb':>8} {'query kb':>9}"
    print("\n" + header)
    for eps in (0.4, 0.2, 0.1):
        for strategy in ("forall_only", "hybrid"):
            result = distributed_min_cut(
                servers, epsilon=eps, strategy=strategy, rng=5,
                sampling_constant=0.3,
            )
            print(
                f"{eps:>6} {strategy:>12} {result.value:>9.1f} "
                f"{result.sketch_bits / 1000:>8.1f} "
                f"{result.query_bits / 1000:>9.2f}"
            )
    print(
        "\nforall_only must ship 1/eps^2 bits (Theorem 1.2's floor); the "
        "hybrid scheme isolates the eps dependence in cheap per-candidate "
        "queries — the reason for-each sketches matter."
    )


if __name__ == "__main__":
    main()
