"""Theorem 1.2 in action: the for-all decoder's subset trick.

Run with:  python examples/forall_gap_hamming_demo.py

Shows why the for-all lower bound needs a different decoder than the
for-each one: the direct cut query drowns the signal in sketch error,
but ranking *all* half-size subsets of the left nodes (possible only
because a for-all sketch answers every cut) recovers the Gap-Hamming
promise bit.
"""

import numpy as np

from repro.comm import GapCase, sample_gap_hamming_instance
from repro.forall_lb import ForAllDecoder, ForAllEncoder, ForAllParams
from repro.sketch import ExactCutSketch, NoisyForAllSketch


def main() -> None:
    params = ForAllParams(inv_eps_sq=8, beta=1, num_groups=2)
    print(
        f"construction: n={params.num_nodes}, beta={params.beta}, "
        f"eps={params.epsilon:.3f}, h={params.num_strings} strings of "
        f"{params.string_length} bits ({params.total_bits} bits total)"
    )

    instance = sample_gap_hamming_instance(
        params.num_strings, params.string_length, rng=2
    )
    print(
        f"planted pair: string #{instance.index}, case={instance.case.value} "
        f"(Hamming distance {instance.planted_distance()}, gap {instance.gap})"
    )

    encoded = ForAllEncoder(params).encode(instance.strings)
    print(f"encoded graph: {encoded.graph} (2*beta-balanced)")

    # The naive query and why it fails: the for-all sketch's additive
    # error on the big cut swamps the Theta(1/eps) signal.
    pair, left, cluster = params.locate_string(instance.index)
    decoder = ForAllDecoder(params, rng=3)
    t_nodes = decoder._query_nodes(pair, cluster, instance.query)
    naive_side = {(pair, left)} | (
        set(params.group_nodes(pair + 1)) - t_nodes
    )
    big_cut = encoded.graph.cut_weight(naive_side)
    print(
        f"\nnaive single-cut query: cut value {big_cut:.1f}; a (1 +- eps) "
        f"sketch may err by {params.epsilon * big_cut:.1f}, while the "
        f"signal is only ~{1 / params.epsilon:.1f}"
    )

    # The subset-argmax decoder (Lemmas 4.3/4.4).
    for label, sketch in (
        ("exact sketch", ExactCutSketch(encoded.graph)),
        ("(1 +- eps/10) for-all sketch",
         NoisyForAllSketch(encoded.graph, epsilon=params.epsilon / 10, seed=4)),
    ):
        decision = decoder.decide(sketch, instance.index, instance.query)
        verdict = "CORRECT" if decision.case is instance.case else "WRONG"
        print(
            f"{label}: examined {decision.subsets_examined} subsets Q, "
            f"answered {decision.case.value} -> {verdict}"
        )


if __name__ == "__main__":
    main()
