"""Sketching graph streams: merge-and-reduce and AGM linear sketches.

Run with:  python examples/streaming_and_agm.py

The paper's database motivation in one script: edges arrive as a stream
(too many to store), and two different sketching regimes handle it —

* insertion-only: a merge-and-reduce cut sparsifier keeps a bounded
  number of resident edges while answering (1 +- eps) cut queries;
* turnstile (inserts *and deletes*): AGM linear sketches of node
  incidence vectors support spanning-forest extraction and a
  k-connectivity certificate from O~(n) words, no matter how long the
  stream is.
"""

import numpy as np

from repro.graphs import random_regularish_ugraph, stoer_wagner
from repro.sketch import AGMSketch, certify_k_connectivity, sketch_spanning_forest
from repro.streaming import StreamingCutSparsifier


def insertion_only_demo() -> None:
    print("--- insertion-only: merge-and-reduce cut sparsifier ---")
    graph = random_regularish_ugraph(40, 24, rng=1)
    # A moderately aggressive per-reduce accuracy makes the compression
    # visible at toy scale (the default budget-splitting is cautious).
    stream = StreamingCutSparsifier(
        graph.nodes(), epsilon=0.5, block_size=80, rng=2,
        connectivity="exact", step_epsilon=0.4, sampling_constant=0.6,
    )
    peak = 0
    for u, v, w in graph.edges():
        stream.insert(u, v, w)
        peak = max(peak, stream.resident_edges)
    final = stream.finish()
    true_cut, _ = stoer_wagner(graph)
    est_cut, _ = stoer_wagner(final)
    print(f"stream length:   {stream.edges_seen} edges")
    print(f"peak residency:  {peak} edges ({stream.reduce_count} reduces)")
    print(f"final residency: {final.num_edges} edges")
    print(f"min cut:         true {true_cut:.0f}, from sketch {est_cut:.1f}")


def turnstile_demo() -> None:
    print("\n--- turnstile: AGM linear sketches ---")
    graph = random_regularish_ugraph(24, 8, rng=3)
    sketch = AGMSketch.of_graph(graph, seed=4)
    print(f"graph: n={graph.num_nodes}, m={graph.num_edges}")
    print(f"sketch footprint: {sketch.size_words()} words (independent of m)")

    forest = sketch_spanning_forest(sketch)
    print(
        f"spanning forest recovered from the sketch alone: "
        f"{forest.num_edges} edges, connected={forest.is_connected()}"
    )

    # Deletions are just negated updates — remove a forest edge and the
    # sketch still answers.
    u, v, _ = next(forest.edges())
    sketch.remove_edge(u, v)
    print(f"deleted edge {u}~{v} from the stream; re-extracting...")
    forest2 = sketch_spanning_forest(sketch)
    print(
        f"post-deletion forest: {forest2.num_edges} edges, "
        f"connected={forest2.is_connected()}"
    )

    certified = certify_k_connectivity(graph, k=6, seed=5)
    print(f"forest-peeling certificate: min(6, edge connectivity) = {certified}")


def main() -> None:
    insertion_only_demo()
    turnstile_demo()


if __name__ == "__main__":
    main()
