"""A guided tour of the Section 5 reduction: 2-SUM -> G_{x,y} -> MINCUT.

Run with:  python examples/gxy_reduction_tour.py

Builds the paper's Figure 2 example, verifies Lemma 5.5 on it, then runs
the full Lemma 5.6 pipeline: a 2-SUM instance becomes a hidden graph,
a real query algorithm estimates its min cut over a bit-metered
Alice/Bob channel, and the 2-SUM answer drops out.
"""

import numpy as np

from repro.comm import sample_twosum_instance
from repro.graphs import stoer_wagner
from repro.localquery import (
    build_gxy,
    estimate_min_cut,
    representative_figure_pairs,
    solve_twosum_via_mincut,
)
from repro.graphs.connectivity import edge_disjoint_path_count


def figure_2_example() -> None:
    print("--- Figure 2: G_{x,y} for x=000000100, y=100010100 ---")
    x = np.array([0, 0, 0, 0, 0, 0, 1, 0, 0], dtype=np.int8)
    y = np.array([1, 0, 0, 0, 1, 0, 1, 0, 0], dtype=np.int8)
    gxy = build_gxy(x, y)
    print(f"parts of size {gxy.side}; INT(x, y) = {gxy.intersection()}")
    value, side = stoer_wagner(gxy.graph)
    print(f"MINCUT = {value:.0f} = 2*INT  (witness cut A u A' vs B u B')")
    print("edge-disjoint path certificates (Figures 3-6):")
    for u, v, figure in representative_figure_pairs(gxy):
        paths = edge_disjoint_path_count(gxy.graph, u, v)
        print(f"  {figure:28s} {u} ~ {v}: {paths} >= {2 * gxy.intersection()}")


def lemma_56_pipeline() -> None:
    print("\n--- Lemma 5.6: solving 2-SUM through a min-cut algorithm ---")
    instance = sample_twosum_instance(
        num_pairs=25, length=25, intersecting_fraction=0.2, rng=4
    )
    print(
        f"2-SUM instance: t={instance.num_pairs} pairs of length "
        f"{instance.length}, true DISJ sum = {instance.disjointness_sum()}"
    )

    def algorithm(oracle, gen):
        return estimate_min_cut(oracle, eps=0.25, rng=gen).value

    result = solve_twosum_via_mincut(instance, algorithm, rng=5)
    print(f"G_(x,y) min cut: estimated {result.mincut_estimate:.1f}, "
          f"true {result.true_mincut:.1f}")
    print(
        f"DISJ estimate: {result.disj_estimate:.1f} "
        f"(true {result.true_disj}, budget +-{result.error_budget:.1f}, "
        f"{'OK' if result.within_budget else 'MISS'})"
    )
    print(
        f"cost: {result.queries} local queries = "
        f"{result.bits_exchanged} bits of Alice/Bob communication "
        f"(<= 2 bits/query, the Theorem 1.3 transfer)"
    )


def main() -> None:
    figure_2_example()
    lemma_56_pipeline()


if __name__ == "__main__":
    main()
