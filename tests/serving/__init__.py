"""Serving-tier tests."""
