"""Shared serving-test hygiene: clean obs switch, capture, live bus."""

import pytest

from repro import obs
from repro.obs import capture as obs_capture
from repro.obs import live as obs_live


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.reset_metrics()
    obs_capture._ACTIVE.clear()
    obs_live.uninstall()
    yield
    obs.disable()
    obs.STATE.sink = None
    obs.reset_metrics()
    obs_capture._ACTIVE.clear()
    obs_live.uninstall()
