"""Theorem 5.7 k-server protocol over real sockets and processes."""

import os
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.distributed.coordinator import distributed_min_cut
from repro.distributed.server import partition_edges
from repro.graphs.generators import random_regularish_ugraph
from repro.obs.announce import read_announcement
from repro.serving.client import ServingClient
from repro.serving.remote import RemoteShard, host_shards, rng_state_payload
from repro.serving.server import ServerThread

REPO = Path(__file__).resolve().parent.parent.parent


class TestRngShipping:
    def test_state_payload_is_json_exact(self):
        import json

        import numpy as np

        state = rng_state_payload(42)
        rebuilt = json.loads(json.dumps(state))
        rng = np.random.default_rng()
        rng.bit_generator.state = rebuilt
        assert (
            rng.integers(1 << 30)
            == np.random.default_rng(42).integers(1 << 30)
        )


class TestRemoteShards:
    def test_remote_equals_in_process_min_cut(self):
        graph = random_regularish_ugraph(40, 4, rng=3)
        local = partition_edges(graph, 3, rng=123)
        reference = distributed_min_cut(local, epsilon=0.3, rng=77)

        threads = [ServerThread() for _ in range(3)]
        for t in threads:
            t.start()
        try:
            clients = [
                ServingClient("127.0.0.1", t.port, name=f"coord-{i}").connect()
                for i, t in enumerate(threads)
            ]
            try:
                shards = host_shards(clients, graph, num_servers=3, rng=123)
                assert all(isinstance(s, RemoteShard) for s in shards)
                served = distributed_min_cut(shards, epsilon=0.3, rng=77)
            finally:
                for c in clients:
                    c.close()
        finally:
            for t in threads:
                t.stop()

        assert served.value == reference.value
        assert set(served.side) == set(reference.side)
        assert served.sketch_bits == reference.sketch_bits
        assert served.query_bits == reference.query_bits

    def test_shards_round_robin_across_clients(self):
        graph = random_regularish_ugraph(24, 4, rng=5)
        threads = [ServerThread() for _ in range(2)]
        for t in threads:
            t.start()
        try:
            clients = [
                ServingClient("127.0.0.1", t.port).connect() for t in threads
            ]
            try:
                shards = host_shards(clients, graph, num_servers=4, rng=9)
                assert len(shards) == 4
                # 4 shards over 2 daemons: each hosts exactly two.
                for client in clients:
                    assert len(client.stats()["shards"]) == 2
            finally:
                for c in clients:
                    c.close()
        finally:
            for t in threads:
                t.stop()


class TestDaemonSubprocess:
    def test_cli_daemon_announces_serves_and_exits_clean(self, tmp_path):
        log = tmp_path / "daemon.log"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serving.server",
                "--port", "0", "--metrics-port", "0",
            ],
            stderr=log.open("w"),
            env=env,
        )
        try:
            url = read_announcement(log, "serving", timeout_s=30.0)
            host, port = url.replace("tcp://", "").rsplit(":", 1)
            metrics_url = read_announcement(log, "serving metrics", timeout_s=30.0)

            graph = random_regularish_ugraph(24, 4, rng=7)
            with ServingClient(host, int(port)) as client:
                oid = client.register_graph(graph)
                nodes = list(graph.nodes())
                assert client.cut_weight(oid, nodes[:5]) > 0.0

            with urllib.request.urlopen(metrics_url, timeout=10) as resp:
                text = resp.read().decode()
            assert "repro_serving_requests_total" in text

            with ServingClient(host, int(port)) as client:
                client.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_tight_slo_breach_exits_6(self, tmp_path):
        log = tmp_path / "daemon.log"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serving.server",
                "--port", "0",
                "--slo", "span:serve.request:p99<=0.000000001",
            ],
            stderr=log.open("w"),
            env=env,
        )
        try:
            url = read_announcement(log, "serving", timeout_s=30.0)
            host, port = url.replace("tcp://", "").rsplit(":", 1)
            graph = random_regularish_ugraph(24, 4, rng=7)
            with ServingClient(host, int(port)) as client:
                oid = client.register_graph(graph)
                nodes = list(graph.nodes())
                for _ in range(5):
                    client.cut_weight(oid, nodes[:5])
                client.shutdown()
            assert proc.wait(timeout=30) == 6
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


@pytest.mark.parametrize("op", ["shard_sketch", "shard_cut"])
def test_shard_ops_without_hosting_fail_cleanly(op):
    from repro.serving.protocol import ServingError

    with ServerThread() as thread:
        with ServingClient("127.0.0.1", thread.port) as client:
            with pytest.raises(ServingError, match="no hosted shard"):
                if op == "shard_sketch":
                    client.shard_sketch("ghost", 0.3, rng_state_payload(1))
                else:
                    client.shard_cut("ghost", [0], 0.1)
