"""Bytes-bounded LRU snapshot cache."""

import pytest

from repro.graphs.generators import random_regularish_ugraph
from repro.serving.cache import SnapshotCache
from repro.serving.protocol import ServingError, graph_oid, graph_payload


def _graph(rng):
    return random_regularish_ugraph(24, 4, rng=rng)


def _register(cache, rng):
    g = _graph(rng)
    oid = graph_oid(graph_payload(g))
    return oid, cache.put(oid, g)


class TestBasics:
    def test_get_miss_raises_with_reregister_hint(self):
        cache = SnapshotCache()
        with pytest.raises(ServingError, match="re-register"):
            cache.get("0" * 64)

    def test_put_then_get_is_a_hit(self):
        cache = SnapshotCache()
        oid, entry = _register(cache, 1)
        assert cache.get(oid) is entry
        assert cache.hits == 1 and cache.misses == 1
        assert entry.hits == 1

    def test_reput_same_oid_is_hit_and_keeps_entry(self):
        cache = SnapshotCache()
        oid, entry = _register(cache, 1)
        entry.sketches[("probe",)] = object()
        again = cache.put(oid, _graph(1))
        assert again is entry
        assert ("probe",) in again.sketches
        assert cache.hits == 1

    def test_entry_is_priced_in_measured_bytes(self):
        cache = SnapshotCache()
        _, entry = _register(cache, 1)
        assert entry.nbytes > 0
        assert cache.total_bytes == entry.nbytes

    def test_invalid_budget_rejected(self):
        with pytest.raises(ServingError):
            SnapshotCache(max_bytes=0)


class TestEviction:
    def _tight_cache(self):
        # Budget sized to hold roughly one graph: every further insert
        # must evict.
        probe = SnapshotCache()
        _, entry = _register(probe, 1)
        return SnapshotCache(max_bytes=int(entry.nbytes * 1.5))

    def test_lru_entry_evicted_on_overflow(self):
        cache = self._tight_cache()
        oid1, _ = _register(cache, 1)
        oid2, _ = _register(cache, 2)
        assert oid1 not in cache
        assert oid2 in cache
        assert cache.evictions == 1

    def test_recency_refresh_changes_victim(self):
        probe = SnapshotCache()
        _, entry = _register(probe, 1)
        cache = SnapshotCache(max_bytes=int(entry.nbytes * 2.5))
        oid1, _ = _register(cache, 1)
        oid2, _ = _register(cache, 2)
        cache.get(oid1)  # oid2 becomes LRU
        oid3, _ = _register(cache, 3)
        assert oid2 not in cache
        assert oid1 in cache and oid3 in cache

    def test_newly_inserted_entry_never_self_evicts(self):
        probe = SnapshotCache()
        _, entry = _register(probe, 1)
        cache = SnapshotCache(max_bytes=max(1, entry.nbytes // 2))
        oid, _ = _register(cache, 1)  # bigger than the whole budget
        assert oid in cache  # over budget, but keep is sacred

    def test_add_sketch_bytes_charges_entry_and_can_evict(self):
        cache = self._tight_cache()
        oid1, _ = _register(cache, 1)
        oid2, entry2 = _register(cache, 2)
        before = entry2.nbytes
        cache.add_sketch_bytes(entry2, bytearray(2048))
        assert entry2.nbytes > before
        assert oid2 in cache
        assert oid1 not in cache  # evicted on first insert already


class TestStats:
    def test_stats_shape(self):
        cache = SnapshotCache()
        oid, _ = _register(cache, 1)
        cache.get(oid)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["bytes"] == cache.total_bytes

    def test_oids_lru_order(self):
        cache = SnapshotCache()
        oid1, _ = _register(cache, 1)
        oid2, _ = _register(cache, 2)
        cache.get(oid1)
        assert cache.oids() == [oid2, oid1]
