"""Micro-batching triggers, fan-back, and row stability."""

import asyncio

import numpy as np
import pytest

from repro.graphs.generators import random_regularish_ugraph
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import SnapshotEntry
from repro.serving.protocol import ServingError, graph_oid, graph_payload


def _entry(rng=1, n=24):
    g = random_regularish_ugraph(n, 4, rng=rng)
    return SnapshotEntry(graph_oid(graph_payload(g)), g, g.freeze())


def _rows(entry, count, rng=7):
    gen = np.random.default_rng(rng)
    return [gen.random(entry.csr.num_nodes) < 0.5 for _ in range(count)]


def _evaluate(entry, membership):
    return entry.csr.cut_weights_stable(membership)


class TestValidation:
    def test_negative_window_rejected(self):
        with pytest.raises(ServingError):
            MicroBatcher(_evaluate, window_s=-0.1)

    def test_zero_max_batch_rejected(self):
        with pytest.raises(ServingError):
            MicroBatcher(_evaluate, max_batch=0)


class TestTriggers:
    def test_max_batch_flushes_immediately(self):
        entry = _entry()
        batcher = MicroBatcher(_evaluate, window_s=60.0, max_batch=4)

        async def run():
            return await asyncio.gather(
                *[batcher.submit(entry, r) for r in _rows(entry, 4)]
            )

        values = asyncio.run(run())
        assert len(values) == 4
        # One flush of width 4, despite the huge window.
        assert batcher.batches == 1 and batcher.max_width == 4

    def test_adaptive_probe_flushes_without_waiting_for_window(self):
        entry = _entry()
        batcher = MicroBatcher(_evaluate, window_s=60.0, max_batch=1024)

        async def run():
            return await asyncio.wait_for(
                asyncio.gather(
                    *[batcher.submit(entry, r) for r in _rows(entry, 3)]
                ),
                timeout=5.0,
            )

        values = asyncio.run(run())  # must not wait 60s
        assert len(values) == 3
        assert batcher.batches == 1 and batcher.max_width == 3

    def test_window_timer_flushes_trickle_traffic(self):
        entry = _entry()
        flushed = []
        batcher = MicroBatcher(
            _evaluate, window_s=0.01, max_batch=1024,
            on_flush=lambda: flushed.append(batcher.depth()),
        )

        async def run():
            # Bypass submit's resolve path: enqueue directly, then keep
            # the loop busy so only the timer can flush.
            batcher.enqueue(entry, _rows(entry, 1)[0], lambda v, e: None)
            # The probe fires first but sees a growing queue only once;
            # feed a second row from a timer earlier than the window.
            await asyncio.sleep(0.1)

        asyncio.run(run())
        assert batcher.batches >= 1

    def test_unbatched_configuration_flushes_per_row(self):
        entry = _entry()
        batcher = MicroBatcher(_evaluate, window_s=0.0, max_batch=1)

        async def run():
            return [await batcher.submit(entry, r) for r in _rows(entry, 5)]

        values = asyncio.run(run())
        assert len(values) == 5
        assert batcher.batches == 5 and batcher.max_width == 1


class TestFanBack:
    def test_values_match_direct_evaluation_row_for_row(self):
        entry = _entry()
        rows = _rows(entry, 8)
        direct = entry.csr.cut_weights_stable(np.stack(rows))
        batcher = MicroBatcher(_evaluate, window_s=0.05, max_batch=8)

        async def run():
            return await asyncio.gather(
                *[batcher.submit(entry, r) for r in rows]
            )

        values = asyncio.run(run())
        assert values == [float(v) for v in direct]

    def test_batch_width_does_not_change_bytes(self):
        entry = _entry()
        rows = _rows(entry, 12)

        def serve(max_batch):
            batcher = MicroBatcher(_evaluate, window_s=0.05, max_batch=max_batch)

            async def run():
                return await asyncio.gather(
                    *[batcher.submit(entry, r) for r in rows]
                )

            return asyncio.run(run())

        assert serve(1) == serve(4) == serve(12)

    def test_evaluation_failure_fans_back_to_every_caller(self):
        entry = _entry()

        def broken(entry, membership):
            raise RuntimeError("kernel exploded")

        batcher = MicroBatcher(broken, window_s=0.05, max_batch=3)

        async def run():
            return await asyncio.gather(
                *[batcher.submit(entry, r) for r in _rows(entry, 3)],
                return_exceptions=True,
            )

        results = asyncio.run(run())
        assert len(results) == 3
        assert all(isinstance(r, ServingError) for r in results)
        assert all("batch evaluation failed" in str(r) for r in results)

    def test_on_flush_hook_fires_after_fanback(self):
        entry = _entry()
        seen = []
        batcher = MicroBatcher(
            _evaluate, window_s=0.05, max_batch=2,
            on_flush=lambda: seen.append("flush"),
        )

        async def run():
            await asyncio.gather(
                *[batcher.submit(entry, r) for r in _rows(entry, 4)]
            )

        asyncio.run(run())
        assert seen == ["flush", "flush"]


class TestStats:
    def test_stats_track_flushes_and_width(self):
        entry = _entry()
        batcher = MicroBatcher(_evaluate, window_s=0.05, max_batch=4)

        async def run():
            await asyncio.gather(
                *[batcher.submit(entry, r) for r in _rows(entry, 8)]
            )

        asyncio.run(run())
        stats = batcher.stats()
        assert stats["rows"] == 8
        assert stats["batches"] == 2
        assert stats["mean_width"] == 4.0
        assert stats["queued"] == 0

    def test_flush_all_drains_pending(self):
        entry = _entry()
        batcher = MicroBatcher(_evaluate, window_s=60.0, max_batch=1024)
        got = []

        async def run():
            batcher.enqueue(
                entry, _rows(entry, 1)[0], lambda v, e: got.append(v)
            )
            batcher.flush_all()

        asyncio.run(run())
        assert len(got) == 1 and isinstance(got[0], float)
        assert batcher.depth() == 0
