"""Frame codec, graph payloads, and membership masks."""

import asyncio
import json

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_regularish_ugraph
from repro.graphs.ugraph import UGraph
from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    ServingError,
    canonical_json,
    encode_frame,
    graph_from_payload,
    graph_oid,
    graph_payload,
    mask_to_row,
    payload_bytes_digest,
    read_envelope,
    side_mask,
)


class TestCanonicalJson:
    def test_sorted_keys_and_minimal_separators(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == b'{"a":[1,2],"b":1}'

    def test_nan_refused(self):
        with pytest.raises(ProtocolError):
            canonical_json({"x": float("nan")})

    def test_unserializable_refused(self):
        with pytest.raises(ProtocolError):
            canonical_json({"x": object()})


class TestFrameCodec:
    def _roundtrip(self, wire):
        async def decode():
            reader = asyncio.StreamReader()
            reader.feed_data(wire)
            reader.feed_eof()
            return await read_envelope(reader)

        return asyncio.run(decode())

    def test_roundtrip_preserves_fields(self):
        wire, sent = encode_frame("c", "s", "serve.ping", {"rid": 7})
        received = self._roundtrip(wire)
        assert received.sender == "c"
        assert received.receiver == "s"
        assert received.kind == "serve.ping"
        assert received.payload == {"rid": 7}
        assert received.digest == sent.digest
        assert received.bits == sent.bits

    def test_bits_is_eight_times_payload_len(self):
        _, sent = encode_frame("c", "s", "k", {"a": 1})
        assert sent.bits == 8 * len(canonical_json({"a": 1}))

    def test_digest_is_sha256_of_payload_bytes(self):
        _, sent = encode_frame("c", "s", "k", {"a": 1})
        assert sent.digest == payload_bytes_digest(canonical_json({"a": 1}))

    def test_corrupted_payload_fails_digest_check(self):
        wire, _ = encode_frame("c", "s", "k", {"value": 100})
        corrupt = wire[:-2] + b"1}"  # same length, different bytes
        with pytest.raises(ProtocolError, match="digest mismatch"):
            self._roundtrip(corrupt)

    def test_truncated_frame_raises(self):
        wire, _ = encode_frame("c", "s", "k", {"a": 1})
        with pytest.raises(ProtocolError, match="mid-frame"):
            self._roundtrip(wire[: len(wire) - 3])

    def test_clean_eof_returns_none(self):
        assert self._roundtrip(b"") is None

    def test_oversized_frame_refused_on_encode(self):
        with pytest.raises(ProtocolError, match="MAX_FRAME_BYTES"):
            encode_frame("c", "s", "k", {"blob": "x" * (MAX_FRAME_BYTES + 16)})

    def test_header_length_bound_checked_before_allocation(self):
        async def decode():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\xff\xff\xff\xff")
            reader.feed_eof()
            return await read_envelope(reader)

        with pytest.raises(ProtocolError, match="out of range"):
            asyncio.run(decode())


class TestGraphPayload:
    def test_ugraph_roundtrip_preserves_order(self):
        g = random_regularish_ugraph(24, 4, rng=1)
        payload = graph_payload(g)
        back = graph_from_payload(payload)
        assert isinstance(back, UGraph)
        assert list(back.nodes()) == list(g.nodes())
        assert list(back.edges()) == [
            (u, v, float(w)) for u, v, w in g.edges()
        ]

    def test_digraph_roundtrip(self):
        g = DiGraph()
        g.add_edge("a", "b", 2.0)
        g.add_edge("b", "a", 1.0)
        back = graph_from_payload(graph_payload(g))
        assert isinstance(back, DiGraph)
        assert list(back.edges()) == list(g.edges())

    def test_numpy_labels_coerced_to_json_types(self):
        g = UGraph()
        g.add_edge(np.int64(0), np.int64(1), 1.0)
        payload = graph_payload(g)
        json.dumps(payload, allow_nan=False)  # must not raise
        assert all(isinstance(v, int) for v in payload["nodes"])

    def test_oid_is_content_address(self):
        g = random_regularish_ugraph(16, 4, rng=2)
        assert graph_oid(graph_payload(g)) == graph_oid(graph_payload(g))
        other = random_regularish_ugraph(16, 4, rng=3)
        assert graph_oid(graph_payload(g)) != graph_oid(graph_payload(other))

    def test_malformed_payload_raises(self):
        with pytest.raises(ProtocolError, match="malformed graph payload"):
            graph_from_payload({"nodes": []})

    def test_reconstruction_freezes_to_identical_csr(self):
        g = random_regularish_ugraph(32, 4, rng=4)
        back = graph_from_payload(graph_payload(g))
        a, b = g.freeze(), back.freeze()
        member = a.membership_matrix(
            [frozenset(list(g.nodes())[: k + 1]) for k in range(5)]
        )
        np.testing.assert_array_equal(
            a.cut_weights_stable(member), b.cut_weights_stable(member)
        )


class TestSideMask:
    def test_roundtrip(self):
        index = {f"v{i}": i for i in range(19)}
        side = ["v0", "v7", "v18"]
        row = mask_to_row(side_mask(index, side, 19), 19)
        expect = np.zeros(19, dtype=bool)
        expect[[0, 7, 18]] = True
        np.testing.assert_array_equal(row, expect)

    def test_mask_is_ceil_n_over_8_bytes(self):
        index = {i: i for i in range(19)}
        assert len(side_mask(index, [0], 19)) == 2 * ((19 + 7) // 8)

    def test_unknown_node_raises(self):
        with pytest.raises(ServingError, match="unknown node"):
            side_mask({"a": 0}, ["zzz"], 1)

    def test_wrong_length_mask_raises(self):
        with pytest.raises(ProtocolError, match="bytes"):
            mask_to_row("00", 19)

    def test_malformed_hex_raises(self):
        with pytest.raises(ProtocolError, match="malformed side mask"):
            mask_to_row("zz", 4)
