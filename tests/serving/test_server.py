"""End-to-end server behavior over real sockets (in-thread daemon)."""

import asyncio
import socket

import numpy as np
import pytest

from repro import kernels as kernels_mod
from repro import obs
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_regularish_ugraph
from repro.graphs.mincut import directed_global_min_cut, stoer_wagner
from repro.obs import capture as obs_capture
from repro.serving.client import AsyncServingClient, ServingClient
from repro.serving.protocol import ServingError
from repro.serving.server import ServerThread


def _graph(rng=1, n=48):
    return random_regularish_ugraph(n, 4, rng=rng)


def _sides(graph, count, rng=9):
    nodes = list(graph.nodes())
    gen = np.random.default_rng(rng)
    sides = []
    for _ in range(count):
        size = int(gen.integers(1, len(nodes)))
        picks = gen.choice(len(nodes), size=size, replace=False)
        sides.append([nodes[i] for i in picks])
    return sides


def _direct_values(graph, sides):
    csr = graph.freeze()
    member = csr.membership_matrix([frozenset(s) for s in sides])
    return [float(v) for v in csr.cut_weights_stable(member)]


class TestLifecycle:
    def test_port_raises_before_start(self):
        thread = ServerThread()
        with pytest.raises(ServingError, match="not running"):
            thread.port

    def test_bind_failure_surfaces_in_start(self):
        with socket.socket() as holder:
            holder.bind(("127.0.0.1", 0))
            taken = holder.getsockname()[1]
            with pytest.raises(ServingError, match="failed to start"):
                ServerThread(port=taken).start()

    def test_shutdown_op_stops_the_daemon(self):
        thread = ServerThread().start()
        with ServingClient("127.0.0.1", thread.port) as client:
            assert client.shutdown()["name"] == "sketch-server"
        thread._thread.join(timeout=10.0)
        assert not thread._thread.is_alive()


class TestBasicOps:
    def test_ping_register_and_stats(self):
        graph = _graph()
        with ServerThread() as thread:
            with ServingClient("127.0.0.1", thread.port) as client:
                assert client.ping()["name"] == "sketch-server"
                oid = client.register_graph(graph)
                stats = client.stats()
                assert stats["cache"]["entries"] == 1
                assert stats["requests"] >= 2
                # Re-registering the identical graph is a cache hit.
                assert client.register_graph(graph) == oid
                assert client.stats()["cache"]["hits"] >= 1

    def test_cut_weight_matches_direct_evaluation(self):
        graph = _graph()
        sides = _sides(graph, 12)
        direct = _direct_values(graph, sides)
        with ServerThread() as thread:
            with ServingClient("127.0.0.1", thread.port) as client:
                oid = client.register_graph(graph)
                served = [client.cut_weight(oid, s) for s in sides]
                batch = client.cut_weights(oid, sides)
        assert served == direct
        assert batch == direct

    def test_min_cut_undirected(self):
        graph = _graph()
        value, side = stoer_wagner(graph)
        with ServerThread() as thread:
            with ServingClient("127.0.0.1", thread.port) as client:
                oid = client.register_graph(graph)
                reply = client.min_cut(oid)
        assert reply["value"] == float(value)
        assert set(reply["side"]) == set(side)

    def test_min_cut_directed(self):
        graph = DiGraph()
        for u, v, w in [(0, 1, 1.0), (1, 2, 3.0), (2, 0, 2.0), (0, 2, 1.0)]:
            graph.add_edge(u, v, w)
        value, _ = directed_global_min_cut(graph)
        with ServerThread() as thread:
            with ServingClient("127.0.0.1", thread.port) as client:
                oid = client.register_graph(graph)
                assert client.min_cut(oid)["value"] == float(value)

    def test_sketch_query_builds_then_caches(self):
        graph = _graph()
        side = _sides(graph, 1)[0]
        with ServerThread() as thread:
            with ServingClient("127.0.0.1", thread.port) as client:
                oid = client.register_graph(graph)
                first = client.sketch_query(oid, side, epsilon=0.5, seed=3)
                again = client.sketch_query(oid, side, epsilon=0.5, seed=3)
        assert first["size_bits"] > 0
        assert again == first  # cached sketch: same object, same answer


class TestErrors:
    def test_unknown_oid_is_a_serving_error(self):
        with ServerThread() as thread:
            with ServingClient("127.0.0.1", thread.port) as client:
                client._graphs["f" * 64] = type(
                    "R", (), {"oid": "f" * 64, "index": {0: 0}, "n": 1}
                )()
                with pytest.raises(ServingError, match="re-register"):
                    client.cut_weight("f" * 64, [0])

    def test_unknown_op_is_a_serving_error(self):
        with ServerThread() as thread:
            with ServingClient("127.0.0.1", thread.port) as client:
                with pytest.raises(ServingError, match="unknown op"):
                    client.request("serve.frobnicate", {})

    def test_error_reply_does_not_kill_the_connection(self):
        graph = _graph()
        with ServerThread() as thread:
            with ServingClient("127.0.0.1", thread.port) as client:
                oid = client.register_graph(graph)
                with pytest.raises(ServingError):
                    client.request("serve.min_cut", {"oid": "nope"})
                # Same connection still serves.
                assert client.cut_weight(oid, _sides(graph, 1)[0]) >= 0.0


def _serve_concurrently(port, graph, sides, clients=3):
    """N async clients interleaving queries down separate connections."""

    async def run():
        conns = [
            await AsyncServingClient("127.0.0.1", port, name=f"c{i}").connect()
            for i in range(clients)
        ]
        try:
            oids = await asyncio.gather(
                *[c.register_graph(graph) for c in conns]
            )
            tasks = [
                conns[i % clients].cut_weight(oids[i % clients], side)
                for i, side in enumerate(sides)
            ]
            return await asyncio.gather(*tasks)
        finally:
            for c in conns:
                await c.close()

    return asyncio.run(run())


class TestConcurrentDeterminism:
    """Interleaved concurrent clients == serial in-process, bytewise."""

    @pytest.mark.parametrize(
        "window_s,max_batch",
        [(0.0, 1), (0.002, 8), (0.01, 64), (0.05, 256)],
    )
    def test_batch_settings_do_not_change_bytes(self, window_s, max_batch):
        graph = _graph(rng=2)
        sides = _sides(graph, 30, rng=11)
        direct = _direct_values(graph, sides)
        with ServerThread(batch_window_s=window_s, max_batch=max_batch) as t:
            served = _serve_concurrently(t.port, graph, sides)
        assert served == direct

    @pytest.mark.parametrize("backend", ["python", "native"])
    def test_kernel_backends_do_not_change_bytes(self, backend):
        previous = kernels_mod.select_backend(backend)
        try:
            try:
                kernels_mod.get_backend()
            except kernels_mod.KernelUnavailableError as exc:
                pytest.skip(f"no {backend} kernel backend: {exc}")
            graph = _graph(rng=3)
            sides = _sides(graph, 20, rng=13)
            direct = _direct_values(graph, sides)
            with ServerThread(batch_window_s=0.005, max_batch=16) as t:
                served = _serve_concurrently(t.port, graph, sides)
            assert served == direct
        finally:
            kernels_mod.select_backend(previous)

    def test_many_clients_share_one_snapshot_entry(self):
        graph = _graph(rng=4)
        sides = _sides(graph, 12, rng=17)
        with ServerThread(batch_window_s=0.005, max_batch=32) as t:
            _serve_concurrently(t.port, graph, sides, clients=4)
            with ServingClient("127.0.0.1", t.port) as client:
                client.register_graph(graph)
                stats = client.stats()
        assert stats["cache"]["entries"] == 1

    def test_batching_actually_coalesces_under_concurrency(self):
        graph = _graph(rng=5)
        sides = _sides(graph, 40, rng=19)
        with ServerThread(batch_window_s=0.01, max_batch=256) as t:
            _serve_concurrently(t.port, graph, sides, clients=2)
            with ServingClient("127.0.0.1", t.port) as client:
                client.register_graph(graph)
                batcher = client.stats()["batcher"]
        assert batcher["rows"] == 40
        assert batcher["max_width"] > 1  # at least one real batch formed


class TestCaptureIntegration:
    def test_both_directions_recorded_with_digests(self):
        obs.enable()
        cap = obs_capture.WireCapture(meta={"kind": "serving-test"})
        obs_capture.install(cap)
        try:
            graph = _graph(rng=6, n=16)
            with ServerThread() as thread:
                with ServingClient("127.0.0.1", thread.port) as client:
                    oid = client.register_graph(graph)
                    client.cut_weight(oid, _sides(graph, 1)[0])
        finally:
            obs_capture.uninstall(cap)
        kinds = [m.kind for m in cap.messages]
        assert "serve.register" in kinds
        assert "serve.register.ok" in kinds
        assert "serve.cut_weight" in kinds
        assert "serve.cut_weight.ok" in kinds
        assert all(m.digest for m in cap.messages)
        # Client and server both record each frame: every wire message
        # appears an even number of times by (kind, digest).
        from collections import Counter

        by_identity = Counter((m.kind, m.digest) for m in cap.messages)
        assert all(count % 2 == 0 for count in by_identity.values())
