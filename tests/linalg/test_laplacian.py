"""Tests for repro.linalg.laplacian."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.cuts import all_undirected_cut_values
from repro.graphs.generators import random_connected_ugraph
from repro.graphs.ugraph import UGraph
from repro.linalg.laplacian import (
    effective_resistances,
    indicator_vector,
    laplacian_matrix,
    node_order,
    quadratic_form,
    spectral_distortion,
)


class TestLaplacianMatrix:
    def test_small_example(self):
        g = UGraph(edges=[("a", "b", 2.0), ("b", "c", 1.0)])
        lap = laplacian_matrix(g, order=["a", "b", "c"])
        expected = np.array(
            [[2.0, -2.0, 0.0], [-2.0, 3.0, -1.0], [0.0, -1.0, 1.0]]
        )
        assert np.allclose(lap, expected)

    @given(st.integers(2, 10), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_rows_sum_to_zero_and_symmetric(self, n, seed):
        g = random_connected_ugraph(n, extra_edge_prob=0.4, rng=seed)
        lap = laplacian_matrix(g)
        assert np.allclose(lap.sum(axis=1), 0.0)
        assert np.allclose(lap, lap.T)

    @given(st.integers(2, 8), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_positive_semidefinite(self, n, seed):
        g = random_connected_ugraph(n, rng=seed, weight_range=(0.5, 2.0))
        eigenvalues = np.linalg.eigvalsh(laplacian_matrix(g))
        assert eigenvalues.min() > -1e-9

    def test_bad_order_rejected(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        with pytest.raises(GraphError):
            laplacian_matrix(g, order=["a"])


class TestQuadraticForm:
    @given(st.integers(3, 9), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_indicator_gives_cut_value(self, n, seed):
        """x^T L x = cut(S) for x = 1_S — the bridge between spectral
        and cut sparsification."""
        g = random_connected_ugraph(
            n, extra_edge_prob=0.4, rng=seed, weight_range=(0.5, 3.0)
        )
        order = node_order(g)
        lap = laplacian_matrix(g, order)
        for side, value in all_undirected_cut_values(g):
            x = indicator_vector(order, set(side))
            assert quadratic_form(lap, x) == pytest.approx(value)

    def test_constant_vector_is_in_kernel(self):
        g = random_connected_ugraph(6, rng=0)
        lap = laplacian_matrix(g)
        assert quadratic_form(lap, np.ones(6)) == pytest.approx(0.0)

    def test_dimension_checked(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        with pytest.raises(GraphError):
            quadratic_form(laplacian_matrix(g), np.ones(3))

    def test_indicator_rejects_unknown_nodes(self):
        with pytest.raises(GraphError):
            indicator_vector(["a", "b"], {"zzz"})


class TestEffectiveResistances:
    def test_series_resistors(self):
        g = UGraph(edges=[("a", "b", 1.0), ("b", "c", 1.0)])
        res = effective_resistances(g)
        assert res[("a", "b")] == pytest.approx(1.0)
        assert res[("b", "c")] == pytest.approx(1.0)

    def test_parallel_paths_halve_resistance(self):
        # A 4-cycle: each edge sees 1 ohm in series with 3 in parallel.
        g = UGraph()
        for u, v in (("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")):
            g.add_edge(u, v, 1.0)
        res = effective_resistances(g)
        for value in res.values():
            assert value == pytest.approx(0.75)

    @given(st.integers(3, 10), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_fosters_theorem(self, n, seed):
        """sum_e w_e R_e = n - 1 for connected graphs."""
        g = random_connected_ugraph(
            n, extra_edge_prob=0.4, rng=seed, weight_range=(0.5, 2.0)
        )
        res = effective_resistances(g)
        total = sum(w * res[(u, v)] for u, v, w in g.edges())
        assert total == pytest.approx(n - 1)

    def test_bridge_has_unit_leverage(self):
        g = random_connected_ugraph(5, extra_edge_prob=0.9, rng=3)
        g.add_edge("pendant", 0, 2.0)
        res = effective_resistances(g)
        # A bridge's leverage w * R is exactly 1 (key order follows the
        # edge iterator, so accept either orientation).
        value = res.get(("pendant", 0), res.get((0, "pendant")))
        assert 2.0 * value == pytest.approx(1.0)

    def test_disconnected_rejected(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        g.add_node("c")
        with pytest.raises(GraphError):
            effective_resistances(g)


class TestSpectralDistortion:
    def test_identical_graphs_zero(self):
        g = random_connected_ugraph(6, rng=4)
        probes = [np.random.default_rng(0).normal(size=6) for _ in range(5)]
        assert spectral_distortion(g, g.copy(), probes) == 0.0

    def test_scaled_graph_distortion(self):
        g = random_connected_ugraph(6, rng=5)
        scaled = UGraph(nodes=g.nodes())
        for u, v, w in g.edges():
            scaled.add_edge(u, v, 1.2 * w)
        probes = [np.random.default_rng(1).normal(size=6) for _ in range(5)]
        assert spectral_distortion(g, scaled, probes) == pytest.approx(0.2)

    def test_node_set_mismatch_rejected(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        h = UGraph(edges=[("a", "c", 1.0)])
        with pytest.raises(GraphError):
            spectral_distortion(g, h, [np.zeros(2)])
