"""Tests for repro.linalg.hadamard — Lemma 3.2's three conditions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.linalg.hadamard import (
    Lemma32Matrix,
    is_power_of_two,
    sylvester_hadamard,
)
from repro.utils.bitstrings import random_signstring


class TestPowerOfTwo:
    def test_powers(self):
        for v in (1, 2, 4, 8, 1024):
            assert is_power_of_two(v)

    def test_non_powers(self):
        for v in (0, -2, 3, 6, 12, 1000):
            assert not is_power_of_two(v)


class TestSylvesterHadamard:
    @pytest.mark.parametrize("order", [1, 2, 4, 8, 16, 32])
    def test_orthogonal_rows(self, order):
        h = sylvester_hadamard(order).astype(np.int64)
        assert np.array_equal(h @ h.T, order * np.eye(order, dtype=np.int64))

    @pytest.mark.parametrize("order", [2, 4, 8, 16])
    def test_first_row_all_ones_rest_balanced(self, order):
        h = sylvester_hadamard(order)
        assert np.all(h[0] == 1)
        assert np.all(h[1:].sum(axis=1) == 0)

    def test_entries_are_signs(self):
        h = sylvester_hadamard(16)
        assert set(np.unique(h)) == {-1, 1}

    def test_bad_order_raises(self):
        with pytest.raises(ParameterError):
            sylvester_hadamard(3)
        with pytest.raises(ParameterError):
            sylvester_hadamard(0)


class TestLemma32Matrix:
    @pytest.mark.parametrize("side", [2, 4, 8])
    def test_dimensions(self, side):
        m = Lemma32Matrix(side)
        assert m.num_rows == (side - 1) ** 2
        assert m.row_length == side * side
        assert m.dense().shape == (m.num_rows, m.row_length)

    @pytest.mark.parametrize("side", [2, 4, 8])
    def test_condition_1_rows_balanced(self, side):
        dense = Lemma32Matrix(side).dense().astype(np.int64)
        assert np.all(dense.sum(axis=1) == 0)

    @pytest.mark.parametrize("side", [2, 4, 8])
    def test_condition_2_rows_orthogonal(self, side):
        m = Lemma32Matrix(side)
        dense = m.dense().astype(np.int64)
        gram = dense @ dense.T
        assert np.array_equal(gram, m.row_length * np.eye(m.num_rows, dtype=np.int64))

    @pytest.mark.parametrize("side", [2, 4, 8])
    def test_condition_3_tensor_factors_balanced(self, side):
        m = Lemma32Matrix(side)
        for row in m.rows():
            assert int(row.u.sum()) == 0
            assert int(row.v.sum()) == 0
            assert np.array_equal(row.dense(), np.kron(row.u, row.v))

    def test_side_sets_are_half_sized(self):
        m = Lemma32Matrix(8)
        for row in m.rows():
            assert len(row.side_a) == 4
            assert len(row.side_b) == 4

    def test_bad_side_raises(self):
        with pytest.raises(ParameterError):
            Lemma32Matrix(3)
        with pytest.raises(ParameterError):
            Lemma32Matrix(1)

    def test_row_index_bounds(self):
        m = Lemma32Matrix(4)
        with pytest.raises(ParameterError):
            m.row(-1)
        with pytest.raises(ParameterError):
            m.row(m.num_rows)

    @pytest.mark.parametrize("side", [2, 4, 8])
    def test_combine_matches_dense_superposition(self, side):
        m = Lemma32Matrix(side)
        signs = random_signstring(m.num_rows, rng=side)
        expected = (
            signs.astype(np.int64)[:, None] * m.dense().astype(np.int64)
        ).sum(axis=0)
        assert np.array_equal(m.combine(signs), expected)

    @given(st.sampled_from([2, 4, 8]), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_combine_decode_roundtrip(self, side, seed):
        m = Lemma32Matrix(side)
        signs = random_signstring(m.num_rows, rng=seed)
        x = m.combine(signs)
        for t in range(m.num_rows):
            assert m.decode_coefficient(x, t) == pytest.approx(float(signs[t]))

    def test_combine_validates_signs(self):
        m = Lemma32Matrix(4)
        with pytest.raises(ParameterError):
            m.combine(np.zeros(m.num_rows, dtype=np.int8))
        with pytest.raises(ParameterError):
            m.combine(np.ones(m.num_rows + 1, dtype=np.int8))

    def test_decode_validates_length(self):
        m = Lemma32Matrix(4)
        with pytest.raises(ParameterError):
            m.decode_coefficient(np.zeros(5), 0)
