"""Tests for the Theorem 1.1 encoder/decoder pair."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.foreach_lb.decoder import ForEachDecoder
from repro.foreach_lb.encoder import ForEachEncoder
from repro.foreach_lb.params import ForEachParams
from repro.graphs.balance import edgewise_balance_bound
from repro.graphs.connectivity import is_strongly_connected
from repro.sketch.exact import ExactCutSketch
from repro.sketch.noisy import NoisyForEachSketch
from repro.utils.bitstrings import random_signstring

PARAMS = ForEachParams(inv_eps=4, sqrt_beta=2, num_groups=2)
CHAINED = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=4)


@pytest.fixture(scope="module")
def encoded():
    encoder = ForEachEncoder(PARAMS)
    s = random_signstring(PARAMS.string_length, rng=11)
    return s, encoder.encode(s)


@pytest.fixture(scope="module")
def encoded_chained():
    encoder = ForEachEncoder(CHAINED)
    s = random_signstring(CHAINED.string_length, rng=12)
    return s, encoder.encode(s)


class TestEncoder:
    def test_graph_shape(self, encoded):
        _, eg = encoded
        assert eg.graph.num_nodes == PARAMS.num_nodes
        # Complete bipartite between the two groups, both directions.
        assert eg.graph.num_edges == 2 * PARAMS.group_size**2

    def test_strongly_connected(self, encoded):
        _, eg = encoded
        assert is_strongly_connected(eg.graph)

    def test_balance_is_o_beta_log_inv_eps(self, encoded):
        _, eg = encoded
        bound = edgewise_balance_bound(eg.graph)
        ceiling = PARAMS.beta * eg.weight_ceiling
        assert bound <= ceiling + 1e-9

    def test_forward_weights_in_declared_band(self, encoded):
        _, eg = encoded
        for u, v, w in eg.graph.edges():
            if u[0] == 0 and v[0] == 1:  # forward edges group0 -> group1
                assert eg.weight_floor - 1e-9 <= w <= eg.weight_ceiling + 1e-9

    def test_backward_weights_are_inverse_beta(self, encoded):
        _, eg = encoded
        for u, v, w in eg.graph.edges():
            if u[0] == 1 and v[0] == 0:
                assert w == pytest.approx(1.0 / PARAMS.beta)

    def test_deterministic(self):
        s = random_signstring(PARAMS.string_length, rng=13)
        encoder = ForEachEncoder(PARAMS)
        g1 = encoder.encode(s).graph
        g2 = encoder.encode(s).graph
        assert sorted(map(repr, g1.edges())) == sorted(map(repr, g2.edges()))

    def test_rejects_wrong_length(self):
        encoder = ForEachEncoder(PARAMS)
        with pytest.raises(ParameterError):
            encoder.encode(np.ones(3, dtype=np.int8))

    def test_rejects_non_signs(self):
        encoder = ForEachEncoder(PARAMS)
        with pytest.raises(ParameterError):
            encoder.encode(np.zeros(PARAMS.string_length, dtype=np.int8))

    def test_c1_must_be_positive(self):
        with pytest.raises(ParameterError):
            ForEachEncoder(PARAMS, c1=0.0)

    def test_chained_construction_has_all_pairs(self, encoded_chained):
        _, eg = encoded_chained
        k = CHAINED.group_size
        assert eg.graph.num_edges == 2 * (CHAINED.num_groups - 1) * k * k


class TestDecoderPlans:
    def test_four_queries_per_bit(self):
        decoder = ForEachDecoder(PARAMS)
        plans = decoder.query_plans(0)
        assert len(plans) == 4
        assert sorted(p.sign for p in plans) == [-1, -1, 1, 1]

    def test_cut_sides_are_proper(self, encoded):
        _, eg = encoded
        decoder = ForEachDecoder(PARAMS)
        for q in (0, PARAMS.string_length // 2, PARAMS.string_length - 1):
            for plan in decoder.query_plans(q):
                assert 0 < len(plan.side) < PARAMS.num_nodes

    def test_fixed_backward_matches_figure_1_accounting(self):
        """Analytic count of Figure 1's backward edges, Lemma 3.3 case."""
        decoder = ForEachDecoder(PARAMS)
        plan = decoder.query_plans(0)[0]
        k = PARAMS.group_size
        half = PARAMS.inv_eps // 2  # |A| = |B| = 1/(2 eps)
        expected = (k - half) * (k - half) / PARAMS.beta
        assert plan.fixed_backward == pytest.approx(expected)

    def test_boost_must_be_positive(self, encoded):
        _, eg = encoded
        decoder = ForEachDecoder(PARAMS)
        with pytest.raises(ParameterError):
            decoder.decode_bit(ExactCutSketch(eg.graph), 0, boost=0)


class TestDecoding:
    def test_exact_sketch_decodes_every_bit(self, encoded):
        s, eg = encoded
        decoder = ForEachDecoder(PARAMS)
        sketch = ExactCutSketch(eg.graph)
        for q in range(PARAMS.string_length):
            if PARAMS.locate_bit(q)[:3] in eg.failed_blocks:
                continue
            assert decoder.decode_bit(sketch, q) == int(s[q])

    def test_exact_sketch_decodes_chained_bits(self, encoded_chained):
        s, eg = encoded_chained
        decoder = ForEachDecoder(CHAINED)
        sketch = ExactCutSketch(eg.graph)
        for q in range(0, CHAINED.string_length, 5):
            if CHAINED.locate_bit(q)[:3] in eg.failed_blocks:
                continue
            assert decoder.decode_bit(sketch, q) == int(s[q])

    def test_inner_product_has_predicted_magnitude(self, encoded):
        """<w, M_t> = z_t / eps exactly (the proof's key identity)."""
        s, eg = encoded
        decoder = ForEachDecoder(PARAMS)
        sketch = ExactCutSketch(eg.graph)
        for q in (0, 7, PARAMS.string_length - 1):
            if PARAMS.locate_bit(q)[:3] in eg.failed_blocks:
                continue
            value = decoder.estimate_inner_product(sketch, q)
            assert value == pytest.approx(int(s[q]) * PARAMS.inv_eps)

    def test_small_noise_still_decodes(self, encoded):
        s, eg = encoded
        decoder = ForEachDecoder(PARAMS)
        # Noise at the proof's tolerance c2 * eps / ln(1/eps).
        tolerance = 0.05 * PARAMS.epsilon / math.log(PARAMS.inv_eps)
        sketch = NoisyForEachSketch(eg.graph, epsilon=tolerance, rng=3)
        correct = 0
        total = 0
        for q in range(PARAMS.string_length):
            if PARAMS.locate_bit(q)[:3] in eg.failed_blocks:
                continue
            total += 1
            if decoder.decode_bit(sketch, q) == int(s[q]):
                correct += 1
        assert correct == total

    def test_overwhelming_noise_breaks_decoding(self, encoded):
        """Failure injection: way past the threshold the decoder must
        drop to near-chance — this *is* the theorem's phase transition."""
        s, eg = encoded
        decoder = ForEachDecoder(PARAMS)
        sketch = NoisyForEachSketch(eg.graph, epsilon=0.9, rng=4)
        correct = sum(
            1
            for q in range(PARAMS.string_length)
            if decoder.decode_bit(sketch, q) == int(s[q])
        )
        assert correct < PARAMS.string_length  # no longer perfect

    def test_boosting_defeats_query_failures(self, encoded):
        s, eg = encoded
        decoder = ForEachDecoder(PARAMS)
        sketch = NoisyForEachSketch(
            eg.graph, epsilon=0.001, failure_prob=0.1, rng=5
        )
        correct = 0
        total = 0
        for q in range(PARAMS.string_length):
            if PARAMS.locate_bit(q)[:3] in eg.failed_blocks:
                continue
            total += 1
            if decoder.decode_bit(sketch, q, boost=9) == int(s[q]):
                correct += 1
        assert correct / total > 0.9
