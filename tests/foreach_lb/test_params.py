"""Tests for repro.foreach_lb.params."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.foreach_lb.params import ForEachParams


class TestValidation:
    def test_inv_eps_must_be_power_of_two(self):
        with pytest.raises(ParameterError):
            ForEachParams(inv_eps=3, sqrt_beta=1)
        with pytest.raises(ParameterError):
            ForEachParams(inv_eps=1, sqrt_beta=1)

    def test_sqrt_beta_positive(self):
        with pytest.raises(ParameterError):
            ForEachParams(inv_eps=2, sqrt_beta=0)

    def test_num_groups_at_least_two(self):
        with pytest.raises(ParameterError):
            ForEachParams(inv_eps=2, sqrt_beta=1, num_groups=1)


class TestDerivedQuantities:
    def test_lemma_33_sizing(self):
        """inv_eps=4, sqrt_beta=2: the Lemma 3.3 special case n = 2k."""
        p = ForEachParams(inv_eps=4, sqrt_beta=2, num_groups=2)
        assert p.epsilon == 0.25
        assert p.beta == 4
        assert p.group_size == 8  # k = sqrt(beta)/eps
        assert p.num_nodes == 16
        assert p.bits_per_block == 9  # (1/eps - 1)^2
        assert p.bits_per_pair == 36  # beta * (1/eps - 1)^2
        assert p.string_length == 36
        assert p.backward_weight == 0.25

    def test_chained_groups_scale_linearly(self):
        base = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2)
        chained = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=5)
        assert chained.string_length == 4 * base.string_length
        assert chained.num_nodes == 5 * base.group_size

    @given(
        st.sampled_from([2, 4, 8]),
        st.integers(1, 3),
        st.integers(2, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_string_length_is_theorem_11_count(self, inv_eps, sqrt_beta, groups):
        p = ForEachParams(inv_eps=inv_eps, sqrt_beta=sqrt_beta, num_groups=groups)
        expected = (groups - 1) * (sqrt_beta**2) * (inv_eps - 1) ** 2
        assert p.string_length == expected


class TestNodeAddressing:
    def test_group_nodes(self):
        p = ForEachParams(inv_eps=2, sqrt_beta=2, num_groups=2)
        nodes = p.group_nodes(0)
        assert len(nodes) == p.group_size
        assert len(set(nodes)) == p.group_size

    def test_cluster_nodes_partition_group(self):
        p = ForEachParams(inv_eps=4, sqrt_beta=2, num_groups=2)
        all_cluster_nodes = []
        for cluster in range(p.sqrt_beta):
            all_cluster_nodes.extend(p.cluster_nodes(0, cluster))
        assert sorted(map(str, all_cluster_nodes)) == sorted(
            map(str, p.group_nodes(0))
        )

    def test_bounds_checked(self):
        p = ForEachParams(inv_eps=2, sqrt_beta=1, num_groups=2)
        with pytest.raises(ParameterError):
            p.group_nodes(2)
        with pytest.raises(ParameterError):
            p.cluster_nodes(0, 1)
        with pytest.raises(ParameterError):
            p.node_label(0, 0, 2)


class TestBitLocation:
    @given(st.sampled_from([2, 4]), st.integers(1, 2), st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_locate_bit_is_a_bijection(self, inv_eps, sqrt_beta, groups):
        p = ForEachParams(inv_eps=inv_eps, sqrt_beta=sqrt_beta, num_groups=groups)
        seen = set()
        for q in range(p.string_length):
            loc = p.locate_bit(q)
            pair, ci, cj, t = loc
            assert 0 <= pair < groups - 1
            assert 0 <= ci < sqrt_beta
            assert 0 <= cj < sqrt_beta
            assert 0 <= t < p.bits_per_block
            seen.add(loc)
        assert len(seen) == p.string_length

    def test_out_of_range(self):
        p = ForEachParams(inv_eps=2, sqrt_beta=1, num_groups=2)
        with pytest.raises(ParameterError):
            p.locate_bit(-1)
        with pytest.raises(ParameterError):
            p.locate_bit(p.string_length)
