"""Tests for the Theorem 1.1 one-way protocol adapter."""

import pytest

from repro.comm.protocol import run_protocol
from repro.errors import ParameterError, ProtocolError
from repro.foreach_lb.encoder import ForEachEncoder
from repro.foreach_lb.params import ForEachParams
from repro.foreach_lb.protocol import (
    IndexQuery,
    SketchedGraphIndexProtocol,
    deserialize_construction_graph,
    serialize_construction_graph,
)
from repro.utils.bitstrings import random_signstring

PARAMS = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2)


class TestSerialization:
    def test_roundtrip(self):
        s = random_signstring(PARAMS.string_length, rng=0)
        graph = ForEachEncoder(PARAMS).encode(s).graph
        payload = serialize_construction_graph(graph, PARAMS)
        restored = deserialize_construction_graph(payload, PARAMS)
        assert restored.num_edges == graph.num_edges
        for u, v, w in graph.edges():
            assert restored.weight(u, v) == pytest.approx(w)

    def test_byte_count_is_tight(self):
        s = random_signstring(PARAMS.string_length, rng=1)
        graph = ForEachEncoder(PARAMS).encode(s).graph
        payload = serialize_construction_graph(graph, PARAMS)
        assert len(payload) == 4 + graph.num_edges * 16

    def test_truncated_message_rejected(self):
        s = random_signstring(PARAMS.string_length, rng=2)
        graph = ForEachEncoder(PARAMS).encode(s).graph
        payload = serialize_construction_graph(graph, PARAMS)
        with pytest.raises(ProtocolError):
            deserialize_construction_graph(payload[:-3], PARAMS)
        with pytest.raises(ProtocolError):
            deserialize_construction_graph(b"", PARAMS)


class TestProtocol:
    def test_exact_mode_always_correct(self):
        protocol = SketchedGraphIndexProtocol(PARAMS, mode="exact")
        s = random_signstring(PARAMS.string_length, rng=3)
        for q in range(0, PARAMS.string_length, 3):
            run = run_protocol(protocol, s, IndexQuery(index=q))
            assert run.answer == int(s[q])
            assert run.message_bits > 0

    def test_sparsified_mode_decodes_at_tight_epsilon(self):
        protocol = SketchedGraphIndexProtocol(
            PARAMS, mode="sparsified", sketch_epsilon=0.02, rng=4
        )
        s = random_signstring(PARAMS.string_length, rng=4)
        hits = sum(
            run_protocol(protocol, s, IndexQuery(index=q)).answer == int(s[q])
            for q in range(PARAMS.string_length)
        )
        assert hits / PARAMS.string_length > 0.9

    def test_message_bits_match_theorem_scale(self):
        """The exact message carries the whole construction: Theta(k^2)
        edges, i.e. Omega(string_length) bits — the Theorem 1.1 floor."""
        protocol = SketchedGraphIndexProtocol(PARAMS, mode="exact")
        s = random_signstring(PARAMS.string_length, rng=5)
        run = run_protocol(protocol, s, IndexQuery(index=0))
        assert run.message_bits >= PARAMS.string_length

    def test_unknown_mode_rejected(self):
        with pytest.raises(ParameterError):
            SketchedGraphIndexProtocol(PARAMS, mode="bogus")
