"""Tests for the end-to-end Index game (Theorem 1.1)."""

import pytest

from repro.errors import ParameterError
from repro.foreach_lb.game import run_index_game
from repro.foreach_lb.params import ForEachParams
from repro.sketch.exact import ExactCutSketch
from repro.sketch.noisy import NoisyForEachSketch

PARAMS = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2)


class TestIndexGame:
    def test_exact_sketch_wins_always(self):
        result = run_index_game(
            PARAMS, lambda g, r: ExactCutSketch(g), rounds=25, rng=0
        )
        # Only encoding failures (rare) can cost a round.
        assert result.success_rate >= 0.9
        assert result.mean_sketch_bits > 0

    def test_valid_sketch_beats_two_thirds(self):
        """The reduction's guarantee: a sketch within the proof's noise
        tolerance lets Bob clear the Lemma 3.1 threshold."""
        result = run_index_game(
            PARAMS,
            lambda g, r: NoisyForEachSketch(g, epsilon=0.01, rng=r),
            rounds=40,
            rng=1,
        )
        assert result.summary.rate > 2.0 / 3.0

    def test_garbage_sketch_near_chance(self):
        result = run_index_game(
            PARAMS,
            lambda g, r: NoisyForEachSketch(g, epsilon=0.95, rng=r),
            rounds=60,
            rng=2,
        )
        assert result.success_rate < 0.85

    def test_fano_bits_monotone_in_success(self):
        good = run_index_game(
            PARAMS, lambda g, r: ExactCutSketch(g), rounds=20, rng=3
        )
        bad = run_index_game(
            PARAMS,
            lambda g, r: NoisyForEachSketch(g, epsilon=0.95, rng=r),
            rounds=20,
            rng=3,
        )
        assert good.fano_bits() >= bad.fano_bits()

    def test_fano_bits_at_perfect_success_is_string_length(self):
        result = run_index_game(
            PARAMS, lambda g, r: ExactCutSketch(g), rounds=10, rng=4
        )
        if result.success_rate == 1.0:
            assert result.fano_bits() == pytest.approx(
                PARAMS.string_length, rel=1e-6
            )

    def test_rounds_must_be_positive(self):
        with pytest.raises(ParameterError):
            run_index_game(PARAMS, lambda g, r: ExactCutSketch(g), rounds=0)

    def test_deterministic_under_seed(self):
        factory = lambda g, r: NoisyForEachSketch(g, epsilon=0.1, rng=r)
        a = run_index_game(PARAMS, factory, rounds=15, rng=9)
        b = run_index_game(PARAMS, factory, rounds=15, rng=9)
        assert a.summary.successes == b.summary.successes
