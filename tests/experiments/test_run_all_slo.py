"""Tests for run_all's --slo / --live-export / --live-port surface."""

import json
import urllib.request

import pytest

from repro.experiments.run_all import (
    EXIT_SLO_BREACH,
    EXIT_STORE_FAILURE,
    main,
)


class TestSloExitCodes:
    def test_breached_rule_exits_6(self, tmp_path, capsys):
        # e7 always calls the CSR max-flow kernel, so a ceiling of 0 on
        # its call counter must breach.
        assert main(
            ["e7", "--no-telemetry", "--slo=metric:csr.maxflow.calls<=0"]
        ) == EXIT_SLO_BREACH
        captured = capsys.readouterr()
        assert "== SLO ==" in captured.out
        assert "slo BREACH:" in captured.out
        assert "slo.violation" in captured.out
        assert "SLO breach" in captured.err

    def test_honored_rule_exits_0(self, capsys):
        assert main(
            ["e7", "--no-telemetry", "--slo=metric:csr.maxflow.calls<=1e9"]
        ) == 0
        captured = capsys.readouterr()
        assert "== SLO ==" in captured.out
        assert "slo ok:" in captured.out
        assert "BREACH" not in captured.out

    def test_default_rules_pass_on_healthy_run(self, capsys):
        # Bare --slo: every certified bound's margin floor + stall.
        assert main(["e7", "--no-telemetry", "--slo"]) == 0
        captured = capsys.readouterr()
        assert "slo: " in captured.out
        assert "slo rule:" in captured.err

    def test_malformed_spec_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["e7", "--no-telemetry", "--slo=widget:a<=1"])
        assert excinfo.value.code == 2

    def test_baseline_rule_without_store_exits_5(self, tmp_path, capsys,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)  # no .obs/store here
        assert main(
            ["e7", "--no-telemetry",
             "--slo=baseline:metric:csr.maxflow.calls<=1.1x@HEAD"]
        ) == EXIT_STORE_FAILURE
        assert "experiment store" in capsys.readouterr().err


class TestSloTelemetry:
    def test_breach_lands_in_telemetry(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(
            ["e7", "--telemetry", str(path),
             "--slo=metric:csr.maxflow.calls<=0"]
        ) == EXIT_SLO_BREACH
        capsys.readouterr()
        violations = [
            json.loads(line) for line in path.read_text().splitlines()
            if json.loads(line).get("event") == "slo.violation"
        ]
        assert len(violations) == 1
        assert violations[0]["target"] == "csr.maxflow.calls"
        assert violations[0]["threshold"] == 0.0

    def test_stdout_tables_unchanged_by_slo(self, capsys):
        # The digest contract: experiment tables render identically
        # with and without the live machinery attached.
        assert main(["e7", "--no-telemetry"]) == 0
        plain = capsys.readouterr().out
        assert main(
            ["e7", "--no-telemetry", "--slo=metric:csr.maxflow.calls<=1e9"]
        ) == 0
        watched = capsys.readouterr().out
        assert watched.startswith(plain.rstrip("\n"))


class TestLiveExport:
    def test_live_export_streams_records(self, tmp_path, capsys):
        export = tmp_path / "live.jsonl"
        assert main(
            ["e7", "--no-telemetry", "--live-export", str(export)]
        ) == 0
        captured = capsys.readouterr()
        assert "live export:" in captured.err
        assert str(export) not in captured.out  # stderr only
        records = [
            json.loads(line) for line in export.read_text().splitlines()
        ]
        kinds = {r["event"] for r in records}
        assert "span" in kinds and "row" in kinds

    def test_unopenable_export_exits_3(self, tmp_path, capsys):
        export = tmp_path / "no_such_dir" / "live.jsonl"
        assert main(
            ["e7", "--no-telemetry", "--live-export", str(export)]
        ) == 3
        assert "cannot open live export" in capsys.readouterr().err


class TestLivePort:
    def test_metrics_endpoint_serves_during_setup(self, tmp_path, capsys,
                                                  monkeypatch):
        # Port 0 binds ephemerally; the URL is announced on stderr.
        monkeypatch.chdir(tmp_path)
        assert main(["e7", "--no-telemetry", "--live-port", "0"]) == 0
        err = capsys.readouterr().err
        assert "live metrics: http://127.0.0.1:" in err

    def test_endpoint_scrapes_while_running(self, capsys, monkeypatch):
        # A probe experiment scrapes its own run's endpoint mid-run:
        # the exposition must already carry live registry state.
        import socket

        from repro.experiments import run_all as run_all_mod
        from repro.experiments.harness import Table

        probe_sock = socket.socket()
        probe_sock.bind(("127.0.0.1", 0))
        port = probe_sock.getsockname()[1]
        probe_sock.close()
        scraped = {}

        def _probe():
            base = f"http://127.0.0.1:{port}"
            with urllib.request.urlopen(
                base + "/metrics", timeout=5
            ) as resp:
                scraped["metrics"] = resp.read().decode()
            with urllib.request.urlopen(
                base + "/snapshot", timeout=5
            ) as resp:
                scraped["snapshot"] = json.loads(resp.read().decode())
            table = Table(title="probe", columns=["ok"])
            table.add_row(ok=1)
            return [table]

        monkeypatch.setitem(run_all_mod.REGISTRY, "e0probe", _probe)
        assert main(
            ["e0probe", "--no-telemetry", "--live-port", str(port)]
        ) == 0
        capsys.readouterr()
        assert scraped["metrics"].startswith("# TYPE repro_")
        assert "repro_live_workers" in scraped["metrics"]
        assert scraped["snapshot"]["window_s"] > 0


class TestFlushEvery:
    def test_explicit_flush_every_accepted(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(
            ["e7", "--telemetry", str(path), "--flush-every", "5"]
        ) == 0
        capsys.readouterr()
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_zero_flush_every_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["e7", "--telemetry", str(tmp_path / "t.jsonl"),
                  "--flush-every", "0"])
