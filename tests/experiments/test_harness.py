"""Tests for repro.experiments.harness."""

import pytest

from repro.experiments.harness import Table, geometric_ratio, sweep


class TestTable:
    def test_render_contains_data(self):
        t = Table(title="demo", columns=["x", "y"])
        t.add_row(x=1, y=2.5)
        t.add_row(x=10, y=0.000123)
        out = t.render()
        assert "demo" in out
        assert "2.5" in out
        assert "0.000123" in out

    def test_unknown_column_rejected(self):
        t = Table(title="demo", columns=["x"])
        with pytest.raises(ValueError):
            t.add_row(z=1)

    def test_missing_column_renders_empty(self):
        t = Table(title="demo", columns=["x", "y"])
        t.add_row(x=1)
        assert t.render()  # no crash

    def test_notes_rendered(self):
        t = Table(title="demo", columns=["x"])
        t.add_note("shape only")
        assert "note: shape only" in t.render()

    def test_empty_table_renders_header(self):
        t = Table(title="empty", columns=["col"])
        assert "col" in t.render()

    def test_float_formatting(self):
        t = Table(title="f", columns=["v"])
        t.add_row(v=0.0)
        t.add_row(v=123456.0)
        out = t.render()
        assert "0" in out
        assert "1.23e+05" in out

    def test_emit_prints(self, capsys):
        t = Table(title="emit", columns=["x"])
        t.add_row(x=5)
        t.emit()
        assert "emit" in capsys.readouterr().out


class TestGeometricRatio:
    def test_constant_ratio(self):
        assert geometric_ratio([1, 2, 4], [2, 4, 8]) == pytest.approx(2.0)

    def test_mixed_ratios_geomean(self):
        assert geometric_ratio([1, 1], [2, 8]) == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_ratio([], [])
        with pytest.raises(ValueError):
            geometric_ratio([0.0], [1.0])


class TestSweep:
    def test_merges_config_and_result(self):
        rows = sweep(
            [{"a": 1}, {"a": 2}],
            lambda a: {"square": a * a},
        )
        assert rows == [{"a": 1, "square": 1}, {"a": 2, "square": 4}]

    def test_empty_sweep(self):
        assert sweep([], lambda **kw: {}) == []
