"""Tests for repro.experiments.harness."""

import pytest

from repro import obs
from repro.experiments.harness import Row, Table, geometric_ratio, sweep
from repro.obs.sink import ListSink


class TestTable:
    def test_render_contains_data(self):
        t = Table(title="demo", columns=["x", "y"])
        t.add_row(x=1, y=2.5)
        t.add_row(x=10, y=0.000123)
        out = t.render()
        assert "demo" in out
        assert "2.5" in out
        assert "0.000123" in out

    def test_unknown_column_rejected(self):
        t = Table(title="demo", columns=["x"])
        with pytest.raises(ValueError):
            t.add_row(z=1)

    def test_missing_column_renders_empty(self):
        t = Table(title="demo", columns=["x", "y"])
        t.add_row(x=1)
        assert t.render()  # no crash

    def test_notes_rendered(self):
        t = Table(title="demo", columns=["x"])
        t.add_note("shape only")
        assert "note: shape only" in t.render()

    def test_empty_table_renders_header(self):
        t = Table(title="empty", columns=["col"])
        assert "col" in t.render()

    def test_float_formatting(self):
        t = Table(title="f", columns=["v"])
        t.add_row(v=0.0)
        t.add_row(v=123456.0)
        out = t.render()
        assert "0" in out
        assert "1.23e+05" in out

    def test_emit_prints(self, capsys):
        t = Table(title="emit", columns=["x"])
        t.add_row(x=5)
        t.emit()
        assert "emit" in capsys.readouterr().out

    def test_negative_zero_renders_as_zero(self):
        t = Table(title="nz", columns=["v"])
        t.add_row(v=-0.0)
        out = t.render()
        assert "-0" not in out
        assert t._format_cell(-0.0) == "0"

    def test_small_negatives_keep_their_sign(self):
        t = Table(title="nz", columns=["v"])
        assert t._format_cell(-1e-05) == "-1e-05"
        assert t._format_cell(-0.5) == "-0.5"

    def test_rows_keep_mapping_access(self):
        t = Table(title="demo", columns=["x", "y"])
        t.add_row(x=1, y=2)
        row = t.rows[0]
        assert isinstance(row, Row)
        assert row["x"] == 1
        assert row.get("missing", "d") == "d"
        assert "y" in row and "z" not in row


class TestRowTelemetry:
    def test_disabled_rows_have_empty_telemetry(self):
        t = Table(title="demo", columns=["x"])
        t.add_row(x=1)
        assert t.rows[0].telemetry == {}

    def test_enabled_rows_record_deltas_and_events(self):
        obs.reset_metrics()
        with obs.enabled(ListSink()) as sink:
            t = Table(title="demo", columns=["x"])
            obs.count("demo.work", 3)
            t.add_row(x=1)
            obs.count("demo.work", 4)
            t.add_row(x=2)
        obs.reset_metrics()
        first, second = t.rows
        assert first.telemetry["metrics"] == {"demo.work": 3}
        assert second.telemetry["metrics"] == {"demo.work": 4}
        assert first.telemetry["wall_s"] >= 0.0
        events = sink.of_kind("row")
        assert [e["values"] for e in events] == [{"x": 1}, {"x": 2}]
        assert events[0]["table"] == "demo"

    def test_row_events_carry_span_path(self):
        obs.reset_metrics()
        with obs.enabled(ListSink()) as sink:
            with obs.span("experiment.e1"):
                t = Table(title="demo", columns=["x"])
                t.add_row(x=1)
        obs.reset_metrics()
        (event,) = sink.of_kind("row")
        assert event["span_path"] == "experiment.e1"


class TestGeometricRatio:
    def test_constant_ratio(self):
        assert geometric_ratio([1, 2, 4], [2, 4, 8]) == pytest.approx(2.0)

    def test_mixed_ratios_geomean(self):
        assert geometric_ratio([1, 1], [2, 8]) == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_ratio([], [])
        with pytest.raises(ValueError):
            geometric_ratio([0.0], [1.0])


class TestSweep:
    def test_merges_config_and_result(self):
        rows = sweep(
            [{"a": 1}, {"a": 2}],
            lambda a: {"square": a * a},
        )
        assert rows == [{"a": 1, "square": 1}, {"a": 2, "square": 4}]

    def test_empty_sweep(self):
        assert sweep([], lambda **kw: {}) == []
