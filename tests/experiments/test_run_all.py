"""Tests for the standalone experiment runner CLI."""

import json

import pytest

from repro.experiments.harness import Table
from repro.experiments.run_all import (
    EXIT_BOUND_VIOLATION,
    EXIT_TELEMETRY_FAILURE,
    REGISTRY,
    main,
)
from repro.obs import bounds
from repro.obs.bounds import BoundSpec
from repro.obs.report import aggregate_spans, load_events, metric_totals


class TestRegistry:
    def test_all_nine_experiments_registered(self):
        assert sorted(REGISTRY) == [f"e{i}" for i in range(1, 10)]

    def test_each_experiment_returns_tables(self):
        # The cheap ones run here; the full set runs via benchmarks.
        for key in ("e5", "e6", "e7", "e8"):
            tables = REGISTRY[key]()
            assert tables
            for table in tables:
                assert table.rows
                assert table.render()


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "e9" in out

    def test_run_single(self, capsys):
        assert main(["e7", "--no-telemetry"]) == 0
        out = capsys.readouterr().out
        assert "Figures 3-6" in out

    def test_serve_smoke_passes_and_reports(self, capsys):
        assert main(["--serve"]) == 0
        err = capsys.readouterr().err
        assert "serve smoke: tcp://127.0.0.1:" in err
        assert "serve smoke: ok" in err

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["e99"])


class TestTelemetry:
    def test_run_writes_telemetry_jsonl(self, tmp_path, capsys):
        path = tmp_path / "telemetry.jsonl"
        assert main(["e5", "e7", "--telemetry", str(path)]) == 0
        assert f"telemetry written to {path}" in capsys.readouterr().out
        events = load_events(path)
        kinds = {e["event"] for e in events}
        assert {"span", "row", "summary"} <= kinds
        spans = aggregate_spans(events)
        assert spans["experiment.e5"]["count"] == 1
        assert spans["experiment.e7"]["count"] == 1
        # The summary's CSR counters reflect real kernel activity.
        totals = metric_totals(events)
        assert totals.get("csr.freeze.miss", 0) >= 1

    def test_rows_in_telemetry_match_printed_tables(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(["e5", "--telemetry", str(path)]) == 0
        capsys.readouterr()
        rows = [e for e in load_events(path) if e["event"] == "row"]
        assert len(rows) == 3  # e5 prints three configurations
        assert all(r["span_path"] == "experiment.e5" for r in rows)

    def test_no_telemetry_writes_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["e7", "--no-telemetry"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "telemetry.jsonl").exists()

    def test_telemetry_file_is_valid_json_lines(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(["e7", "--telemetry", str(path)]) == 0
        capsys.readouterr()
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_sink_path_is_logged(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(["e7", "--telemetry", str(path)]) == 0
        assert f"telemetry sink: {path}" in capsys.readouterr().out

    def test_unopenable_sink_exits_3(self, tmp_path, capsys):
        path = tmp_path / "no_such_dir" / "t.jsonl"
        assert main(["e7", "--telemetry", str(path)]) == EXIT_TELEMETRY_FAILURE
        assert "cannot open telemetry sink" in capsys.readouterr().err

    def test_midrun_write_failure_exits_3(self, tmp_path, capsys, monkeypatch):
        import repro.experiments.run_all as run_all_mod
        from repro.obs.sink import JsonlSink

        class FailingSink(JsonlSink):
            def write(self, record):
                self._fail(OSError(28, "No space left on device"))

        monkeypatch.setattr(run_all_mod, "JsonlSink", FailingSink)
        path = tmp_path / "t.jsonl"
        assert main(["e7", "--telemetry", str(path)]) == EXIT_TELEMETRY_FAILURE
        assert "telemetry writing" in capsys.readouterr().err


@pytest.fixture
def scratch_bound_registry():
    before = dict(bounds._REGISTRY)
    yield
    bounds._REGISTRY.clear()
    bounds._REGISTRY.update(before)


@pytest.fixture
def fake_experiment(monkeypatch, scratch_bound_registry):
    """Register a tiny bound-certified experiment as ``e0test``.

    The bound is an upper envelope of 10 with slack 1, so a measured
    value above 10 is a violation and 10 or below passes.
    """
    bounds.register(
        BoundSpec(
            name="test.cli",
            theorem="Thm T",
            quantity="value:queries",
            direction="upper",
            predicted=lambda p: 10.0,
            formula="10",
            slack=1.0,
            sweep=None,
            requires=(),
        )
    )
    measured = {"value": 5.0}

    def _experiment():
        table = Table(title="T0", columns=["queries"], bounds=["test.cli"])
        table.add_row(queries=measured["value"])
        return [table]

    monkeypatch.setitem(REGISTRY, "e0test", _experiment)
    return measured


class TestStrictBounds:
    def test_passing_run_exits_0_and_prints_checks(
        self, fake_experiment, tmp_path, capsys
    ):
        path = tmp_path / "t.jsonl"
        code = main(["e0test", "--strict-bounds", "--telemetry", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Bound certification" in out
        assert "0 violations" in out
        checks = [
            e for e in load_events(path) if e["event"] == "bound_check"
        ]
        assert checks and all(c["status"] == "pass" for c in checks)

    def test_violation_exits_2_under_strict(
        self, fake_experiment, tmp_path, capsys
    ):
        fake_experiment["value"] = 99.0
        path = tmp_path / "t.jsonl"
        code = main(["e0test", "--strict-bounds", "--telemetry", str(path)])
        captured = capsys.readouterr()
        assert code == EXIT_BOUND_VIOLATION
        assert "bound violation" in captured.err
        assert "1 violations" in captured.out

    def test_violation_without_strict_still_exits_0(
        self, fake_experiment, tmp_path, capsys
    ):
        fake_experiment["value"] = 99.0
        path = tmp_path / "t.jsonl"
        assert main(["e0test", "--telemetry", str(path)]) == 0
        assert "1 violations" in capsys.readouterr().out

    def test_strict_bounds_without_telemetry_still_checks(
        self, fake_experiment, capsys
    ):
        fake_experiment["value"] = 99.0
        code = main(["e0test", "--strict-bounds", "--no-telemetry"])
        assert code == EXIT_BOUND_VIOLATION
        assert "Bound certification" in capsys.readouterr().out


class TestProfileFlag:
    def test_profile_events_written(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(["e7", "--profile", "--telemetry", str(path)]) == 0
        capsys.readouterr()
        profiles = [
            e for e in load_events(path) if e["event"] == "profile"
        ]
        assert profiles
        assert all("span" in p and "func" in p for p in profiles)
