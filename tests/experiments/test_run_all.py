"""Tests for the standalone experiment runner CLI."""

import pytest

from repro.experiments.run_all import REGISTRY, main


class TestRegistry:
    def test_all_nine_experiments_registered(self):
        assert sorted(REGISTRY) == [f"e{i}" for i in range(1, 10)]

    def test_each_experiment_returns_tables(self):
        # The cheap ones run here; the full set runs via benchmarks.
        for key in ("e5", "e6", "e7", "e8"):
            tables = REGISTRY[key]()
            assert tables
            for table in tables:
                assert table.rows
                assert table.render()


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "e9" in out

    def test_run_single(self, capsys):
        assert main(["e7"]) == 0
        out = capsys.readouterr().out
        assert "Figures 3-6" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["e99"])
