"""Tests for the standalone experiment runner CLI."""

import json

import pytest

from repro.experiments.run_all import REGISTRY, main
from repro.obs.report import aggregate_spans, load_events, metric_totals


class TestRegistry:
    def test_all_nine_experiments_registered(self):
        assert sorted(REGISTRY) == [f"e{i}" for i in range(1, 10)]

    def test_each_experiment_returns_tables(self):
        # The cheap ones run here; the full set runs via benchmarks.
        for key in ("e5", "e6", "e7", "e8"):
            tables = REGISTRY[key]()
            assert tables
            for table in tables:
                assert table.rows
                assert table.render()


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1" in out and "e9" in out

    def test_run_single(self, capsys):
        assert main(["e7", "--no-telemetry"]) == 0
        out = capsys.readouterr().out
        assert "Figures 3-6" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["e99"])


class TestTelemetry:
    def test_run_writes_telemetry_jsonl(self, tmp_path, capsys):
        path = tmp_path / "telemetry.jsonl"
        assert main(["e5", "e7", "--telemetry", str(path)]) == 0
        assert f"telemetry written to {path}" in capsys.readouterr().out
        events = load_events(path)
        kinds = {e["event"] for e in events}
        assert {"span", "row", "summary"} <= kinds
        spans = aggregate_spans(events)
        assert spans["experiment.e5"]["count"] == 1
        assert spans["experiment.e7"]["count"] == 1
        # The summary's CSR counters reflect real kernel activity.
        totals = metric_totals(events)
        assert totals.get("csr.freeze.miss", 0) >= 1

    def test_rows_in_telemetry_match_printed_tables(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(["e5", "--telemetry", str(path)]) == 0
        capsys.readouterr()
        rows = [e for e in load_events(path) if e["event"] == "row"]
        assert len(rows) == 3  # e5 prints three configurations
        assert all(r["span_path"] == "experiment.e5" for r in rows)

    def test_no_telemetry_writes_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["e7", "--no-telemetry"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "telemetry.jsonl").exists()

    def test_telemetry_file_is_valid_json_lines(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert main(["e7", "--telemetry", str(path)]) == 0
        capsys.readouterr()
        for line in path.read_text().splitlines():
            json.loads(line)
