"""Cross-algorithm integration tests: independent implementations must agree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.cuts import brute_force_min_cut
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.generators import (
    random_connected_ugraph,
    random_regularish_ugraph,
)
from repro.graphs.gomory_hu import gomory_hu_tree
from repro.graphs.mincut import karger_min_cut, stoer_wagner


class TestFourWayMinCutAgreement:
    """Stoer–Wagner, Karger, Gomory–Hu, and brute force on the same input."""

    @given(st.integers(4, 8), st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_weighted_graphs(self, n, seed):
        g = random_connected_ugraph(
            n, extra_edge_prob=0.5, rng=seed, weight_range=(0.5, 3.0)
        )
        reference, _ = brute_force_min_cut(g)
        assert stoer_wagner(g)[0] == pytest.approx(reference)
        assert karger_min_cut(g, rng=seed)[0] == pytest.approx(reference)
        assert gomory_hu_tree(g).global_min_cut_value() == pytest.approx(reference)

    @given(st.integers(4, 8), st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_unweighted_graphs_also_match_edge_connectivity(self, n, seed):
        g = random_regularish_ugraph(n, 4, rng=seed)
        reference, _ = brute_force_min_cut(g)
        assert stoer_wagner(g)[0] == pytest.approx(reference)
        assert edge_connectivity(g) == pytest.approx(reference)
