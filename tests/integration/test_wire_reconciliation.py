"""Wire-transcript bit totals exactly equal the existing meters.

The capture layer is only trustworthy if the transcript's summed bits
are the *same* numbers the PR 2 counters and result objects already
report: the sketch-size histogram for the one-way games, the
sketch/query counters for the distributed hybrid, and the BitLedger for
the local-query reduction.  Every comparison here is exact equality —
a transcript that "roughly" reconciles is a broken transcript.
"""

import pytest

from repro import obs
from repro.obs import capture as obs_capture
from repro.obs.capture import capturing


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.reset_metrics()
    obs_capture._ACTIVE.clear()
    yield
    obs.disable()
    obs.STATE.sink = None
    obs.reset_metrics()
    obs_capture._ACTIVE.clear()


class TestForEachReconciliation:
    def test_capture_bits_equal_sketch_histogram(self):
        from repro.foreach_lb.game import run_index_game
        from repro.foreach_lb.params import ForEachParams
        from repro.sketch.exact import ExactCutSketch

        rounds = 4
        with obs.enabled():
            with capturing() as cap:
                result = run_index_game(
                    ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2),
                    lambda g, r: ExactCutSketch(g),
                    rounds=rounds,
                    rng=3,
                )
        hist = obs.REGISTRY.histogram("sketch.size_bits")
        # One size_bits() observation per round: the game must not call
        # it twice to price the wire message.
        assert hist.count == rounds
        assert cap.total_bits == hist.sum
        assert cap.total_bits == pytest.approx(
            result.mean_sketch_bits * rounds
        )
        assert cap.bits_by_kind()["foreach.sketch"] == cap.total_bits
        assert cap.bits_by_kind()["foreach.answer"] == 0
        # The global mirror agrees with the transcript message count.
        assert obs.REGISTRY.counter("wire.messages").value == len(cap)
        assert obs.REGISTRY.counter("wire.bits").value == cap.total_bits

    def test_every_sketch_message_is_alice_to_bob(self):
        from repro.foreach_lb.game import run_index_game
        from repro.foreach_lb.params import ForEachParams
        from repro.sketch.exact import ExactCutSketch

        with obs.enabled():
            with capturing() as cap:
                run_index_game(
                    ForEachParams(inv_eps=4, sqrt_beta=1),
                    lambda g, r: ExactCutSketch(g),
                    rounds=2,
                    rng=0,
                )
        sketches = [m for m in cap.messages if m.kind == "foreach.sketch"]
        assert all(
            (m.sender, m.receiver) == ("alice", "bob") for m in sketches
        )
        assert cap.bits_by_party()["alice"]["sent"] == cap.total_bits


class TestForAllReconciliation:
    def test_capture_bits_equal_sketch_histogram(self):
        from repro.forall_lb.game import run_gap_hamming_game
        from repro.forall_lb.params import ForAllParams

        from repro.sketch.exact import ExactCutSketch

        rounds = 3
        with obs.enabled():
            with capturing() as cap:
                result = run_gap_hamming_game(
                    ForAllParams(inv_eps_sq=4, beta=1, num_groups=2),
                    lambda g, r: ExactCutSketch(g),
                    rounds=rounds,
                    rng=5,
                )
        hist = obs.REGISTRY.histogram("sketch.size_bits")
        assert hist.count == rounds
        assert cap.total_bits == hist.sum
        assert cap.total_bits == pytest.approx(
            result.mean_sketch_bits * rounds
        )
        assert cap.bits_by_kind()["forall.decision"] == 0


class TestDistributedReconciliation:
    def test_capture_bits_equal_coordinator_report(self):
        from repro.distributed.coordinator import distributed_min_cut
        from repro.distributed.server import partition_edges
        from repro.graphs.ugraph import UGraph

        g = UGraph(nodes=range(12))
        for u in range(12):
            for v in range(u + 1, 12):
                g.add_edge(u, v, 1.0)
        servers = partition_edges(g, 2, rng=1)
        with obs.enabled():
            with capturing() as cap:
                result = distributed_min_cut(
                    servers, epsilon=0.3, strategy="hybrid", rng=7,
                    contraction_attempts=40, sampling_constant=0.3,
                )
        by_kind = cap.bits_by_kind()
        # Shipped sketches and query responses match the result object
        # and the PR 2 counters bit for bit.
        assert by_kind["distributed.ship"] == result.sketch_bits
        assert by_kind["distributed.response"] == result.query_bits
        assert by_kind["distributed.query"] == 0
        assert cap.total_bits == result.total_bits
        snap = obs.snapshot()
        assert by_kind["distributed.ship"] == snap["distributed.sketch_bits"]
        assert by_kind["distributed.response"] == snap["distributed.query_bits"]
        # One query + one response per (candidate, server) round trip.
        trips = int(snap["distributed.round_trips"])
        assert len([m for m in cap.messages
                    if m.kind == "distributed.response"]) == trips

    def test_forall_only_strategy_ships_only(self):
        from repro.distributed.coordinator import distributed_min_cut
        from repro.distributed.server import partition_edges
        from repro.graphs.ugraph import UGraph

        g = UGraph(nodes=range(10))
        for u in range(10):
            for v in range(u + 1, 10):
                g.add_edge(u, v, 1.0)
        servers = partition_edges(g, 2, rng=2)
        with obs.enabled():
            with capturing() as cap:
                result = distributed_min_cut(
                    servers, epsilon=0.4, strategy="forall_only", rng=3,
                    sampling_constant=0.3,
                )
        kinds = set(cap.bits_by_kind())
        assert kinds == {"distributed.ship"}
        assert cap.total_bits == result.sketch_bits == result.total_bits


class TestLocalQueryReconciliation:
    def test_capture_bits_equal_ledger_and_comm_counters(self):
        from repro.comm.twosum import sample_twosum_instance
        from repro.localquery.mincut_query import estimate_min_cut
        from repro.localquery.reduction import solve_twosum_via_mincut

        import numpy as np

        rng = np.random.default_rng(9)
        instance = sample_twosum_instance(
            num_pairs=4, length=9, alpha=1,
            intersecting_fraction=0.25, rng=rng,
        )
        with obs.enabled():
            with capturing() as cap:
                result = solve_twosum_via_mincut(
                    instance,
                    lambda oracle, gen: estimate_min_cut(
                        oracle, 0.5, rng=gen
                    ).value,
                    rng=rng,
                )
        # Transcript bits == BitLedger total == comm.* counter mirror.
        assert cap.total_bits == result.bits_exchanged
        snap = obs.snapshot()
        assert cap.total_bits == snap["comm.wire_bits"]
        reveals = [m for m in cap.messages if m.kind == "localquery.reveal"]
        assert len(reveals) == snap["comm.wire_charges"]
        assert all(m.bits == 2 for m in reveals)
        # Every oracle query is on the wire, at zero cost, and the
        # transcript's query count matches the Theorem 1.3 meter.
        queries = [m for m in cap.messages if m.kind.startswith("oracle.")]
        assert len(queries) == result.queries
        assert all(m.bits == 0 for m in queries)


class TestOneWayProtocolReconciliation:
    def test_message_bits_match_comm_counters(self):
        from repro.comm.protocol import Message, OneWayProtocol, run_protocol

        class Echo(OneWayProtocol):
            def alice(self, alice_input):
                return Message.from_object(alice_input)

            def bob(self, message, bob_input):
                return message.to_object()

        with obs.enabled():
            with capturing() as cap:
                run = run_protocol(Echo(), [1, 2, 3], None)
        assert len(cap) == 1
        msg = cap.messages[0]
        assert (msg.sender, msg.receiver) == ("alice", "bob")
        assert msg.kind == "oneway.message"
        assert msg.bits == run.message_bits
        snap = obs.snapshot()
        assert snap["comm.message_bits"] == cap.total_bits
        assert snap["comm.messages"] == 1
        # The message was recorded inside the run_protocol span.
        assert msg.span.endswith("comm.run_protocol")


class TestBitLedgerWire:
    def test_charges_carry_party_names_and_kind(self):
        from repro.comm.protocol import BitLedger

        ledger = BitLedger(sender="coordinator", receiver="server-0")
        with obs.enabled():
            with capturing() as cap:
                ledger.charge(3, kind="test.charge", payload=(1, 2))
                ledger.charge(0)
        assert ledger.total_bits == 3
        assert ledger.charges == 2
        assert [m.kind for m in cap.messages] == [
            "test.charge", "ledger.charge"
        ]
        assert cap.messages[0].sender == "coordinator"
        assert cap.messages[0].receiver == "server-0"
        assert cap.total_bits == ledger.total_bits

    def test_merged_ledgers_do_not_re_record(self):
        from repro.comm.protocol import BitLedger

        a, b = BitLedger(), BitLedger()
        with obs.enabled():
            with capturing() as cap:
                a.charge(2)
                b.charge(4)
                merged = a + b
        assert merged.total_bits == 6
        # Merging is accounting, not communication: still two messages.
        assert len(cap) == 2
        assert cap.total_bits == 6
