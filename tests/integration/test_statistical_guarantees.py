"""Statistical acceptance tests for the randomized guarantees.

These tests check *probabilistic* claims by repetition with fixed
seeds: VERIFY-GUESS's accept/reject semantics, the Karger success
amplification, and the uniform sparsifier's unbiasedness.  Thresholds
are deliberately loose (they assert the direction of the effect, not
its exact rate) so the suite stays deterministic and robust.
"""

import pytest

from repro.graphs.generators import planted_min_cut_ugraph
from repro.graphs.mincut import _one_contraction_run, stoer_wagner
from repro.graphs.ugraph import UGraph
from repro.localquery.oracle import GraphOracle
from repro.localquery.verify_guess import fetch_degrees, verify_guess
from repro.utils.rng import ensure_rng


class TestVerifyGuessSemantics:
    """Lemma 5.8's two-sided behaviour, measured over repetitions."""

    def setup_method(self):
        self.graph, self.k = planted_min_cut_ugraph(20, 4, rng=0)

    def _accept_rate(self, t, eps, trials=20):
        accepts = 0
        for seed in range(trials):
            oracle = GraphOracle(self.graph)
            degrees = fetch_degrees(oracle)
            result = verify_guess(oracle, degrees, t=t, eps=eps, rng=seed)
            accepts += result.accepted
        return accepts / trials

    def test_guesses_below_k_accept_reliably(self):
        assert self._accept_rate(t=self.k / 2, eps=0.3) >= 0.9

    def test_guesses_far_above_k_reject_reliably(self):
        assert self._accept_rate(t=100 * self.k, eps=0.3) <= 0.1

    def test_accepted_estimates_concentrate(self):
        values = []
        for seed in range(20):
            oracle = GraphOracle(self.graph)
            degrees = fetch_degrees(oracle)
            result = verify_guess(
                oracle, degrees, t=float(self.k), eps=0.25, rng=seed
            )
            if result.accepted:
                values.append(result.estimate)
        assert values, "no accepted runs"
        mean = sum(values) / len(values)
        assert mean == pytest.approx(self.k, rel=0.25)


class TestKargerAmplification:
    def test_single_run_often_fails_many_runs_rarely(self):
        graph, k = planted_min_cut_ugraph(10, 2, rng=1)
        gen = ensure_rng(2)
        single_hits = sum(
            1
            for _ in range(30)
            if _one_contraction_run(graph, gen)[0] == pytest.approx(float(k))
        )
        # A single contraction succeeds with probability ~2/(n(n-1));
        # it must be visibly unreliable...
        assert single_hits < 30
        # ...while the amplified estimator never misses on this seed set.
        from repro.graphs.mincut import karger_min_cut

        for seed in range(5):
            value, _ = karger_min_cut(graph, rng=seed)
            assert value == pytest.approx(float(k))


class TestUniformSamplingUnbiasedness:
    def test_cut_estimator_is_unbiased(self):
        from repro.sketch.sparsifier import uniform_sparsify

        g = UGraph(nodes=range(10))
        for u in range(10):
            for v in range(u + 1, 10):
                g.add_edge(u, v, 1.0)
        side = set(range(5))
        truth = g.cut_weight(side)
        for keep in (0.3, 0.7):
            total = 0.0
            trials = 80
            for seed in range(trials):
                sparse = uniform_sparsify(g, keep, rng=seed)
                total += sparse.cut_weight(side)
            assert total / trials == pytest.approx(truth, rel=0.15)
