"""End-to-end integration: full paper pipelines wired together."""

import pytest

from repro.comm.twosum import sample_twosum_instance
from repro.distributed.coordinator import distributed_min_cut
from repro.distributed.server import partition_edges
from repro.foreach_lb.game import run_index_game
from repro.foreach_lb.params import ForEachParams
from repro.forall_lb.game import run_gap_hamming_game
from repro.forall_lb.params import ForAllParams
from repro.graphs.generators import random_regularish_ugraph
from repro.graphs.mincut import stoer_wagner
from repro.localquery.mincut_query import estimate_min_cut
from repro.localquery.reduction import solve_twosum_via_mincut
from repro.sketch.directed import BalancedDigraphSparsifier
from repro.sketch.exact import ExactCutSketch
from repro.sketch.noisy import NoisyForEachSketch


class TestTheorem11Pipeline:
    def test_index_game_with_real_sparsifier_sketch(self):
        """Run Theorem 1.1's game against a *real* directed sparsifier
        (not a noise oracle): the construction is balanced, so the
        upper-bound machinery must serve as a valid sketch for it."""
        params = ForEachParams(inv_eps=2, sqrt_beta=1, num_groups=2)

        def factory(graph, rng):
            # Tiny epsilon -> probability-1 sampling -> an exact sketch
            # delivered through the sparsifier code path.
            return BalancedDigraphSparsifier(graph, epsilon=0.05, rng=rng)

        result = run_index_game(params, factory, rounds=15, rng=0)
        assert result.success_rate > 2.0 / 3.0

    def test_foreach_noise_tolerance_transition(self):
        """Success decays as sketch error crosses the proof's threshold."""
        params = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2)
        rates = []
        for eps_sketch in (0.005, 0.08, 0.9):
            result = run_index_game(
                params,
                lambda g, r, e=eps_sketch: NoisyForEachSketch(g, epsilon=e, rng=r),
                rounds=30,
                rng=1,
            )
            rates.append(result.success_rate)
        assert rates[0] > 2.0 / 3.0
        assert rates[0] >= rates[2]
        assert rates[2] < 0.9


class TestTheorem12Pipeline:
    def test_gap_hamming_game_with_exact_sketch(self):
        params = ForAllParams(inv_eps_sq=8, beta=1, num_groups=2)
        result = run_gap_hamming_game(
            params, lambda g, r: ExactCutSketch(g), rounds=20, rng=2
        )
        assert result.success_rate > 2.0 / 3.0


class TestTheorem13Pipeline:
    def test_reduction_with_real_query_algorithm(self):
        """Lemma 5.6 end to end: the VERIFY-GUESS estimator plays the
        role of algorithm A, and B's 2-SUM answer meets its budget."""
        inst = sample_twosum_instance(25, 25, intersecting_fraction=0.2, rng=3)

        def algorithm(oracle, gen):
            return estimate_min_cut(oracle, eps=0.2, rng=gen).value

        result = solve_twosum_via_mincut(inst, algorithm, rng=4)
        assert result.within_budget
        # Communication is at most twice the query count (Lemma 5.6).
        assert result.bits_exchanged <= 2 * result.queries


class TestDistributedPipeline:
    def test_hybrid_beats_forall_accuracy_at_fixed_eps(self):
        g = random_regularish_ugraph(24, 10, rng=5)
        servers = partition_edges(g, 2, rng=6)
        true_value, _ = stoer_wagner(g)
        hybrid = distributed_min_cut(servers, epsilon=0.15, strategy="hybrid", rng=7)
        assert hybrid.value == pytest.approx(true_value, rel=0.25)
