"""Failure injection: algorithms driven against budget-limited oracles.

Theorem 1.3 says any correct algorithm must pay
``Omega(min{m, m/(eps^2 k)})`` queries; here we enforce hard budgets
below that price and confirm the estimator *cannot finish* (it raises
:class:`BudgetExceededError` rather than silently returning a wrong
answer), while a budget comfortably above the price is never hit.
"""

import pytest

from repro.errors import BudgetExceededError
from repro.graphs.generators import planted_min_cut_ugraph
from repro.localquery.baselines import exact_reconstruction_estimate
from repro.localquery.mincut_query import estimate_min_cut
from repro.localquery.oracle import GraphOracle


@pytest.fixture(scope="module")
def workload():
    graph, k = planted_min_cut_ugraph(24, 6, rng=0)
    return graph, k


class TestBudgets:
    def test_starved_estimator_raises(self, workload):
        graph, _ = workload
        oracle = GraphOracle(graph, budget=graph.num_nodes + 10)
        with pytest.raises(BudgetExceededError):
            estimate_min_cut(oracle, eps=0.2, rng=1)

    def test_generous_budget_unaffected(self, workload):
        graph, k = workload
        generous = 10 * (graph.num_nodes + 2 * graph.num_edges)
        oracle = GraphOracle(graph, budget=generous)
        estimate = estimate_min_cut(oracle, eps=0.25, rng=2)
        assert estimate.value == pytest.approx(k, rel=0.4)

    def test_exact_baseline_needs_theta_m(self, workload):
        graph, _ = workload
        # Just below its exact cost: must blow the budget.
        cost = graph.num_nodes + 2 * graph.num_edges
        oracle = GraphOracle(graph, budget=cost - 1)
        with pytest.raises(BudgetExceededError):
            exact_reconstruction_estimate(oracle)
        # Exactly at cost: finishes.
        oracle = GraphOracle(graph, budget=cost)
        result = exact_reconstruction_estimate(oracle)
        assert result.queries == cost

    def test_budget_error_is_not_a_wrong_answer(self, workload):
        """The failure mode is loud (an exception), never a silently
        wrong estimate — the API contract the reduction relies on."""
        graph, k = workload
        for budget in (50, 200, 800):
            oracle = GraphOracle(graph, budget=budget)
            try:
                estimate = estimate_min_cut(oracle, eps=0.2, rng=3)
            except BudgetExceededError:
                continue
            assert estimate.value == pytest.approx(k, rel=0.5)
