"""Contract tests: every CutSketch implementation honours the interface.

One parametrized suite over all concrete sketches so that adding a new
implementation automatically inherits the interface obligations:
positive size, model declared, trivial cuts rejected by the backing
graph, and error within the declared envelope for its model.
"""

import pytest

from repro.graphs.cuts import all_directed_cut_values
from repro.graphs.generators import random_balanced_digraph
from repro.sketch.base import SketchModel
from repro.sketch.directed import BalancedDigraphSparsifier
from repro.sketch.exact import ExactCutSketch
from repro.sketch.noisy import NoisyForAllSketch, NoisyForEachSketch
from repro.sketch.sparsifier import SparsifierSketch


GRAPH = random_balanced_digraph(8, beta=2.0, density=0.6, rng=0)


def make_sketches():
    return [
        ("exact", ExactCutSketch(GRAPH)),
        ("noisy-foreach", NoisyForEachSketch(GRAPH, epsilon=0.1, rng=1)),
        ("noisy-forall", NoisyForAllSketch(GRAPH, epsilon=0.1, seed=2)),
        ("sparsifier", SparsifierSketch(GRAPH, epsilon=0.2, rng=3)),
        ("balanced", BalancedDigraphSparsifier(GRAPH, epsilon=0.3, rng=4)),
    ]


@pytest.mark.parametrize("name,sketch", make_sketches())
class TestCutSketchContract:
    def test_declares_a_model(self, name, sketch):
        assert isinstance(sketch.model, SketchModel)

    def test_epsilon_in_range(self, name, sketch):
        assert 0.0 <= sketch.epsilon < 1.0

    def test_size_positive(self, name, sketch):
        assert sketch.size_bits() > 0

    def test_queries_are_finite_and_nonnegative(self, name, sketch):
        for side, _ in all_directed_cut_values(GRAPH):
            value = sketch.query(set(side))
            assert value >= 0.0
            assert value == value  # not NaN

    def test_probability_one_sampling_answers_exactly(self, name, sketch):
        # Exact sketch and clamped sparsifiers must agree with truth;
        # noisy oracles are exempt (checked by their own suites).
        if name in ("exact",):
            for side, value in all_directed_cut_values(GRAPH):
                assert sketch.query(set(side)) == pytest.approx(value)
