"""CommOracle and GraphOracle must be observationally equivalent on G_{x,y}.

Lemma 5.6 silently relies on this: the min-cut algorithm cannot tell
whether it is talking to a concrete graph or to Alice and Bob simulating
one.  We drive both oracles with the same query streams and the same
algorithms and require identical behaviour (up to the neighbor *order*,
which each oracle fixes internally but consistently).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.localquery.comm_oracle import CommOracle
from repro.localquery.gxy import build_gxy
from repro.localquery.mincut_query import estimate_min_cut
from repro.localquery.oracle import GraphOracle
from repro.utils.rng import ensure_rng


def instance(side, seed):
    gen = ensure_rng(seed)
    x = gen.integers(0, 2, size=side * side).astype(np.int8)
    y = gen.integers(0, 2, size=side * side).astype(np.int8)
    gxy = build_gxy(x, y)
    return CommOracle(x, y), GraphOracle(gxy.graph), gxy


class TestObservationalEquivalence:
    @given(st.sampled_from([3, 4, 5]), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_degrees_agree(self, side, seed):
        comm, graph, _ = instance(side, seed)
        for v in comm.vertices:
            assert comm.degree(v) == graph.degree(v)

    @given(st.sampled_from([3, 4]), st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_adjacency_agrees_everywhere(self, side, seed):
        comm, graph, _ = instance(side, seed)
        vertices = comm.vertices
        for u in vertices:
            for v in vertices:
                if u != v:
                    assert comm.adjacent(u, v) == graph.adjacent(u, v)

    @given(st.sampled_from([3, 4]), st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_neighbor_sets_agree(self, side, seed):
        # Orders differ (slot order vs sorted order) but the answered
        # neighbor *sets* must coincide.
        comm, graph, _ = instance(side, seed)
        for v in comm.vertices:
            comm_nbrs = {comm.neighbor(v, i) for i in range(side)}
            graph_nbrs = {graph.neighbor(v, i) for i in range(side)}
            assert comm_nbrs == graph_nbrs

    def test_same_estimator_same_quality_on_both(self):
        comm, graph, gxy = instance(5, seed=7)
        result_comm = estimate_min_cut(comm, eps=0.25, rng=1)
        result_graph = estimate_min_cut(graph, eps=0.25, rng=1)
        true_value = 2.0 * gxy.intersection() if gxy.lemma_55_applicable() else None
        # Identical rng and parameters; the only divergence source is
        # neighbor ordering, which must not change correctness.
        if true_value is not None and true_value > 0:
            assert result_comm.value == pytest.approx(true_value, rel=0.5)
            assert result_graph.value == pytest.approx(true_value, rel=0.5)

    def test_communication_bound_holds_for_arbitrary_streams(self):
        comm, _, _ = instance(4, seed=9)
        gen = ensure_rng(3)
        vertices = comm.vertices
        for _ in range(200):
            kind = gen.integers(0, 3)
            v = vertices[int(gen.integers(0, len(vertices)))]
            if kind == 0:
                comm.degree(v)
            elif kind == 1:
                comm.neighbor(v, int(gen.integers(0, comm.side + 1)))
            else:
                u = vertices[int(gen.integers(0, len(vertices)))]
                if u != v:
                    comm.adjacent(u, v)
        assert comm.bits_exchanged <= 2 * comm.counter.total
