"""Telemetry cross-checks: recorded metrics match reported resources.

The observability layer is only trustworthy if the numbers it records
are the *same* numbers the library already reports through its result
objects (mean sketch bits, query counts, communication bits).  Each test
runs one pipeline with telemetry on and reconciles the global registry
against the decoder-/coordinator-reported values.
"""

import pytest

from repro import obs
from repro.obs.sink import ListSink


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.reset_metrics()
    yield
    obs.disable()
    obs.STATE.sink = None
    obs.reset_metrics()


class TestForEachGameTelemetry:
    def test_sketch_bits_histogram_matches_game_report(self):
        from repro.foreach_lb.game import run_index_game
        from repro.foreach_lb.params import ForEachParams
        from repro.sketch.noisy import NoisyForEachSketch

        params = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2)
        rounds = 5
        with obs.enabled(ListSink()) as sink:
            result = run_index_game(
                params,
                lambda g, r: NoisyForEachSketch(g, epsilon=0.2, rng=r),
                rounds=rounds,
                rng=3,
            )
        hist = obs.REGISTRY.histogram("sketch.size_bits")
        assert hist.count == rounds  # one size_bits() call per round
        assert hist.sum == pytest.approx(result.mean_sketch_bits * rounds)
        assert obs.REGISTRY.counter("game.foreach.rounds").value == rounds
        round_spans = [
            r for r in sink.of_kind("span") if r["name"] == "foreach.round"
        ]
        assert len(round_spans) == rounds
        # Every round nests an encode and a decode span.
        assert sum(
            1 for r in sink.of_kind("span") if r["path"].endswith("/foreach.decode")
        ) == rounds

    def test_sketch_query_counter_is_positive(self):
        from repro.foreach_lb.game import run_index_game
        from repro.foreach_lb.params import ForEachParams
        from repro.sketch.exact import ExactCutSketch

        params = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2)
        with obs.enabled(ListSink()):
            run_index_game(params, lambda g, r: ExactCutSketch(g), rounds=2, rng=0)
        assert obs.REGISTRY.counter("sketch.queries").value > 0


class TestOracleTelemetry:
    def test_global_mirror_matches_local_meter(self):
        from repro.graphs.generators import planted_min_cut_ugraph
        from repro.localquery.oracle import GraphOracle
        from repro.localquery.verify_guess import fetch_degrees, verify_guess

        graph, k = planted_min_cut_ugraph(30, 15, rng=20)
        oracle = GraphOracle(graph)
        with obs.enabled(ListSink()):
            degrees = fetch_degrees(oracle)
            result = verify_guess(
                oracle, degrees, t=float(k), eps=0.5, rng=0, constant=0.5
            )
        snap = obs.snapshot()
        assert snap["oracle.query.degree"] == oracle.counter.degree_queries
        assert snap["oracle.query.neighbor"] == oracle.counter.neighbor_queries
        assert result.neighbor_queries == oracle.counter.neighbor_queries


class TestDistributedTelemetry:
    def test_counters_match_coordinator_report(self):
        from repro.distributed.coordinator import distributed_min_cut
        from repro.distributed.server import partition_edges
        from repro.graphs.ugraph import UGraph

        g = UGraph(nodes=range(12))
        for u in range(12):
            for v in range(u + 1, 12):
                g.add_edge(u, v, 1.0)
        servers = partition_edges(g, 2, rng=1)
        with obs.enabled(ListSink()) as sink:
            result = distributed_min_cut(
                servers, epsilon=0.3, strategy="hybrid", rng=7,
                contraction_attempts=40, sampling_constant=0.3,
            )
        snap = obs.snapshot()
        assert snap["distributed.sketch_bits"] == result.sketch_bits
        assert snap["distributed.query_bits"] == result.query_bits
        # One round trip per (candidate, server) pair, priced in bits.
        assert snap["distributed.round_trips"] == (
            result.candidates_scored * len(servers)
        )
        assert snap["distributed.response_bits"] == result.query_bits
        span_names = {r["name"] for r in sink.of_kind("span")}
        assert {"distributed.ship", "distributed.candidates",
                "distributed.rescore"} <= span_names

    def test_forall_only_counts_sketch_bits(self):
        from repro.distributed.coordinator import distributed_min_cut
        from repro.distributed.server import partition_edges
        from repro.graphs.ugraph import UGraph

        g = UGraph(nodes=range(10))
        for u in range(10):
            for v in range(u + 1, 10):
                g.add_edge(u, v, 1.0)
        servers = partition_edges(g, 2, rng=2)
        with obs.enabled(ListSink()):
            result = distributed_min_cut(
                servers, epsilon=0.4, strategy="forall_only", rng=3,
                sampling_constant=0.3,
            )
        snap = obs.snapshot()
        assert snap["distributed.sketch_bits"] == result.sketch_bits
        assert snap.get("distributed.query_bits", 0) == 0


class TestCsrTelemetry:
    def test_kernel_calls_and_freeze_cache(self):
        from repro.graphs.generators import random_balanced_digraph

        g = random_balanced_digraph(24, beta=2.0, density=0.4, rng=5)
        with obs.enabled(ListSink()):
            csr = g.freeze()       # miss: first snapshot build
            g.freeze()             # hit: cached
            sides = [frozenset(list(g.nodes())[:8])] * 4
            member = csr.membership_matrix(sides)
            csr.cut_weights(member)
        snap = obs.snapshot()
        assert snap["csr.freeze.miss"] == 1
        assert snap["csr.freeze.hit"] == 1
        assert snap["csr.cut_weights.calls"] == 1
        assert snap["csr.cut_weights.rows"] == 4
        assert snap["csr.batch_rows.count"] == 1
        assert snap["csr.batch_rows.sum"] == 4

    def test_maxflow_phases_observed(self):
        from repro.graphs.digraph import DiGraph
        from repro.graphs.maxflow import max_flow

        g = DiGraph(edges=[("s", "a", 2.0), ("a", "t", 1.0), ("s", "t", 1.0)])
        with obs.enabled(ListSink()):
            result = max_flow(g, "s", "t")
        assert result.value == pytest.approx(2.0)
        snap = obs.snapshot()
        assert snap["maxflow.calls.csr"] == 1
        assert snap["csr.maxflow.calls"] == 1
        assert snap["csr.maxflow.phases.count"] == 1
        assert snap["csr.maxflow.phases.sum"] >= 1
