"""Tests for repro.sketch.boosted (footnote 2/3 median boosting)."""

import pytest

from repro.errors import SketchError
from repro.graphs.generators import random_balanced_digraph
from repro.sketch.base import SketchModel
from repro.sketch.boosted import BoostedForEachSketch
from repro.sketch.exact import ExactCutSketch
from repro.sketch.noisy import NoisyForEachSketch


@pytest.fixture
def graph():
    return random_balanced_digraph(8, beta=2.0, density=0.5, rng=0)


class TestConstruction:
    def test_even_replica_count_rounded_up(self, graph):
        boosted = BoostedForEachSketch(
            graph, lambda g, r: ExactCutSketch(g), replicas=4
        )
        assert boosted.replicas == 5

    def test_zero_replicas_rejected(self, graph):
        with pytest.raises(SketchError):
            BoostedForEachSketch(graph, lambda g, r: ExactCutSketch(g), replicas=0)

    def test_wrap_existing(self, graph):
        inner = [ExactCutSketch(graph) for _ in range(3)]
        boosted = BoostedForEachSketch.wrap(inner)
        assert boosted.replicas == 3
        with pytest.raises(SketchError):
            BoostedForEachSketch.wrap([])

    def test_model_and_epsilon(self, graph):
        boosted = BoostedForEachSketch(
            graph,
            lambda g, r: NoisyForEachSketch(g, epsilon=0.1, rng=r),
            replicas=3,
        )
        assert boosted.model is SketchModel.FOR_EACH
        assert boosted.epsilon == 0.1


class TestBoosting:
    def test_size_is_constant_factor(self, graph):
        single = ExactCutSketch(graph)
        boosted = BoostedForEachSketch(
            graph, lambda g, r: ExactCutSketch(g), replicas=5
        )
        assert boosted.size_bits() == 5 * single.size_bits()

    def test_median_suppresses_failures(self, graph):
        """Inner sketches fail 20% of the time (returning 2w+1); the
        5-way median must fail far less often."""
        side = {graph.nodes()[0]}
        truth = graph.cut_weight(side)

        boosted = BoostedForEachSketch(
            graph,
            lambda g, r: NoisyForEachSketch(
                g, epsilon=0.0, failure_prob=0.2, rng=100 + r
            ),
            replicas=5,
        )
        failures = sum(
            1
            for _ in range(300)
            if abs(boosted.query(side) - truth) > 1e-9
        )
        # P(median fails) = P(>=3 of 5 fail) ~ 5.8% at p=0.2.
        assert failures / 300 < 0.15

    def test_single_inner_failure_never_visible(self, graph):
        side = {graph.nodes()[1]}
        truth = graph.cut_weight(side)
        inner = [
            ExactCutSketch(graph),
            ExactCutSketch(graph),
            NoisyForEachSketch(graph, epsilon=0.0, failure_prob=0.999, rng=1),
        ]
        boosted = BoostedForEachSketch.wrap(inner)
        for _ in range(20):
            assert boosted.query(side) == pytest.approx(truth)

    def test_boosted_decoder_pipeline(self, graph):
        """The boosted sketch slots straight into the Theorem 1.1
        decoder (footnote 2's actual use)."""
        from repro.foreach_lb.decoder import ForEachDecoder
        from repro.foreach_lb.encoder import ForEachEncoder
        from repro.foreach_lb.params import ForEachParams
        from repro.utils.bitstrings import random_signstring

        params = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2)
        s = random_signstring(params.string_length, rng=7)
        encoded = ForEachEncoder(params).encode(s)
        boosted = BoostedForEachSketch(
            encoded.graph,
            lambda g, r: NoisyForEachSketch(
                g, epsilon=0.001, failure_prob=0.1, rng=50 + r
            ),
            replicas=9,
        )
        decoder = ForEachDecoder(params)
        hits = sum(
            1
            for q in range(params.string_length)
            if params.locate_bit(q)[:3] not in encoded.failed_blocks
            and decoder.decode_bit(boosted, q) == int(s[q])
        )
        total = params.string_length - sum(
            1
            for q in range(params.string_length)
            if params.locate_bit(q)[:3] in encoded.failed_blocks
        )
        assert hits / total > 0.9
