"""Tests for repro.sketch.sparsifier and repro.sketch.directed."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, SketchError
from repro.graphs.cuts import (
    all_directed_cut_values,
    all_undirected_cut_values,
    max_cut_error,
    max_directed_cut_error,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    random_balanced_digraph,
    random_eulerian_digraph,
    random_regularish_ugraph,
)
from repro.graphs.ugraph import UGraph
from repro.sketch.base import SketchModel
from repro.sketch.directed import BalancedDigraphSparsifier
from repro.sketch.sparsifier import (
    SparsifierSketch,
    importance_sparsify,
    uniform_sparsify,
)


def dense_ugraph(n: int, rng) -> UGraph:
    g = UGraph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, 1.0)
    return g


class TestUniformSparsify:
    def test_keep_all(self):
        g = random_regularish_ugraph(10, 4, rng=0)
        sparse = uniform_sparsify(g, 1.0, rng=0)
        assert sparse.num_edges == g.num_edges

    def test_reweighting_unbiased_in_expectation(self):
        g = dense_ugraph(8, None)
        total = 0.0
        trials = 60
        side = set(range(4))
        for seed in range(trials):
            sparse = uniform_sparsify(g, 0.5, rng=seed)
            total += sparse.cut_weight(side) if sparse.num_nodes else 0.0
        mean = total / trials
        assert mean == pytest.approx(g.cut_weight(side), rel=0.25)

    def test_bad_prob(self):
        g = dense_ugraph(4, None)
        with pytest.raises(ParameterError):
            uniform_sparsify(g, 0.0)
        with pytest.raises(ParameterError):
            uniform_sparsify(g, 1.5)


class TestImportanceSparsify:
    def test_preserves_all_cuts_on_dense_graph(self):
        g = dense_ugraph(10, None)
        sparse = importance_sparsify(g, epsilon=0.5, rng=1, connectivity="exact")
        err = max_cut_error(g, sparse.cut_weight)
        # Empirical for-all error should be in the epsilon ballpark.
        assert err < 0.5

    def test_sparsifies_when_connectivity_high(self):
        g = dense_ugraph(14, None)
        sparse = importance_sparsify(
            g, epsilon=0.9, rng=2, constant=0.3, connectivity="exact"
        )
        assert sparse.num_edges < g.num_edges

    def test_keeps_bridges(self):
        # A bridge has local connectivity 1 => p = 1 => always kept.
        g = dense_ugraph(5, None)
        g.add_edge(100, 0, 1.0)
        sparse = importance_sparsify(g, epsilon=0.5, rng=3, connectivity="exact")
        assert sparse.has_edge(100, 0)

    def test_disconnected_rejected(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        g.add_node("c")
        with pytest.raises(SketchError):
            importance_sparsify(g, epsilon=0.5, connectivity="mincut")

    def test_bad_params(self):
        g = dense_ugraph(4, None)
        with pytest.raises(ParameterError):
            importance_sparsify(g, epsilon=0.0)
        with pytest.raises(ParameterError):
            importance_sparsify(g, epsilon=0.5, connectivity="bogus")


class TestSparsifierSketch:
    def test_model(self):
        g = random_balanced_digraph(6, beta=2.0, rng=4)
        sketch = SparsifierSketch(g, epsilon=0.5, rng=4)
        assert sketch.model is SketchModel.FOR_ALL
        assert sketch.epsilon == 0.5

    def test_directed_pairs_sampled_together(self):
        g = random_balanced_digraph(8, beta=3.0, density=0.5, rng=5)
        sketch = SparsifierSketch(g, epsilon=0.6, rng=5)
        sparse = sketch.sparse_graph
        for u, v, _ in sparse.edges():
            if g.weight(v, u) > 0:
                assert sparse.has_edge(v, u)

    def test_unbiased_direction_shares(self):
        g = DiGraph()
        g.add_edge("a", "b", 3.0)
        g.add_edge("b", "a", 1.0)
        sketch = SparsifierSketch(g, epsilon=0.2, rng=6)
        sparse = sketch.sparse_graph
        # At eps = 0.2 the sampling probability clamps to 1, so both
        # directions survive at their original weights.
        assert sparse.weight("a", "b") == pytest.approx(3.0)
        assert sparse.weight("b", "a") == pytest.approx(1.0)

    def test_from_undirected_reproduces_cut_values(self):
        g = random_regularish_ugraph(8, 4, rng=7)
        sketch = SparsifierSketch.from_undirected(g, epsilon=0.4, rng=7)
        # With p = 1 everywhere (low connectivity), queries are exact.
        for side, value in all_undirected_cut_values(g):
            assert sketch.query(set(side)) == pytest.approx(value)

    def test_size_bits_reflects_sample(self):
        g = dense_ugraph(12, None)
        small = SparsifierSketch.from_undirected(
            g, epsilon=0.9, rng=8, constant=0.2
        )
        full = SparsifierSketch.from_undirected(g, epsilon=0.1, rng=8)
        assert small.size_bits() <= full.size_bits()


class TestBalancedDigraphSparsifier:
    def test_infers_beta(self):
        g = random_balanced_digraph(6, beta=4.0, rng=9)
        sketch = BalancedDigraphSparsifier(g, epsilon=0.5, rng=9)
        assert sketch.beta <= 4.0 + 1e-6

    def test_rejects_unreversed_edges_without_beta(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 1.0)
        g.add_edge("c", "a", 1.0)
        with pytest.raises(SketchError):
            BalancedDigraphSparsifier(g, epsilon=0.5)

    def test_explicit_beta_accepted_for_cycles(self):
        from repro.graphs.generators import cycle_digraph

        g = cycle_digraph(5)
        sketch = BalancedDigraphSparsifier(g, epsilon=0.5, beta=1.0, rng=10)
        assert sketch.beta == 1.0

    @pytest.mark.parametrize("n,seed", [(5, 0), (6, 1), (7, 2), (8, 3)])
    def test_directed_cut_error_bounded_empirically(self, n, seed):
        # The (1 +- eps) guarantee is probabilistic; an oversampling
        # constant of 3 makes it hold on these fixed seeds (a sharper
        # statistical sweep lives in the sparsifier benchmark).
        g = random_eulerian_digraph(n, cycles=3, rng=seed)
        sketch = BalancedDigraphSparsifier(
            g, epsilon=0.8, beta=1.0, rng=seed, constant=3.0
        )
        err = max_directed_cut_error(g, sketch.query)
        assert err <= 0.8 + 1e-9

    def test_bad_epsilon(self):
        g = random_balanced_digraph(5, beta=2.0, rng=11)
        with pytest.raises(SketchError):
            BalancedDigraphSparsifier(g, epsilon=1.5)
        with pytest.raises(SketchError):
            BalancedDigraphSparsifier(g, epsilon=0.5, beta=0.5)
