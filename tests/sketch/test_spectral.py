"""Tests for repro.sketch.spectral ([SS11] sampling)."""

import numpy as np
import pytest

from repro.errors import SketchError
from repro.graphs.cuts import all_undirected_cut_values
from repro.graphs.generators import random_connected_ugraph
from repro.graphs.ugraph import UGraph
from repro.linalg.laplacian import laplacian_matrix, spectral_distortion
from repro.sketch.base import SketchModel
from repro.sketch.spectral import SpectralSketch, spectral_sparsify


def dense_graph(n):
    g = UGraph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, 1.0)
    return g


class TestSpectralSparsify:
    def test_unbiased_for_cuts(self):
        g = dense_graph(10)
        side = set(range(5))
        totals = 0.0
        trials = 40
        for seed in range(trials):
            sparse = spectral_sparsify(g, epsilon=0.7, rng=seed, rounds=80)
            totals += sparse.cut_weight(side)
        assert totals / trials == pytest.approx(g.cut_weight(side), rel=0.15)

    def test_total_weight_preserved(self):
        g = dense_graph(9)
        sparse = spectral_sparsify(g, epsilon=0.4, rng=1)
        assert sparse.total_weight() == pytest.approx(g.total_weight(), rel=0.3)

    def test_compresses_dense_graphs(self):
        g = dense_graph(16)
        sparse = spectral_sparsify(g, epsilon=0.9, rng=2, constant=0.25)
        assert sparse.num_edges < g.num_edges

    def test_quadratic_form_distortion_bounded(self):
        g = dense_graph(10)
        sparse = spectral_sparsify(g, epsilon=0.5, rng=3)
        gen = np.random.default_rng(0)
        probes = [gen.normal(size=10) for _ in range(20)]
        assert spectral_distortion(g, sparse, probes) < 0.5

    def test_disconnected_rejected(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        g.add_node("c")
        with pytest.raises(SketchError):
            spectral_sparsify(g, epsilon=0.5)

    def test_bad_epsilon(self):
        g = dense_graph(4)
        with pytest.raises(SketchError):
            spectral_sparsify(g, epsilon=0.0)


class TestSpectralSketch:
    def test_model_and_epsilon(self):
        g = dense_graph(8)
        sketch = SpectralSketch(g, epsilon=0.5, rng=4)
        assert sketch.model is SketchModel.FOR_ALL
        assert sketch.epsilon == 0.5

    def test_all_cuts_near_truth(self):
        g = dense_graph(10)
        sketch = SpectralSketch(g, epsilon=0.4, rng=5)
        errors = [
            abs(sketch.query(set(side)) - value) / value
            for side, value in all_undirected_cut_values(g)
        ]
        assert float(np.mean(errors)) < 0.4

    def test_size_bits_positive_and_trivial_cut_rejected(self):
        g = dense_graph(6)
        sketch = SpectralSketch(g, epsilon=0.5, rng=6)
        assert sketch.size_bits() > 0
        with pytest.raises(SketchError):
            sketch.query(set())
        with pytest.raises(SketchError):
            sketch.query(set(range(6)))
