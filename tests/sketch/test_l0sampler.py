"""Tests for repro.sketch.l0sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.sketch.l0sampler import L0Sampler


class TestBasics:
    def test_empty_sketch_is_zero(self):
        s = L0Sampler(100, seed=1)
        assert s.is_zero()
        assert s.sample() is None

    def test_single_element_recovered(self):
        s = L0Sampler(100, seed=1)
        s.update(42, 3)
        assert s.sample() == (42, 3)
        assert not s.is_zero()

    def test_update_then_cancel(self):
        s = L0Sampler(100, seed=2)
        s.update(10, 5)
        s.update(10, -5)
        assert s.is_zero()
        assert s.sample() is None

    def test_zero_delta_noop(self):
        s = L0Sampler(100, seed=3)
        s.update(7, 0)
        assert s.is_zero()

    def test_bounds_checked(self):
        s = L0Sampler(10, seed=4)
        with pytest.raises(SketchError):
            s.update(10, 1)
        with pytest.raises(SketchError):
            s.update(-1, 1)
        with pytest.raises(SketchError):
            L0Sampler(0, seed=0)

    def test_size_words(self):
        s = L0Sampler(64, seed=0)
        assert s.size_words() == 3 * s.levels


class TestLinearity:
    def test_add(self):
        a = L0Sampler(50, seed=5)
        b = L0Sampler(50, seed=5)
        a.update(3, 1)
        b.update(3, 2)
        merged = a.add(b)
        assert merged.sample() == (3, 3)

    def test_subtract_removes_common_support(self):
        a = L0Sampler(50, seed=6)
        b = L0Sampler(50, seed=6)
        a.update(3, 1)
        a.update(9, 1)
        b.update(3, 1)
        diff = a.subtract(b)
        assert diff.sample() == (9, 1)

    def test_incompatible_rejected(self):
        a = L0Sampler(50, seed=7)
        b = L0Sampler(50, seed=8)
        with pytest.raises(SketchError):
            a.add(b)
        c = L0Sampler(60, seed=7)
        with pytest.raises(SketchError):
            a.subtract(c)

    def test_copy_independent(self):
        a = L0Sampler(50, seed=9)
        a.update(1, 1)
        b = a.copy()
        b.update(2, 1)
        assert a.sample() == (1, 1)


class TestRecovery:
    @given(st.integers(2, 40), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_sampled_index_is_in_support(self, support_size, seed):
        gen = np.random.default_rng(seed)
        universe = 500
        support = set(
            int(i) for i in gen.choice(universe, size=support_size, replace=False)
        )
        sketch = L0Sampler(universe, seed=seed)
        for index in support:
            sketch.update(index, 1)
        decoded = sketch.sample()
        if decoded is not None:  # decode may miss; it must never lie
            index, value = decoded
            assert index in support
            assert value == 1

    def test_recovery_rate_is_high(self):
        universe = 400
        hits = 0
        trials = 60
        gen = np.random.default_rng(0)
        for trial in range(trials):
            sketch = L0Sampler(universe, seed=trial)
            support = gen.choice(universe, size=17, replace=False)
            for index in support:
                sketch.update(int(index), 1)
            if sketch.sample() is not None:
                hits += 1
        # A single copy recovers with constant probability (~0.69 on
        # this workload); the AGM layer amplifies with multiple copies.
        assert hits / trials > 0.55

    def test_signed_entries_supported(self):
        sketch = L0Sampler(100, seed=11)
        sketch.update(5, -2)
        assert sketch.sample() == (5, -2)

    def test_decode_never_fabricates_after_cancellation(self):
        # Two entries that cancel in count but not in fingerprint must
        # not decode as a bogus single index.
        for seed in range(20):
            sketch = L0Sampler(64, seed=seed)
            sketch.update(10, 1)
            sketch.update(30, -1)
            decoded = sketch.sample()
            if decoded is not None:
                assert decoded[0] in (10, 30)
