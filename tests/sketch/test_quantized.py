"""Tests for repro.sketch.quantized."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.graphs.cuts import all_directed_cut_values, max_directed_cut_error
from repro.graphs.generators import random_balanced_digraph
from repro.sketch.base import SketchModel
from repro.sketch.quantized import (
    QuantizedCutSketch,
    quantize_graph,
    quantize_weight,
)


class TestQuantizeWeight:
    @given(
        st.floats(1e-6, 1e6),
        st.integers(1, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_relative_error_bound(self, weight, bits):
        q = quantize_weight(weight, bits)
        assert abs(q - weight) <= weight * 2.0 ** (-bits)

    def test_zero_maps_to_zero(self):
        assert quantize_weight(0.0, 8) == 0.0

    def test_powers_of_two_exact(self):
        for exp in (-3, 0, 5):
            assert quantize_weight(2.0**exp, 4) == 2.0**exp

    def test_validation(self):
        with pytest.raises(SketchError):
            quantize_weight(1.0, 0)
        with pytest.raises(SketchError):
            quantize_weight(-1.0, 4)

    @given(st.floats(1e-3, 1e3))
    @settings(max_examples=30, deadline=None)
    def test_monotone_precision(self, weight):
        coarse = abs(quantize_weight(weight, 2) - weight)
        fine = abs(quantize_weight(weight, 12) - weight)
        assert fine <= coarse + 1e-12


class TestQuantizedSketch:
    @pytest.fixture
    def graph(self):
        return random_balanced_digraph(8, beta=3.0, density=0.5, rng=0)

    def test_model_and_epsilon(self, graph):
        sketch = QuantizedCutSketch(graph, mantissa_bits=6)
        assert sketch.model is SketchModel.FOR_ALL
        assert sketch.epsilon == 2.0**-6
        assert sketch.mantissa_bits == 6

    def test_every_cut_within_epsilon(self, graph):
        sketch = QuantizedCutSketch(graph, mantissa_bits=8)
        err = max_directed_cut_error(graph, sketch.query)
        assert err <= sketch.epsilon + 1e-12

    def test_coarse_quantization_visibly_perturbs(self, graph):
        sketch = QuantizedCutSketch(graph, mantissa_bits=1)
        diffs = [
            abs(sketch.query(set(side)) - value)
            for side, value in all_directed_cut_values(graph)
        ]
        assert max(diffs) > 0.0

    def test_size_decreases_with_fewer_bits(self, graph):
        fine = QuantizedCutSketch(graph, mantissa_bits=32)
        coarse = QuantizedCutSketch(graph, mantissa_bits=4)
        assert coarse.size_bits() < fine.size_bits()

    def test_size_accuracy_tradeoff_curve(self, graph):
        """Bits halve-ish while error doubles — the explicit trade the
        lower bounds say cannot beat eps ~ bits^-1/2 territory."""
        rows = []
        for bits in (2, 4, 8, 16):
            sketch = QuantizedCutSketch(graph, mantissa_bits=bits)
            rows.append((sketch.size_bits(), max_directed_cut_error(graph, sketch.query)))
        sizes = [r[0] for r in rows]
        errors = [r[1] for r in rows]
        assert sizes == sorted(sizes)
        assert errors == sorted(errors, reverse=True)

    def test_quantize_graph_structure_preserved(self, graph):
        q = quantize_graph(graph, 6)
        assert q.num_edges == graph.num_edges
        assert set(q.nodes()) == set(graph.nodes())

    def test_validation(self, graph):
        with pytest.raises(SketchError):
            QuantizedCutSketch(graph, mantissa_bits=0)
