"""Tests for repro.sketch.agm (the [AGM12] substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.generators import (
    planted_min_cut_ugraph,
    random_connected_ugraph,
    random_regularish_ugraph,
)
from repro.graphs.ugraph import UGraph
from repro.sketch.agm import (
    AGMSketch,
    certify_k_connectivity,
    sketch_connected,
    sketch_connected_components,
    sketch_spanning_forest,
)


class TestConstruction:
    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(SketchError):
            AGMSketch([])
        with pytest.raises(SketchError):
            AGMSketch(["a", "a"])

    def test_rejects_self_loop_and_unknown(self):
        sketch = AGMSketch(["a", "b"])
        with pytest.raises(SketchError):
            sketch.add_edge("a", "a")
        with pytest.raises(SketchError):
            sketch.add_edge("a", "zzz")

    def test_edge_id_roundtrip(self):
        sketch = AGMSketch(list("abcd"))
        edge_id, lo, hi = sketch._edge_id("c", "a")
        assert sketch.decode_edge_id(edge_id) == ("a", "c")
        with pytest.raises(SketchError):
            sketch.decode_edge_id(0)  # lo == hi == 0 is invalid

    def test_size_words_scales_with_n_not_m(self):
        small = AGMSketch(range(8), copies=4)
        # Adding edges must not change the footprint (it's linear).
        before = small.size_words()
        small.add_edge(0, 1)
        small.add_edge(2, 3)
        assert small.size_words() == before


class TestCutEdgeSampling:
    def test_sample_is_a_real_cut_edge(self):
        g = random_connected_ugraph(10, extra_edge_prob=0.4, rng=1)
        sketch = AGMSketch.of_graph(g, seed=1)
        side = set(list(g.nodes())[:4])
        edge = sketch.sample_cut_edge(side)
        if edge is not None:
            u, v = edge
            assert g.has_edge(u, v)
            assert (u in side) != (v in side)

    def test_internal_edges_cancel(self):
        # A clique component with no outgoing edges must sketch to zero.
        g = UGraph(nodes=range(6))
        for u in range(3):
            for v in range(u + 1, 3):
                g.add_edge(u, v, 1.0)
        sketch = AGMSketch.of_graph(g, seed=2)
        assert sketch.sample_cut_edge({0, 1, 2}) is None

    def test_deletion_cancels_insertion(self):
        sketch = AGMSketch(range(4), seed=3)
        sketch.add_edge(0, 1)
        sketch.remove_edge(0, 1)
        assert sketch.sample_cut_edge({0}) is None

    def test_copy_out_of_range(self):
        sketch = AGMSketch(range(4), copies=2, seed=4)
        with pytest.raises(SketchError):
            sketch.sample_cut_edge({0}, copy=2)


class TestSpanningForest:
    @given(st.integers(3, 14), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_recovers_spanning_tree_of_connected_graph(self, n, seed):
        g = random_connected_ugraph(n, extra_edge_prob=0.4, rng=seed)
        sketch = AGMSketch.of_graph(g, seed=seed)
        forest = sketch_spanning_forest(sketch)
        assert forest.num_edges == n - 1
        assert forest.is_connected()
        for u, v, _ in forest.edges():
            assert g.has_edge(u, v)

    def test_components_recovered(self):
        g = UGraph(edges=[("a", "b", 1.0), ("c", "d", 1.0)])
        g.add_node("e")
        sketch = AGMSketch.of_graph(g, seed=5)
        comps = sketch_connected_components(sketch)
        assert sorted(len(c) for c in comps) == [1, 2, 2]
        assert not sketch_connected(sketch)

    def test_connected_flag(self):
        g = random_connected_ugraph(8, rng=6)
        assert sketch_connected(AGMSketch.of_graph(g, seed=6))


class TestKConnectivityCertificate:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_certifies_min_of_k_and_connectivity(self, seed):
        g = random_regularish_ugraph(10, 6, rng=seed)
        true_k = edge_connectivity(g)
        assert certify_k_connectivity(g, k=6, seed=seed) == min(6, true_k)
        assert certify_k_connectivity(g, k=2, seed=seed) == min(2, true_k)

    def test_planted_cut_detected(self):
        g, k = planted_min_cut_ugraph(8, 2, rng=3)
        assert certify_k_connectivity(g, k=5, seed=3) == k

    def test_disconnected_certifies_zero(self):
        g = UGraph(edges=[("a", "b", 1.0), ("c", "d", 1.0)])
        assert certify_k_connectivity(g, k=3, seed=4) == 0

    def test_bad_params(self):
        g = random_connected_ugraph(5, rng=7)
        with pytest.raises(SketchError):
            certify_k_connectivity(g, k=0)
        with pytest.raises(SketchError):
            certify_k_connectivity(UGraph(nodes=["a"]), k=1)
