"""Tests for repro.sketch.exact, repro.sketch.noisy, and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.graphs.cuts import all_directed_cut_values
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_balanced_digraph
from repro.sketch.base import SketchModel
from repro.sketch.exact import ExactCutSketch
from repro.sketch.noisy import NoisyForAllSketch, NoisyForEachSketch
from repro.sketch.serialization import (
    edge_bits,
    graph_size_bits,
    node_id_bits,
)


@pytest.fixture
def graph():
    return random_balanced_digraph(8, beta=3.0, density=0.4, rng=0)


class TestExactSketch:
    def test_model_and_epsilon(self, graph):
        sketch = ExactCutSketch(graph)
        assert sketch.model is SketchModel.EXACT
        assert sketch.epsilon == 0.0

    def test_answers_every_cut_exactly(self, graph):
        sketch = ExactCutSketch(graph)
        for side, value in all_directed_cut_values(graph):
            assert sketch.query(set(side)) == pytest.approx(value)

    def test_isolated_from_later_mutation(self, graph):
        sketch = ExactCutSketch(graph)
        side = {graph.nodes()[0]}
        before = sketch.query(side)
        u, v, w = next(graph.edges())
        graph.add_edge(u, v, w + 100.0, combine="set")
        assert sketch.query(side) == before

    def test_size_positive(self, graph):
        assert ExactCutSketch(graph).size_bits() > 0


class TestNoisyForEach:
    def test_error_within_epsilon(self, graph):
        sketch = NoisyForEachSketch(graph, epsilon=0.1, rng=1)
        for side, value in all_directed_cut_values(graph):
            estimate = sketch.query(set(side))
            if value > 0:
                assert abs(estimate - value) <= 0.1 * value + 1e-12

    def test_fresh_noise_per_query(self, graph):
        sketch = NoisyForEachSketch(graph, epsilon=0.2, rng=2)
        side = {graph.nodes()[0]}
        answers = {sketch.query(side) for _ in range(10)}
        assert len(answers) > 1

    def test_failure_injection(self, graph):
        sketch = NoisyForEachSketch(graph, epsilon=0.0, failure_prob=0.5, rng=3)
        side = {graph.nodes()[0]}
        true_value = graph.cut_weight(side)
        answers = [sketch.query(side) for _ in range(50)]
        bad = sum(1 for a in answers if abs(a - true_value) > 1e-9)
        assert 5 < bad < 45  # roughly half fail

    def test_adversarial_noise_is_extremal(self, graph):
        sketch = NoisyForEachSketch(graph, epsilon=0.1, adversarial=True, rng=4)
        side = {graph.nodes()[0]}
        value = graph.cut_weight(side)
        for _ in range(10):
            estimate = sketch.query(side)
            assert abs(abs(estimate - value) - 0.1 * value) < 1e-9

    def test_bad_params(self, graph):
        with pytest.raises(SketchError):
            NoisyForEachSketch(graph, epsilon=1.0)
        with pytest.raises(SketchError):
            NoisyForEachSketch(graph, epsilon=0.1, failure_prob=1.0)


class TestNoisyForAll:
    def test_error_within_epsilon_for_all_cuts(self, graph):
        sketch = NoisyForAllSketch(graph, epsilon=0.15, seed=5)
        for side, value in all_directed_cut_values(graph):
            estimate = sketch.query(set(side))
            assert abs(estimate - value) <= 0.15 * value + 1e-12

    def test_consistent_across_queries(self, graph):
        sketch = NoisyForAllSketch(graph, epsilon=0.2, seed=6)
        side = {graph.nodes()[0], graph.nodes()[3]}
        assert sketch.query(side) == sketch.query(set(side))

    def test_different_seeds_different_noise(self, graph):
        side = {graph.nodes()[0]}
        a = NoisyForAllSketch(graph, epsilon=0.2, seed=1).query(side)
        b = NoisyForAllSketch(graph, epsilon=0.2, seed=2).query(side)
        assert a != b

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_adversarial_magnitude_pinned(self, seed):
        g = random_balanced_digraph(6, beta=2.0, rng=0)
        sketch = NoisyForAllSketch(g, epsilon=0.1, adversarial=True, seed=seed)
        side = {g.nodes()[0]}
        value = g.cut_weight(side)
        assert abs(abs(sketch.query(side) - value) - 0.1 * value) < 1e-9

    def test_bad_epsilon(self, graph):
        with pytest.raises(SketchError):
            NoisyForAllSketch(graph, epsilon=-0.1)


class TestSerialization:
    def test_node_id_bits(self):
        assert node_id_bits(2) == 1
        assert node_id_bits(1024) == 10
        assert node_id_bits(1025) == 11
        with pytest.raises(SketchError):
            node_id_bits(0)

    def test_edge_bits(self):
        assert edge_bits(4, weight_bits=32) == 2 * 2 + 32
        with pytest.raises(SketchError):
            edge_bits(4, weight_bits=-1)

    def test_graph_size_scales_with_edges(self):
        small = DiGraph()
        small.add_edge(0, 1, 1.0)
        big = DiGraph()
        for i in range(10):
            big.add_edge(i, i + 1, 1.0)
        assert graph_size_bits(big) > graph_size_bits(small)
