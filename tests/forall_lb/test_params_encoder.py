"""Tests for repro.forall_lb params and encoder (Theorem 1.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.gap_hamming import sample_gap_hamming_instance
from repro.errors import ParameterError
from repro.forall_lb.encoder import ForAllEncoder
from repro.forall_lb.params import ForAllParams
from repro.graphs.balance import edgewise_balance_bound, is_beta_balanced
from repro.graphs.connectivity import is_strongly_connected

PARAMS = ForAllParams(inv_eps_sq=4, beta=1, num_groups=2)


class TestParams:
    def test_validation(self):
        with pytest.raises(ParameterError):
            ForAllParams(inv_eps_sq=3, beta=1)  # odd
        with pytest.raises(ParameterError):
            ForAllParams(inv_eps_sq=4, beta=0)
        with pytest.raises(ParameterError):
            ForAllParams(inv_eps_sq=4, beta=1, num_groups=1)

    def test_lemma_42_sizing(self):
        p = ForAllParams(inv_eps_sq=4, beta=2, num_groups=2)
        assert p.group_size == 8  # k = beta/eps^2
        assert p.num_nodes == 16
        assert p.strings_per_pair == 16  # k * beta
        assert p.num_strings == 16
        assert p.total_bits == 64  # h / eps^2
        assert p.backward_weight == 0.5

    @given(st.sampled_from([4, 8]), st.integers(1, 3), st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_total_bits_is_theorem_12_count(self, ies, beta, groups):
        p = ForAllParams(inv_eps_sq=ies, beta=beta, num_groups=groups)
        assert p.total_bits == (groups - 1) * beta**2 * ies * ies

    def test_clusters_partition_right_group(self):
        p = ForAllParams(inv_eps_sq=4, beta=3, num_groups=2)
        nodes = []
        for cluster in range(p.beta):
            nodes.extend(p.cluster_nodes(1, cluster))
        assert sorted(nodes) == sorted(p.group_nodes(1))

    @given(st.sampled_from([4, 8]), st.integers(1, 2), st.integers(2, 3))
    @settings(max_examples=15, deadline=None)
    def test_locate_string_bijection(self, ies, beta, groups):
        p = ForAllParams(inv_eps_sq=ies, beta=beta, num_groups=groups)
        seen = set()
        for q in range(p.num_strings):
            pair, left, cluster = p.locate_string(q)
            assert 0 <= pair < groups - 1
            assert 0 <= left < p.group_size
            assert 0 <= cluster < beta
            seen.add((pair, left, cluster))
        assert len(seen) == p.num_strings

    def test_locate_out_of_range(self):
        with pytest.raises(ParameterError):
            PARAMS.locate_string(PARAMS.num_strings)


def _instance(params, seed):
    return sample_gap_hamming_instance(
        params.num_strings, params.string_length, rng=seed
    )


class TestEncoder:
    def test_graph_shape(self):
        inst = _instance(PARAMS, 0)
        eg = ForAllEncoder(PARAMS).encode(inst.strings)
        k = PARAMS.group_size
        assert eg.graph.num_nodes == PARAMS.num_nodes
        assert eg.graph.num_edges == 2 * k * k

    def test_two_beta_balanced(self):
        p = ForAllParams(inv_eps_sq=4, beta=2, num_groups=2)
        inst = _instance(p, 1)
        eg = ForAllEncoder(p).encode(inst.strings)
        assert is_strongly_connected(eg.graph)
        assert edgewise_balance_bound(eg.graph) <= 2 * p.beta + 1e-9
        assert is_beta_balanced(eg.graph, 2 * p.beta)

    def test_forward_weights_encode_bits(self):
        inst = _instance(PARAMS, 2)
        eg = ForAllEncoder(PARAMS).encode(inst.strings)
        for q, s in enumerate(inst.strings):
            pair, left, cluster = PARAMS.locate_string(q)
            u = (pair, left)
            for v, bit in zip(PARAMS.cluster_nodes(pair + 1, cluster), s):
                assert eg.graph.weight(u, v) == pytest.approx(1.0 + float(bit))

    def test_backward_weights(self):
        inst = _instance(PARAMS, 3)
        eg = ForAllEncoder(PARAMS).encode(inst.strings)
        for v in PARAMS.group_nodes(1):
            for u in PARAMS.group_nodes(0):
                assert eg.graph.weight(v, u) == pytest.approx(
                    PARAMS.backward_weight
                )

    def test_rejects_wrong_count(self):
        with pytest.raises(ParameterError):
            ForAllEncoder(PARAMS).encode([])

    def test_rejects_bad_strings(self):
        inst = _instance(PARAMS, 4)
        strings = list(inst.strings)
        strings[0] = np.array([2] * PARAMS.string_length, dtype=np.int8)
        with pytest.raises(ParameterError):
            ForAllEncoder(PARAMS).encode(strings)
        strings[0] = np.ones(PARAMS.string_length + 1, dtype=np.int8)
        with pytest.raises(ParameterError):
            ForAllEncoder(PARAMS).encode(strings)

    def test_chained_groups(self):
        p = ForAllParams(inv_eps_sq=4, beta=1, num_groups=3)
        inst = _instance(p, 5)
        eg = ForAllEncoder(p).encode(inst.strings)
        k = p.group_size
        assert eg.graph.num_edges == 2 * (p.num_groups - 1) * k * k
        assert is_strongly_connected(eg.graph)
