"""Tests for the Theorem 1.2 decoder and Gap-Hamming game."""

import numpy as np
import pytest

from repro.comm.gap_hamming import GapCase, sample_gap_hamming_instance
from repro.errors import ParameterError
from repro.forall_lb.decoder import ForAllDecoder
from repro.forall_lb.encoder import ForAllEncoder
from repro.forall_lb.game import run_gap_hamming_game
from repro.forall_lb.params import ForAllParams
from repro.sketch.exact import ExactCutSketch
from repro.sketch.noisy import NoisyForAllSketch
from repro.utils.bitstrings import intersection_size

PARAMS = ForAllParams(inv_eps_sq=8, beta=1, num_groups=2)
SMALL = ForAllParams(inv_eps_sq=4, beta=1, num_groups=2)


def make_round(params, seed):
    inst = sample_gap_hamming_instance(
        params.num_strings, params.string_length, rng=seed
    )
    encoded = ForAllEncoder(params).encode(inst.strings)
    return inst, encoded


class TestDecoderMechanics:
    def test_estimate_block_weight_is_intersection_sum(self):
        """With an exact sketch, the fixed-part subtraction must leave
        exactly sum_{l in U} |N(l) cap T|."""
        inst, encoded = make_round(SMALL, 0)
        decoder = ForAllDecoder(SMALL)
        sketch = ExactCutSketch(encoded.graph)
        pair, _, cluster = SMALL.locate_string(inst.index)
        t_nodes = decoder._query_nodes(pair, cluster, inst.query)
        group = SMALL.group_nodes(pair)
        subset = frozenset(group[: len(group) // 2])
        estimate = decoder.estimate_block_weight(sketch, pair, subset, t_nodes)
        expected = 0.0
        cluster_nodes = SMALL.cluster_nodes(pair + 1, cluster)
        for left_index, left in enumerate(group):
            if left not in subset:
                continue
            q = pair * SMALL.strings_per_pair + left_index * SMALL.beta + cluster
            s = inst.strings[q]
            expected += sum(
                int(bit) for bit, v in zip(s, cluster_nodes) if v in t_nodes
            )
        assert estimate == pytest.approx(expected)

    def test_cut_side_shape(self):
        decoder = ForAllDecoder(PARAMS)
        group = PARAMS.group_nodes(0)
        subset = frozenset(group[: len(group) // 2])
        t_nodes = set(PARAMS.cluster_nodes(1, 0)[:2])
        side = decoder.cut_side(0, subset, t_nodes)
        assert subset <= side
        assert not (t_nodes & side)
        assert 0 < len(side) < PARAMS.num_nodes

    def test_query_string_length_checked(self):
        inst, encoded = make_round(SMALL, 1)
        decoder = ForAllDecoder(SMALL)
        sketch = ExactCutSketch(encoded.graph)
        with pytest.raises(ParameterError):
            decoder.decide(sketch, inst.index, np.ones(3, dtype=np.int8))

    def test_enumeration_limit_validated(self):
        with pytest.raises(ParameterError):
            ForAllDecoder(SMALL, enumeration_limit=0)

    def test_sampling_fallback_engages(self):
        inst, encoded = make_round(PARAMS, 2)
        decoder = ForAllDecoder(PARAMS, enumeration_limit=10, rng=2)
        sketch = ExactCutSketch(encoded.graph)
        decision = decoder.decide(sketch, inst.index, inst.query)
        assert decision.subsets_examined == 10


class TestDecoderCorrectness:
    def test_exact_sketch_beats_two_thirds(self):
        wins = 0
        rounds = 30
        for seed in range(rounds):
            inst, encoded = make_round(PARAMS, seed)
            decoder = ForAllDecoder(PARAMS)
            decision = decoder.decide(
                ExactCutSketch(encoded.graph), inst.index, inst.query
            )
            wins += decision.case is inst.case
        assert wins / rounds > 2.0 / 3.0

    def test_valid_forall_sketch_beats_two_thirds(self):
        wins = 0
        rounds = 30
        for seed in range(rounds):
            inst, encoded = make_round(PARAMS, 100 + seed)
            decoder = ForAllDecoder(PARAMS)
            sketch = NoisyForAllSketch(
                encoded.graph, epsilon=0.02, seed=seed
            )
            decision = decoder.decide(sketch, inst.index, inst.query)
            wins += decision.case is inst.case
        assert wins / rounds > 2.0 / 3.0


class TestGame:
    def test_game_runs_and_reports(self):
        result = run_gap_hamming_game(
            SMALL, lambda g, r: ExactCutSketch(g), rounds=10, rng=0
        )
        assert 0.0 <= result.success_rate <= 1.0
        assert result.mean_sketch_bits > 0
        assert result.mean_queries >= 1

    def test_exact_game_success(self):
        result = run_gap_hamming_game(
            PARAMS, lambda g, r: ExactCutSketch(g), rounds=25, rng=1
        )
        assert result.summary.rate > 2.0 / 3.0

    def test_fano_monotone(self):
        good = run_gap_hamming_game(
            PARAMS, lambda g, r: ExactCutSketch(g), rounds=15, rng=2
        )
        coin = run_gap_hamming_game(
            PARAMS,
            # Useless sketch: always answers 0, decoder picks arbitrary Q.
            lambda g, r: _ZeroSketch(),
            rounds=15,
            rng=2,
        )
        assert good.fano_bits() >= coin.fano_bits()

    def test_rounds_validated(self):
        with pytest.raises(ParameterError):
            run_gap_hamming_game(SMALL, lambda g, r: ExactCutSketch(g), rounds=0)


class _ZeroSketch:
    """A degenerate sketch used as the chance baseline."""

    model = None
    epsilon = 1.0

    def query(self, side):
        return 0.0

    def size_bits(self):
        return 1
