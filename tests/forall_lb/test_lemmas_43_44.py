"""Direct statistical checks of Lemma 4.3 and Lemma 4.4.

The for-all decoder's correctness rests on two claims from [ACK+16]
that the paper re-uses; here we measure them on the actual construction
rather than trusting the citation:

* **Lemma 4.3**: for random strings, both ``L_high`` (left nodes with
  ``|N(l) cap T| >= L/4 + gap/2``) and ``L_low`` occupy close to half
  of ``L`` — at most half, and not much below it.
* **Lemma 4.4**: the half-size subset ``Q`` with the highest
  (approximately) estimated ``w(U, T)`` captures at least ~4/5 of
  ``L_high``.
"""

import numpy as np
import pytest

from repro.comm.gap_hamming import sample_gap_hamming_instance
from repro.forall_lb.decoder import ForAllDecoder
from repro.forall_lb.encoder import ForAllEncoder
from repro.forall_lb.params import ForAllParams
from repro.sketch.exact import ExactCutSketch
from repro.utils.bitstrings import intersection_size

PARAMS = ForAllParams(inv_eps_sq=8, beta=1, num_groups=2)


def build_round(seed):
    inst = sample_gap_hamming_instance(
        PARAMS.num_strings, PARAMS.string_length, rng=seed
    )
    encoded = ForAllEncoder(PARAMS).encode(inst.strings)
    return inst, encoded


def high_low_sets(inst):
    """L_high / L_low for the planted cluster, from the raw strings."""
    pair, _, cluster = PARAMS.locate_string(inst.index)
    t = inst.query
    quarter = PARAMS.string_length / 4.0
    half_gap = inst.gap / 2.0
    high, low = [], []
    for left_index in range(PARAMS.group_size):
        q = pair * PARAMS.strings_per_pair + left_index * PARAMS.beta + cluster
        inter = intersection_size(inst.strings[q], t)
        if inter >= quarter + half_gap:
            high.append(left_index)
        elif inter <= quarter - half_gap:
            low.append(left_index)
    return high, low


class TestLemma43:
    def test_high_and_low_fractions(self):
        """Averaged over rounds, |L_high|/|L| and |L_low|/|L| sit in a
        band around 1/2 (the finite-size analogue of [1/2 - 10c, 1/2]).
        """
        high_fracs, low_fracs = [], []
        for seed in range(40):
            inst, _ = build_round(seed)
            high, low = high_low_sets(inst)
            high_fracs.append(len(high) / PARAMS.group_size)
            low_fracs.append(len(low) / PARAMS.group_size)
        assert 0.2 <= float(np.mean(high_fracs)) <= 0.55
        assert 0.2 <= float(np.mean(low_fracs)) <= 0.55

    def test_high_and_low_disjoint(self):
        for seed in range(10):
            inst, _ = build_round(100 + seed)
            high, low = high_low_sets(inst)
            assert not (set(high) & set(low))

    def test_planted_node_lands_on_its_promise_side(self):
        for seed in range(15):
            inst, _ = build_round(200 + seed)
            high, low = high_low_sets(inst)
            _, left_index, _ = PARAMS.locate_string(inst.index)
            if inst.case.value == "low":  # LOW distance = HIGH intersection
                assert left_index in high
            else:
                assert left_index in low


class TestLemma44:
    def test_argmax_subset_captures_most_of_l_high(self):
        """The decoder's chosen Q contains >= 4/5 of L_high on average
        (with an exact sketch the capture is essentially perfect)."""
        capture_rates = []
        for seed in range(20):
            inst, encoded = build_round(300 + seed)
            high, _ = high_low_sets(inst)
            if not high:
                continue
            decoder = ForAllDecoder(PARAMS)
            decision = decoder.decide(
                ExactCutSketch(encoded.graph), inst.index, inst.query
            )
            pair, _, _ = PARAMS.locate_string(inst.index)
            chosen = {idx for (g, idx) in decision.chosen_subset if g == pair}
            capture_rates.append(len(set(high) & chosen) / len(high))
        assert capture_rates, "no rounds with nonempty L_high"
        assert float(np.mean(capture_rates)) >= 0.8
