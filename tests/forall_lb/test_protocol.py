"""Tests for the Theorem 1.2 one-way protocol adapter."""

import pytest

from repro.comm.gap_hamming import sample_gap_hamming_instance
from repro.comm.protocol import run_protocol
from repro.errors import ParameterError, ProtocolError
from repro.forall_lb.encoder import ForAllEncoder
from repro.forall_lb.params import ForAllParams
from repro.forall_lb.protocol import (
    GapHammingQuery,
    SketchedGraphGapHammingProtocol,
    deserialize_forall_graph,
    serialize_forall_graph,
)

PARAMS = ForAllParams(inv_eps_sq=8, beta=1, num_groups=2)


def sample(seed):
    return sample_gap_hamming_instance(
        PARAMS.num_strings, PARAMS.string_length, rng=seed
    )


class TestSerialization:
    def test_roundtrip(self):
        inst = sample(0)
        graph = ForAllEncoder(PARAMS).encode(inst.strings).graph
        restored = deserialize_forall_graph(
            serialize_forall_graph(graph, PARAMS), PARAMS
        )
        assert restored.num_edges == graph.num_edges
        for u, v, w in graph.edges():
            assert restored.weight(u, v) == pytest.approx(w)

    def test_truncation_rejected(self):
        inst = sample(1)
        graph = ForAllEncoder(PARAMS).encode(inst.strings).graph
        payload = serialize_forall_graph(graph, PARAMS)
        with pytest.raises(ProtocolError):
            deserialize_forall_graph(payload[:-1], PARAMS)
        with pytest.raises(ProtocolError):
            deserialize_forall_graph(b"\x00", PARAMS)


class TestProtocol:
    def test_exact_mode_beats_two_thirds(self):
        wins = 0
        rounds = 20
        for seed in range(rounds):
            inst = sample(100 + seed)
            protocol = SketchedGraphGapHammingProtocol(PARAMS, rng=seed)
            run = run_protocol(
                protocol,
                inst.strings,
                GapHammingQuery(string_index=inst.index, query=inst.query),
            )
            wins += run.answer is inst.case
            assert run.message_bits > 0
        assert wins / rounds > 2.0 / 3.0

    def test_message_bits_scale_with_construction(self):
        inst = sample(2)
        protocol = SketchedGraphGapHammingProtocol(PARAMS)
        run = run_protocol(
            protocol,
            inst.strings,
            GapHammingQuery(string_index=inst.index, query=inst.query),
        )
        # The exact message carries the full Theta(k^2)-edge construction,
        # comfortably above the h/eps^2-bit floor.
        assert run.message_bits >= PARAMS.total_bits

    def test_sparsified_mode_runs(self):
        inst = sample(3)
        protocol = SketchedGraphGapHammingProtocol(
            PARAMS, mode="sparsified", sketch_epsilon=0.05, rng=4
        )
        run = run_protocol(
            protocol,
            inst.strings,
            GapHammingQuery(string_index=inst.index, query=inst.query),
        )
        assert run.message_bits > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ParameterError):
            SketchedGraphGapHammingProtocol(PARAMS, mode="bogus")
