"""Native/python kernel parity: bit-identical flows, cuts, codewords.

The contract under test is strict equality, not approximation: the
native kernels mirror the reference operation for operation, so on the
integer-weighted constructions the reproduction runs, every float and
every set they produce must match exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_connected_ugraph
from repro.graphs.karger_stein import karger_stein_min_cut
from repro.graphs.maxflow import max_flow
from repro.graphs.mincut import directed_global_min_cut, stoer_wagner
from repro.kernels import reference, using_backend
from repro.linalg.hadamard import Lemma32Matrix

from tests.kernels.conftest import native_backend_or_skip


def _random_digraph(n, m, seed):
    gen = np.random.default_rng(seed)
    g = DiGraph(nodes=range(n))
    used = set()
    for _ in range(m):
        u, v = (int(x) for x in gen.integers(0, n, size=2))
        if u != v and (u, v) not in used:
            used.add((u, v))
            g.add_edge(u, v, float(gen.integers(1, 10)))
    return g


class TestDinicParity:
    @given(st.integers(3, 12), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_flow_results_identical(self, n, seed):
        native_backend_or_skip()
        g = _random_digraph(n, 3 * n, seed)
        if g.num_edges == 0:
            return
        with using_backend("python"):
            a = max_flow(g, 0, n - 1)
        with using_backend("native"):
            b = max_flow(g, 0, n - 1)
        assert a.value == b.value
        assert a.source_side == b.source_side
        assert a.edge_flows == b.edge_flows

    @given(st.integers(4, 9), st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_directed_global_min_cut_identical(self, n, seed):
        native_backend_or_skip()
        g = _random_digraph(n, 4 * n, seed)
        try:
            with using_backend("python"):
                a = directed_global_min_cut(g)
            with using_backend("native"):
                b = directed_global_min_cut(g)
        except Exception:
            return  # disconnected instance; both paths raise alike
        assert a == b

    def test_kernel_level_phase_counts_match(self):
        backend = native_backend_or_skip()
        n = 12
        g = _random_digraph(n, 40, 3)
        csr = g.freeze()
        net = csr.residual_network()
        net.reset()
        ref_flow = net.arc_flow.copy()
        total_ref, phases_ref = reference.dinic_solve(
            net.indptr, net.adj, net.arc_head, net.arc_cap, ref_flow,
            net.level.copy(), net.iters.copy(), net.stack.copy(),
            net.path.copy(), net.queue.copy(), 0, n - 1,
        )
        total_nat, phases_nat = backend.dinic_solve(
            net.indptr, net.adj, net.arc_head, net.arc_cap, net.arc_flow,
            net.level, net.iters, net.stack, net.path, net.queue, 0, n - 1,
        )
        assert total_ref == total_nat
        assert phases_ref == phases_nat
        assert np.array_equal(ref_flow, net.arc_flow)


class TestContractionParity:
    @given(st.integers(4, 12), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_karger_stein_identical_per_seed(self, n, seed):
        native_backend_or_skip()
        g = random_connected_ugraph(n, extra_edge_prob=0.4, rng=seed)
        with using_backend("python"):
            a = karger_stein_min_cut(g, rng=seed)
        with using_backend("native"):
            b = karger_stein_min_cut(g, rng=seed)
        assert a[0] == b[0]
        assert a[1] == b[1]
        sw, _ = stoer_wagner(g)
        assert a[0] >= sw - 1e-9

    @given(st.integers(3, 14), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_contract_kernel_identical(self, n, seed):
        backend = native_backend_or_skip()
        gen = np.random.default_rng(seed)
        m = int(gen.integers(n, 4 * n))
        tails = gen.integers(0, n, size=m).astype(np.int64)
        heads = gen.integers(0, n, size=m).astype(np.int64)
        keep = tails != heads
        tails, heads = tails[keep], heads[keep]
        if tails.size == 0:
            return
        weights = gen.integers(1, 9, size=tails.size).astype(np.float64)
        uniforms = gen.random(n)
        p1 = np.arange(n, dtype=np.int64)
        p2 = p1.copy()
        r1 = reference.contract_to(tails, heads, weights, p1, n, 2, uniforms)
        r2 = backend.contract_to(tails, heads, weights, p2, n, 2, uniforms)
        assert r1 == r2
        assert np.array_equal(p1, p2)


class TestHadamardParity:
    @pytest.mark.parametrize("side", [2, 4, 8, 16])
    def test_codewords_identical(self, side):
        native_backend_or_skip()
        m = Lemma32Matrix(side)
        gen = np.random.default_rng(side)
        signs = gen.choice([-1, 1], size=(6, m.num_rows)).astype(np.int8)
        with using_backend("python"):
            a = m.combine_many(signs)
        with using_backend("native"):
            b = m.combine_many(signs)
        assert a.dtype == b.dtype == np.int64
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("side", [2, 4, 8])
    def test_decode_identical_on_integer_inputs(self, side):
        """Exact decode parity on integer-valued vectors — the domain the
        encoder actually produces (codewords are exact int64)."""
        native_backend_or_skip()
        m = Lemma32Matrix(side)
        gen = np.random.default_rng(side + 100)
        x = gen.integers(-30, 30, size=m.row_length).astype(np.float64)
        with using_backend("python"):
            singles_py = [m.decode_coefficient(x, t) for t in range(m.num_rows)]
            all_py = m.decode_coefficients(x)
        with using_backend("native"):
            singles_nat = [
                m.decode_coefficient(x, t) for t in range(m.num_rows)
            ]
            all_nat = m.decode_coefficients(x)
        assert singles_py == singles_nat
        assert np.array_equal(all_py, all_nat)
        assert np.array_equal(np.asarray(singles_py), all_py)

    @pytest.mark.parametrize("side", [2, 4, 8])
    def test_roundtrip_recovers_signs_on_both_backends(self, side):
        m = Lemma32Matrix(side)
        gen = np.random.default_rng(side + 7)
        signs = gen.choice([-1, 1], size=m.num_rows).astype(np.int8)
        for name in ("python", "native"):
            if name == "native":
                native_backend_or_skip()
            with using_backend(name):
                x = m.combine(signs).astype(np.float64)
                decoded = m.decode_coefficients(x)
            assert np.array_equal(decoded, signs.astype(np.float64))


class TestResidualReuse:
    def test_repeated_flows_reuse_one_network(self):
        g = _random_digraph(8, 24, 5)
        csr = g.freeze()
        first = csr.max_flow(0, 7)
        net = csr.residual_network()
        assert net.solves == 1
        again = csr.max_flow(0, 7)
        assert csr.residual_network() is net  # same arrays, reset not rebuilt
        assert net.solves == 2
        assert first == again
        other = csr.max_flow(7, 0)  # different terminals, same network
        assert csr.residual_network() is net
        assert net.solves == 3
        assert other.value == csr.max_flow(7, 0).value
