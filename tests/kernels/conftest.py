"""Shared kernel-test hygiene: clean selection and registry state."""

import pytest

from repro import obs
from repro.kernels import registry


@pytest.fixture(autouse=True)
def clean_kernel_state(monkeypatch):
    # Kernel tests select backends explicitly; ambient REPRO_KERNELS*
    # (the CI kernels matrix leg exports them) would skew selections.
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    monkeypatch.delenv("REPRO_KERNELS_NATIVE", raising=False)
    registry._reset_for_tests()
    obs.disable()
    obs.reset_metrics()
    yield
    registry._reset_for_tests()
    obs.disable()
    obs.reset_metrics()


def native_backend_or_skip():
    """The native backend, or skip the test on toolchain-less machines."""
    try:
        from repro.kernels import native

        return native.load_native()
    except registry.KernelUnavailableError as exc:
        pytest.skip(f"no native kernel toolchain: {exc}")
