"""Backend registry: selection order, degradation, and obs reporting."""

import pytest

from repro import obs
from repro.kernels import (
    KernelUnavailableError,
    available_backends,
    backend_name,
    get_backend,
    mark_use,
    select_backend,
    selection_order,
    using_backend,
)
from repro.kernels import registry


class TestSelectionOrder:
    def test_default_is_auto(self):
        assert selection_order() == ("auto", "default")

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "python")
        assert selection_order() == ("python", "env")

    def test_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "python")
        select_backend("auto")
        assert selection_order() == ("auto", "flag")

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "fortran")
        with pytest.raises(KernelUnavailableError):
            selection_order()

    def test_invalid_selection_raises(self):
        with pytest.raises(KernelUnavailableError):
            select_backend("fortran")

    def test_select_returns_previous(self):
        assert select_backend("python") is None
        assert select_backend("auto") == "python"
        assert select_backend(None) == "auto"

    def test_using_backend_restores(self):
        select_backend("python")
        with using_backend("auto"):
            assert selection_order() == ("auto", "flag")
        assert selection_order() == ("python", "flag")
        # ... even when the body raises.
        with pytest.raises(RuntimeError):
            with using_backend("auto"):
                raise RuntimeError("boom")
        assert selection_order() == ("python", "flag")


class TestResolution:
    def test_python_backend_resolves(self):
        select_backend("python")
        backend = get_backend()
        assert backend.name == "python"
        assert backend.source == "python"

    def test_python_always_available(self):
        assert available_backends()["python"] == "python"

    def test_auto_degrades_silently_on_native_import_failure(self, monkeypatch):
        """``auto`` falls back to the python reference, with no error."""
        from repro.kernels import native

        def broken_load():
            raise KernelUnavailableError("forced import failure (test)")

        monkeypatch.setattr(native, "load_native", broken_load)
        registry._reset_for_tests()
        backend = get_backend()  # auto selection: must not raise
        assert backend.name == "python"
        assert backend_name() == "python"
        assert registry.native_failure() is not None
        assert "forced import failure" in registry.native_failure()
        assert "native" not in available_backends()

    def test_explicit_native_raises_on_import_failure(self, monkeypatch):
        from repro.kernels import native

        def broken_load():
            raise KernelUnavailableError("forced import failure (test)")

        monkeypatch.setattr(native, "load_native", broken_load)
        registry._reset_for_tests()
        select_backend("native")
        with pytest.raises(KernelUnavailableError, match="via flag"):
            get_backend()
        assert backend_name() == "unavailable"

    def test_explicit_native_via_env_raises_on_import_failure(
        self, monkeypatch
    ):
        from repro.kernels import native

        def broken_load():
            raise KernelUnavailableError("forced import failure (test)")

        monkeypatch.setattr(native, "load_native", broken_load)
        registry._reset_for_tests()
        monkeypatch.setenv("REPRO_KERNELS", "native")
        with pytest.raises(KernelUnavailableError, match="via env"):
            get_backend()

    def test_native_failure_is_memoized(self, monkeypatch):
        from repro.kernels import native

        calls = []

        def broken_load():
            calls.append(1)
            raise KernelUnavailableError("forced import failure (test)")

        monkeypatch.setattr(native, "load_native", broken_load)
        registry._reset_for_tests()
        get_backend()
        get_backend()
        get_backend()
        assert len(calls) == 1  # the toolchain probe ran exactly once

    def test_numba_pin_degrades_without_numba(self, monkeypatch):
        """Pinning the numba toolchain on a numba-less machine fails
        cleanly, and ``auto`` still degrades to python."""
        try:
            import numba  # noqa: F401

            pytest.skip("numba is installed here")
        except ImportError:
            pass
        monkeypatch.setenv("REPRO_KERNELS_NATIVE", "numba")
        registry._reset_for_tests()
        backend = get_backend()  # auto: silent degradation
        assert backend.name == "python"
        assert "numba" in registry.native_failure()


class TestObsReporting:
    def test_mark_use_counts_backend(self):
        select_backend("python")
        backend = get_backend()
        obs.enable()
        try:
            mark_use(backend)
            mark_use(backend)
        finally:
            obs.disable()
        counters = obs.REGISTRY.as_dict()["counters"]
        assert counters["kernels.backend.python"] == 2

    def test_mark_use_gated_when_disabled(self):
        select_backend("python")
        mark_use(get_backend())
        counters = obs.REGISTRY.as_dict()["counters"]
        assert counters.get("kernels.backend.python", 0) == 0
