"""Crash, hang, and exception recovery: no silent partial tables.

Worker death is injected with ``os._exit`` (bypasses Python cleanup the
way an OOM kill or segfault would).  A sentinel file distinguishes
"crash once, then succeed" from "crash every time": the retried trial
runs on a fresh process with the same item, so a crash-once workload
must complete with full results, and a crash-always workload must
surface a ParallelError naming the trial.
"""

import os
import time

import pytest

from repro.errors import ParallelError
from repro.parallel import TrialPool, fork_available

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


class TestTrialExceptions:
    def test_error_names_the_trial(self):
        def fn(item):
            if item == 5:
                raise ValueError("injected failure")
            return item

        with pytest.raises(ParallelError) as excinfo:
            TrialPool(jobs=2).map(fn, list(range(8)))
        assert excinfo.value.trial == 5
        assert "injected failure" in str(excinfo.value)
        assert "ValueError" in str(excinfo.value)

    def test_traceback_text_ships_back(self):
        def deep():
            raise RuntimeError("at depth")

        def fn(item):
            deep()

        with pytest.raises(ParallelError) as excinfo:
            TrialPool(jobs=2).map(fn, [0, 1])
        assert "deep" in str(excinfo.value)  # worker traceback included


class TestWorkerCrashes:
    def test_crash_once_retries_with_same_item(self, tmp_path):
        sentinel = tmp_path / "crashed-once"

        def fn(item):
            if item == 3 and not sentinel.exists():
                sentinel.write_text("dying")
                os._exit(13)
            return item * 10

        results = TrialPool(jobs=2).map(fn, list(range(6)))
        assert results == [0, 10, 20, 30, 40, 50]
        assert sentinel.exists()  # the crash really happened

    def test_crash_always_raises_with_trial_index(self, tmp_path):
        def fn(item):
            if item == 2:
                os._exit(13)
            return item

        with pytest.raises(ParallelError) as excinfo:
            TrialPool(jobs=2).map(fn, list(range(5)))
        assert excinfo.value.trial == 2
        assert "retry" in str(excinfo.value)

    def test_no_partial_results_on_failure(self, tmp_path):
        # The contract: either every trial's result comes back, or the
        # call raises — a caller can never observe a short table.
        def fn(item):
            if item == 4:
                os._exit(13)
            return item

        with pytest.raises(ParallelError):
            TrialPool(jobs=3).map(fn, list(range(9)))


class TestHangs:
    def test_hung_worker_times_out_and_is_retried(self, tmp_path):
        sentinel = tmp_path / "hung-once"

        def fn(item):
            if item == 1 and not sentinel.exists():
                sentinel.write_text("hanging")
                time.sleep(60)
            return item

        results = TrialPool(jobs=2, timeout=2.0).map(fn, list(range(4)))
        assert results == [0, 1, 2, 3]

    def test_hang_always_raises_with_trial_index(self):
        def fn(item):
            if item == 1:
                time.sleep(60)
            return item

        with pytest.raises(ParallelError) as excinfo:
            TrialPool(jobs=2, timeout=1.0).map(fn, list(range(3)))
        assert excinfo.value.trial == 1
        assert "timeout" in str(excinfo.value)
