"""End-to-end telemetry reconciliation under parallel execution.

A fully instrumented trial function (counters, histograms, events, wire
capture, bound monitor) is run serially and with several worker counts;
the merged parent-side observability state must be indistinguishable
from the serial run — same counter totals, same histogram sample
sequences, bit-exact wire transcript, same bound checks — with worker
events additionally stamped with their origin worker pid and chunk.
"""

import numpy as np
import pytest

from repro import obs
from repro.obs import bounds as obs_bounds
from repro.obs import capture as obs_capture
from repro.obs.bounds import BoundMonitor
from repro.obs.capture import WireCapture
from repro.obs.metrics import REGISTRY
from repro.obs.sink import ListSink
from repro.parallel import fork_available, run_trials

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


def _instrumented_trial(rng):
    value = float(rng.random())
    obs.count("par.trials")
    obs.count("par.bits", int(rng.integers(1, 100)))
    obs.observe("par.value", value)
    obs.event("trial_done", value=round(value, 9))
    obs_capture.record(
        "worker", "parent", "trial_msg", bits=32, payload=round(value, 9)
    )
    for monitor in obs_bounds._MONITORS:
        monitor.record("thm13.queries", 120.0, m=100, k=5, eps=0.5)
    return value


def _run_instrumented(jobs, n_trials=11, seed=9):
    sink = ListSink()
    capture = WireCapture()
    monitor = BoundMonitor(emit_events=True)
    obs.enable(sink)
    obs_capture.install(capture)
    obs_bounds.install(monitor)
    try:
        results = run_trials(
            _instrumented_trial,
            n_trials,
            np.random.default_rng(seed),
            jobs=jobs,
        )
    finally:
        obs_bounds.uninstall(monitor)
        obs_capture.uninstall(capture)
        obs.disable()
    state = REGISTRY.dump_state()
    obs.reset_metrics()
    return {
        "results": results,
        "metrics": state,
        "events": sink.records,
        "capture": capture,
        "monitor": monitor,
    }


def _stripped(records):
    drop = {"seq", "ts", "worker", "chunk"}
    return [
        {k: v for k, v in r.items() if k not in drop} for r in records
    ]


class TestParallelObsReconciliation:
    def test_metrics_identical_to_serial(self):
        serial = _run_instrumented(jobs=1)
        for jobs in (2, 3):
            parallel = _run_instrumented(jobs=jobs)
            assert parallel["results"] == serial["results"]
            assert parallel["metrics"] == serial["metrics"]

    def test_histogram_sample_sequence_matches_serial(self):
        serial = _run_instrumented(jobs=1)
        parallel = _run_instrumented(jobs=3)
        assert (
            parallel["metrics"]["histograms"]["par.value"]
            == serial["metrics"]["histograms"]["par.value"]
        )

    def test_wire_transcript_bit_exact(self):
        serial = _run_instrumented(jobs=1)
        parallel = _run_instrumented(jobs=3)
        assert (
            obs_capture.first_divergence(
                serial["capture"], parallel["capture"]
            )
            is None
        )
        assert parallel["capture"].total_bits == serial["capture"].total_bits

    def test_wire_counters_reconcile_with_capture(self):
        # The capture reconciliation invariant: what the transcript
        # holds equals what the counters metered, merged or not.
        parallel = _run_instrumented(jobs=3)
        counters = parallel["metrics"]["counters"]
        assert counters["wire.bits"] == parallel["capture"].total_bits
        assert counters["wire.messages"] == len(
            parallel["capture"].messages
        )

    def test_events_match_serial_modulo_worker_stamps(self):
        serial = _run_instrumented(jobs=1)
        parallel = _run_instrumented(jobs=3)
        assert _stripped(parallel["events"]) == _stripped(serial["events"])

    def test_parallel_events_carry_worker_and_chunk(self):
        parallel = _run_instrumented(jobs=3)
        trial_events = [
            r for r in parallel["events"] if r.get("event") == "trial_done"
        ]
        assert trial_events
        assert all("worker" in r and "chunk" in r for r in trial_events)
        assert len({r["worker"] for r in trial_events}) >= 2

    def test_serial_events_have_no_worker_stamps(self):
        serial = _run_instrumented(jobs=1)
        assert all("worker" not in r for r in serial["events"])

    def test_bound_checks_absorbed_into_parent_monitor(self):
        serial = _run_instrumented(jobs=1)
        parallel = _run_instrumented(jobs=3)
        assert len(parallel["monitor"].checks) == len(
            serial["monitor"].checks
        )
        assert [c.spec for c in parallel["monitor"].checks] == [
            c.spec for c in serial["monitor"].checks
        ]
        assert [c.status for c in parallel["monitor"].checks] == [
            c.status for c in serial["monitor"].checks
        ]
