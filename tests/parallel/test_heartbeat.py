"""Worker heartbeats: liveness streaming without touching telemetry.

Workers ship periodic ``heartbeat`` records over a fork-inherited queue
while a live bus is installed in the parent; the parent drains them onto
the bus between result polls.  The contracts under test: beats flow
mid-run with worker/chunk/progress payloads, a stalled worker trips a
live ``slo.violation`` while its future is still pending (before the
timeout/retry path replaces it), beats never perturb the merged
telemetry (serial == parallel with or without anyone watching), and
with no bus installed no queue is ever created.
"""

import time

import numpy as np
import pytest

from repro import obs
from repro.obs import live
from repro.obs.live import LiveAggregator, LiveBus
from repro.obs.metrics import REGISTRY
from repro.obs.sink import ListSink
from repro.obs.slo import SloEngine, parse_spec
from repro.parallel import TrialPool, fork_available, run_trials
from repro.parallel import pool as pool_mod

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


def _counting_trial(rng):
    obs.count("hb.trials")
    return float(rng.random())


class TestHeartbeatFlow:
    def test_beats_reach_the_parent_bus(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "0")  # beat every trial
        with live.publishing() as bus:
            beats = []
            bus.subscribe(beats.append, kinds=["heartbeat"])
            TrialPool(jobs=2).map(lambda x: x, list(range(8)))
        assert beats
        phases = {b["phase"] for b in beats}
        assert "begin" in phases and "end" in phases
        for beat in beats:
            assert isinstance(beat["worker"], int)
            assert "chunk" in beat and "done" in beat and "metrics" in beat

    def test_progress_beats_carry_registry_deltas(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "0")
        obs.enable(ListSink())
        try:
            with live.publishing() as bus:
                beats = []
                bus.subscribe(beats.append, kinds=["heartbeat"])
                run_trials(
                    _counting_trial, 8, np.random.default_rng(3), jobs=2
                )
        finally:
            obs.disable()
        shipped = sum(
            beat["metrics"].get("hb.trials", 0) for beat in beats
        )
        # Every trial's counter movement shows up in some beat's delta.
        assert shipped == 8

    def test_ticks_are_published_while_waiting(self):
        with live.publishing() as bus:
            ticks = []
            bus.subscribe(ticks.append, kinds=["live.tick"])
            TrialPool(jobs=2).map(lambda x: x, list(range(4)))
        assert ticks  # the parent's drain loop pulses the bus clock

    def test_no_bus_means_no_queue(self, monkeypatch):
        created = []
        real_get_context = pool_mod.mp.get_context

        def spying_get_context(method):
            ctx = real_get_context(method)

            class SpyCtx:
                def Queue(self):  # noqa: N802 - multiprocessing API
                    created.append(True)
                    return ctx.Queue()

                def __getattr__(self, name):
                    return getattr(ctx, name)

            return SpyCtx()

        monkeypatch.setattr(pool_mod.mp, "get_context", spying_get_context)
        TrialPool(jobs=2).map(lambda x: x, list(range(4)))
        assert not created

    def test_heartbeat_queue_cleared_after_map(self):
        with live.publishing():
            TrialPool(jobs=2).map(lambda x: x, list(range(4)))
            assert pool_mod._HEARTBEAT_Q is None


class TestStallAlert:
    def test_stalled_worker_breaches_before_retry(self, tmp_path):
        """The live stall alert fires while the hung future is pending.

        One trial hangs past the stall threshold but under the pool
        timeout: the run still completes via the timeout/retry path,
        and by then the SLO engine must already hold a worker-stall
        breach — the alert preceded the recovery.
        """
        sentinel = tmp_path / "hung-once"

        def fn(item):
            if item == 1 and not sentinel.exists():
                sentinel.write_text("hanging")
                time.sleep(60)
            return item

        with live.publishing() as bus:
            engine = SloEngine(parse_spec("stall:1")).attach(bus)
            results = TrialPool(jobs=2, timeout=3.0, chunk_factor=1).map(
                fn, list(range(4))
            )
        assert results == [0, 1, 2, 3]
        assert sentinel.exists()
        stall_breaches = [
            record for record in engine.breaches.values()
            if record["reason"] == "heartbeat stalled"
        ]
        assert stall_breaches
        assert stall_breaches[0]["subject"].startswith("worker:")
        assert not bus.errors

    def test_healthy_run_never_trips_the_stall_rule(self):
        with live.publishing() as bus:
            engine = SloEngine(parse_spec("stall:30")).attach(bus)
            TrialPool(jobs=2).map(lambda x: x, list(range(6)))
        assert not engine.breached


def _run_counting(jobs, bus=False, n_trials=9, seed=5):
    sink = ListSink()
    obs.enable(sink)
    try:
        if bus:
            with live.publishing():
                results = run_trials(
                    _counting_trial, n_trials,
                    np.random.default_rng(seed), jobs=jobs,
                )
        else:
            results = run_trials(
                _counting_trial, n_trials,
                np.random.default_rng(seed), jobs=jobs,
            )
    finally:
        obs.disable()
    state = REGISTRY.dump_state()
    obs.reset_metrics()
    return {"results": results, "metrics": state, "events": sink.records}


def _stripped(records):
    drop = {"seq", "ts", "worker", "chunk"}
    return [{k: v for k, v in r.items() if k not in drop} for r in records]


class TestTelemetryUnperturbed:
    def test_serial_equals_parallel_with_heartbeats(self, monkeypatch):
        # The PR 5 reconciliation invariant must survive beats: merged
        # metrics and events are identical whether or not a bus (and
        # its heartbeat queue) was live, at every worker count.
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "0")
        serial = _run_counting(jobs=1, bus=False)
        for jobs in (1, 2, 4):
            watched = _run_counting(jobs=jobs, bus=True)
            assert watched["results"] == serial["results"]
            assert watched["metrics"] == serial["metrics"]
            assert _stripped(watched["events"]) == _stripped(
                serial["events"]
            )

    def test_no_heartbeat_records_in_telemetry(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "0")
        watched = _run_counting(jobs=2, bus=True)
        assert all(
            record.get("event") != "heartbeat"
            for record in watched["events"]
        )


class TestWorkerBusIsolation:
    def test_inherited_bus_is_cleared_inside_workers(self):
        # worker_begin drops the fork-inherited bus first thing, so the
        # parent's subscribers (engines, exporters) never run in a
        # child against partial state.
        def fn(item):
            return live.active() is None

        obs.enable(ListSink())
        try:
            with live.publishing():
                cleared = TrialPool(jobs=2).map(fn, list(range(4)))
        finally:
            obs.disable()
        assert all(cleared)
