"""Bit-identity: any worker count reproduces the serial path exactly."""

import numpy as np
import pytest

from repro.parallel import TrialPool, fork_available, run_trials

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


class TestEngineDeterminism:
    def test_run_trials_identical_across_worker_counts(self):
        def trial(rng):
            # Mix draw kinds so any stream divergence would surface.
            return (
                float(rng.random()),
                int(rng.integers(0, 1 << 20)),
                rng.normal(size=3).tolist(),
            )

        baseline = run_trials(trial, 16, np.random.default_rng(11), jobs=1)
        for jobs in (2, 3, 7):
            assert (
                run_trials(trial, 16, np.random.default_rng(11), jobs=jobs)
                == baseline
            )

    def test_float_summation_order_preserved(self):
        # Chunks merge in start order, so a non-associative reduction
        # over the results is bit-identical, not merely close.
        def trial(rng):
            return float(rng.random()) * 1e-17 + float(rng.random())

        serial = sum(run_trials(trial, 31, np.random.default_rng(2), jobs=1))
        parallel = sum(
            run_trials(trial, 31, np.random.default_rng(2), jobs=4)
        )
        assert serial == parallel  # exact equality, no approx


class TestGameDeterminism:
    def test_foreach_game_bit_identical(self):
        from repro.foreach_lb.game import run_index_game
        from repro.foreach_lb.params import ForEachParams
        from repro.sketch.noisy import NoisyForEachSketch

        params = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2)

        def play(jobs):
            return run_index_game(
                params,
                lambda g, r: NoisyForEachSketch(g, epsilon=0.1, rng=r),
                rounds=8,
                rng=21,
                jobs=jobs,
            )

        serial = play(1)
        for jobs in (2, 5):
            result = play(jobs)
            assert result.summary == serial.summary
            assert result.mean_sketch_bits == serial.mean_sketch_bits
            assert (
                result.encoding_failure_rate == serial.encoding_failure_rate
            )

    def test_forall_game_bit_identical(self):
        from repro.forall_lb.game import run_gap_hamming_game
        from repro.forall_lb.params import ForAllParams
        from repro.sketch.exact import ExactCutSketch

        params = ForAllParams(inv_eps_sq=4, beta=2, num_groups=2)

        def play(jobs):
            return run_gap_hamming_game(
                params,
                lambda g, r: ExactCutSketch(g),
                rounds=6,
                rng=4,
                jobs=jobs,
            )

        serial = play(1)
        parallel = play(3)
        assert parallel.summary == serial.summary
        assert parallel.mean_sketch_bits == serial.mean_sketch_bits
        assert parallel.mean_queries == serial.mean_queries


class TestSweepDeterminism:
    def test_harness_sweep_matches_serial(self):
        from repro.experiments.harness import sweep

        configs = [{"x": x, "seed": x + 10} for x in range(7)]

        def runner(x, seed):
            gen = np.random.default_rng(seed)
            return {"y": x * 2, "noise": float(gen.random())}

        serial = sweep(configs, runner, jobs=1)
        parallel = sweep(configs, runner, jobs=3)
        assert serial == parallel
        assert [row["x"] for row in parallel] == list(range(7))

    def test_verify_guess_trials_match_serial(self):
        from repro.graphs.generators import planted_min_cut_ugraph
        from repro.localquery.oracle import GraphOracle
        from repro.localquery.verify_guess import verify_guess_trials

        graph, k = planted_min_cut_ugraph(20, 6, rng=6)

        def run(jobs):
            return verify_guess_trials(
                lambda: GraphOracle(graph),
                t=float(k),
                eps=0.4,
                seeds=(0, 1, 2, 3),
                constant=0.5,
                jobs=jobs,
            )

        assert run(1) == run(2)


class TestRunAllDeterminism:
    def test_tables_identical_serial_vs_parallel(self, capsys):
        from repro.experiments.run_all import main

        assert main(["e3", "e5", "--no-telemetry"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["e3", "e5", "--no-telemetry", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
