"""Shared parallel-test hygiene: clean obs state and jobs defaults."""

import pytest

from repro import obs
from repro.obs import bounds as obs_bounds
from repro.obs import capture as obs_capture
from repro.obs import live as obs_live
from repro.parallel import set_default_jobs


@pytest.fixture(autouse=True)
def clean_parallel_state(monkeypatch):
    # Parallel tests must control their worker counts explicitly; an
    # ambient REPRO_JOBS (the CI jobs=2 leg exports one) would skew the
    # serial baselines they compare against.
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    set_default_jobs(None)
    obs.disable()
    obs.reset_metrics()
    obs_capture._ACTIVE.clear()
    obs_bounds._MONITORS.clear()
    obs_live.uninstall()
    yield
    set_default_jobs(None)
    obs.disable()
    obs.STATE.sink = None
    obs.reset_metrics()
    obs_capture._ACTIVE.clear()
    obs_bounds._MONITORS.clear()
    obs_live.uninstall()
