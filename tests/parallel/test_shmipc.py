"""Shared-memory result transport: packing, arena, and pool integration."""

import numpy as np
import pytest

from repro.parallel import TrialPool, fork_available, run_trials, shmipc


class TestPackResults:
    def test_floats_roundtrip(self):
        values = [0.0, -1.5, 3.25, 1e300]
        packed = shmipc.pack_results(values)
        assert packed is not None and packed["kind"] == "floats"
        raw = packed["data"].view(np.uint8)
        assert shmipc.unpack_results(packed, raw) == values

    def test_ints_roundtrip(self):
        values = [0, -7, 2**62, -(2**62)]
        packed = shmipc.pack_results(values)
        assert packed is not None and packed["kind"] == "ints"
        raw = packed["data"].view(np.uint8)
        out = shmipc.unpack_results(packed, raw)
        assert out == values
        assert all(type(v) is int for v in out)

    def test_uniform_arrays_roundtrip(self):
        gen = np.random.default_rng(0)
        values = [gen.random((3, 4)) for _ in range(5)]
        packed = shmipc.pack_results(values)
        assert packed is not None and packed["kind"] == "arrays"
        raw = packed["data"].view(np.uint8)
        out = shmipc.unpack_results(packed, raw)
        assert len(out) == 5
        for got, want in zip(out, values):
            assert got.dtype == want.dtype and np.array_equal(got, want)

    @pytest.mark.parametrize(
        "values",
        [
            [],
            [1.0, 2],  # mixed float/int
            [True, False],  # bools are not ints here
            [1, 2**63],  # beyond int64
            [{"a": 1}],  # non-numeric
            ["x", "y"],
            [np.zeros(3), np.zeros(4)],  # ragged shapes
            [np.zeros(3), np.zeros(3, dtype=np.int32)],  # mixed dtypes
            [np.array(["a", "b"])],  # non-numeric dtype
        ],
    )
    def test_unpackable_lists_return_none(self, values):
        assert shmipc.pack_results(values) is None

    def test_unknown_kind_rejected(self):
        packed = shmipc.pack_results([1.0, 2.0])
        raw = packed["data"].view(np.uint8)
        bad = dict(packed, kind="frobs")
        with pytest.raises(ValueError):
            shmipc.unpack_results(bad, raw)


class TestKnobs:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(shmipc.SHM_ENV, raising=False)
        assert shmipc.shm_enabled()

    def test_disabled_by_zero(self, monkeypatch):
        monkeypatch.setenv(shmipc.SHM_ENV, "0")
        assert not shmipc.shm_enabled()

    def test_slot_bytes_env_override(self, monkeypatch):
        monkeypatch.delenv(shmipc.SHM_SLOT_ENV, raising=False)
        assert shmipc.slot_bytes() == shmipc.DEFAULT_SLOT_BYTES
        monkeypatch.setenv(shmipc.SHM_SLOT_ENV, "4096")
        assert shmipc.slot_bytes() == 4096


class TestResultArena:
    def test_write_read_roundtrip_across_slots(self):
        arena = shmipc.ResultArena(slots=3, slot_size=4096)
        try:
            payloads = [[1.0, 2.0], [7, 8, 9], [np.arange(6).reshape(2, 3)]]
            descriptors = [
                arena.write(slot, results)
                for slot, results in enumerate(payloads)
            ]
            assert all(d is not None for d in descriptors)
            assert arena.read(0, descriptors[0]) == payloads[0]
            assert arena.read(1, descriptors[1]) == payloads[1]
            [arr] = arena.read(2, descriptors[2])
            assert np.array_equal(arr, payloads[2][0])
        finally:
            arena.close()

    def test_oversized_payload_returns_none(self):
        arena = shmipc.ResultArena(slots=1, slot_size=16)
        try:
            assert arena.write(0, [1.0, 2.0]) is not None  # 16 bytes fits
            assert arena.write(0, [1.0, 2.0, 3.0]) is None  # 24 does not
        finally:
            arena.close()

    def test_non_numeric_payload_returns_none(self):
        arena = shmipc.ResultArena(slots=1, slot_size=4096)
        try:
            assert arena.write(0, [{"value": 1}]) is None
        finally:
            arena.close()

    def test_read_copies_out_of_the_segment(self):
        arena = shmipc.ResultArena(slots=1, slot_size=4096)
        descriptor = arena.write(0, [np.arange(4)])
        [arr] = arena.read(0, descriptor)
        arena.close()
        assert np.array_equal(arr, np.arange(4))  # survives the unlink


@pytest.mark.skipif(not fork_available(), reason="fork start method required")
class TestPoolTransport:
    def test_numeric_results_travel_via_shm(self):
        pool = TrialPool(jobs=2)
        items = list(range(40))
        assert pool.map(lambda x: x * 0.5, items) == [x * 0.5 for x in items]
        stats = pool.last_transport_stats
        assert stats["shm_chunks"] > 0
        assert stats["pickle_chunks"] == 0

    def test_non_numeric_results_fall_back_to_pickle(self):
        pool = TrialPool(jobs=2)
        items = list(range(12))
        want = [{"v": x} for x in items]
        assert pool.map(lambda x: {"v": x}, items) == want
        stats = pool.last_transport_stats
        assert stats["pickle_chunks"] > 0
        assert stats["shm_chunks"] == 0

    def test_env_kill_switch_forces_pickle(self, monkeypatch):
        monkeypatch.setenv(shmipc.SHM_ENV, "0")
        pool = TrialPool(jobs=2)
        items = list(range(12))
        assert pool.map(lambda x: float(x), items) == [float(x) for x in items]
        assert pool.last_transport_stats["shm_chunks"] == 0
        assert pool.last_transport_stats["pickle_chunks"] > 0

    def test_tiny_slots_degrade_to_pickle_with_equal_results(
        self, monkeypatch
    ):
        items = list(range(64))
        want = [float(x) for x in items]
        pool = TrialPool(jobs=2, chunk_factor=1)
        assert pool.map(lambda x: float(x), items) == want
        monkeypatch.setenv(shmipc.SHM_SLOT_ENV, "8")  # one float per slot
        small = TrialPool(jobs=2, chunk_factor=1)
        assert small.map(lambda x: float(x), items) == want
        assert small.last_transport_stats["shm_chunks"] == 0
        assert small.last_transport_stats["pickle_chunks"] > 0

    def test_array_results_value_identical_to_serial(self):
        def fn(x):
            gen = np.random.default_rng(x)
            return gen.random(8)

        items = list(range(20))
        serial = TrialPool(jobs=1).map(fn, items)
        parallel = TrialPool(jobs=4).map(fn, items)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.dtype == b.dtype and np.array_equal(a, b)

    def test_run_trials_unchanged_by_transport(self, monkeypatch):
        def trial(gen):
            return float(gen.random())

        baseline = run_trials(trial, 30, rng=7, jobs=1)
        assert run_trials(trial, 30, rng=7, jobs=3) == baseline
        monkeypatch.setenv(shmipc.SHM_ENV, "0")
        assert run_trials(trial, 30, rng=7, jobs=3) == baseline
