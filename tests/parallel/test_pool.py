"""TrialPool scheduling mechanics: jobs resolution, chunking, mapping."""

import os

import pytest

from repro.errors import ParallelError
from repro.parallel import (
    JOBS_ENV,
    TrialPool,
    chunk_plan,
    fork_available,
    resolve_jobs,
    run_trials,
    set_default_jobs,
)
from repro.parallel import pool as pool_mod

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform lacks the fork start method"
)


class TestResolveJobs:
    def test_default_is_serial(self):
        assert resolve_jobs() == 1

    def test_explicit_argument_wins(self):
        set_default_jobs(8)
        try:
            assert resolve_jobs(3) == 3
        finally:
            set_default_jobs(None)

    def test_process_default(self):
        set_default_jobs(5)
        try:
            assert resolve_jobs() == 5
        finally:
            set_default_jobs(None)

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "4")
        assert resolve_jobs() == 4

    def test_default_beats_environment(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "4")
        set_default_jobs(2)
        try:
            assert resolve_jobs() == 2
        finally:
            set_default_jobs(None)

    def test_bad_environment_value_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ParallelError):
            resolve_jobs()

    def test_nonpositive_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)

    def test_worker_guard_forces_serial(self):
        pool_mod._IN_WORKER = True
        try:
            assert resolve_jobs(16) == 1
        finally:
            pool_mod._IN_WORKER = False


class TestChunkPlan:
    def test_covers_range_contiguously(self):
        for n in (0, 1, 5, 17, 100):
            for jobs in (1, 2, 4, 7):
                chunks = chunk_plan(n, jobs)
                covered = [
                    i for start, stop in chunks for i in range(start, stop)
                ]
                assert covered == list(range(n))

    def test_chunk_count_tracks_jobs_and_factor(self):
        chunks = chunk_plan(100, 4, chunk_factor=4)
        assert 8 <= len(chunks) <= 16  # ~jobs*factor, ceil rounding

    def test_never_more_chunks_than_items(self):
        assert len(chunk_plan(3, 8)) <= 3

    def test_negative_raises(self):
        with pytest.raises(ParallelError):
            chunk_plan(-1, 2)


class TestMapSerialFallback:
    def test_jobs_one_runs_inline(self):
        # The serial path never forks: side effects land in-process.
        seen = []

        def fn(item):
            seen.append(item)
            return item * 2

        assert TrialPool(jobs=1).map(fn, [1, 2, 3]) == [2, 4, 6]
        assert seen == [1, 2, 3]

    def test_single_item_runs_inline_even_with_jobs(self):
        seen = []
        assert TrialPool(jobs=4).map(lambda x: seen.append(x) or x, [7]) == [7]
        assert seen == [7]

    def test_serial_exceptions_propagate_untouched(self):
        with pytest.raises(ZeroDivisionError):
            TrialPool(jobs=1).map(lambda x: 1 // x, [1, 0])


@needs_fork
class TestMapParallel:
    def test_results_in_item_order(self):
        items = list(range(23))
        assert TrialPool(jobs=3).map(lambda x: x * x, items) == [
            x * x for x in items
        ]

    def test_lambdas_travel_by_fork(self):
        # Closures capture local state; pickling would reject them, the
        # fork-inherited work table must not.
        base = 100
        assert TrialPool(jobs=2).map(lambda x: x + base, [1, 2]) == [101, 102]

    def test_chunk_factor_does_not_change_results(self):
        items = list(range(17))
        coarse = TrialPool(jobs=2, chunk_factor=1).map(lambda x: x + 1, items)
        fine = TrialPool(jobs=2, chunk_factor=8).map(lambda x: x + 1, items)
        assert coarse == fine == [x + 1 for x in items]

    def test_nested_map_stays_serial(self):
        # A worker asking for parallelism must run serially in-process
        # (resolve_jobs is 1 inside workers), not fork grandchildren.
        def outer(x):
            return sum(TrialPool(jobs=4).map(lambda y: y + x, [1, 2, 3]))

        assert TrialPool(jobs=2).map(outer, [10, 20]) == [36, 66]


@needs_fork
class TestRunTrials:
    def test_trial_rng_streams_match_serial(self):
        import numpy as np

        def trial(rng):
            return float(rng.random())

        serial = run_trials(trial, 9, np.random.default_rng(5), jobs=1)
        parallel = run_trials(trial, 9, np.random.default_rng(5), jobs=3)
        assert serial == parallel

    def test_advances_parent_generator_like_spawn_rngs(self):
        import numpy as np

        from repro.utils.rng import spawn_rngs

        gen_a = np.random.default_rng(3)
        run_trials(lambda rng: None, 4, gen_a, jobs=1)
        gen_b = np.random.default_rng(3)
        spawn_rngs(gen_b, 4)
        assert gen_a.integers(0, 1 << 30) == gen_b.integers(0, 1 << 30)
