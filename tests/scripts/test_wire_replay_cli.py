"""End-to-end tests for scripts/wire_replay.py and scripts/wire_report.py.

These run the scripts as subprocesses — the exit codes are part of the
contract (0 match, 1 divergence, 2 unusable input) and only a real
process exercises them.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
REPLAY = REPO / "scripts" / "wire_replay.py"
REPORT = REPO / "scripts" / "wire_report.py"


def _run(*argv):
    return subprocess.run(
        [sys.executable, *map(str, argv)],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


def _record(tmp_path, family="foreach", seed=3):
    out = tmp_path / f"{family}.capture.jsonl"
    proc = _run(REPLAY, "record", family, "--seed", str(seed), "--out", out)
    assert proc.returncode == 0, proc.stderr
    return out


class TestRoundTrip:
    @pytest.mark.parametrize("family", ["foreach", "forall", "localquery"])
    def test_record_then_verify_exits_zero(self, tmp_path, family):
        out = _record(tmp_path, family=family, seed=7)
        proc = _run(REPLAY, "verify", out)
        assert proc.returncode == 0, proc.stderr
        assert "replay OK" in proc.stdout

    def test_record_reports_messages_and_bits(self, tmp_path):
        out = tmp_path / "c.jsonl"
        proc = _run(REPLAY, "record", "foreach", "--seed", "1", "--out", out)
        assert proc.returncode == 0, proc.stderr
        assert "recorded" in proc.stdout and "bits" in proc.stdout
        lines = out.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["event"] == "wire_capture"
        assert header["meta"]["family"] == "foreach"
        assert all(
            json.loads(line)["event"] == "wire" for line in lines[1:]
        )

    def test_params_override_is_replayable(self, tmp_path):
        out = tmp_path / "c.jsonl"
        params = json.dumps({"rounds": 3})
        proc = _run(
            REPLAY, "record", "forall", "--seed", "2",
            "--params", params, "--out", out,
        )
        assert proc.returncode == 0, proc.stderr
        assert _run(REPLAY, "verify", out).returncode == 0


class TestDivergence:
    def test_perturbed_bits_diverge_at_right_index(self, tmp_path):
        out = _record(tmp_path, family="foreach", seed=5)
        lines = out.read_text().strip().splitlines()
        # Line 0 is the header; perturb the bits of the second message.
        target = 1
        record = json.loads(lines[1 + target])
        record["bits"] += 1
        lines[1 + target] = json.dumps(record)
        out.write_text("\n".join(lines) + "\n")
        proc = _run(REPLAY, "verify", out)
        assert proc.returncode == 1
        assert f"DIVERGED at message {target}" in proc.stderr
        assert "'bits'" in proc.stderr

    def test_perturbed_digest_diverges(self, tmp_path):
        out = _record(tmp_path, family="localquery", seed=0)
        lines = out.read_text().strip().splitlines()
        record = json.loads(lines[-1])
        record["digest"] = "0" * 64
        lines[-1] = json.dumps(record)
        out.write_text("\n".join(lines) + "\n")
        proc = _run(REPLAY, "verify", out)
        assert proc.returncode == 1
        assert f"DIVERGED at message {record['seq']}" in proc.stderr
        assert "'digest'" in proc.stderr

    def test_truncated_transcript_diverges(self, tmp_path):
        out = _record(tmp_path, family="forall", seed=9)
        lines = out.read_text().strip().splitlines()
        out.write_text("\n".join(lines[:-1]) + "\n")
        proc = _run(REPLAY, "verify", out)
        assert proc.returncode == 1
        assert "'length'" in proc.stderr


class TestBadInput:
    def test_missing_file_exits_two(self, tmp_path):
        proc = _run(REPLAY, "verify", tmp_path / "nope.jsonl")
        assert proc.returncode == 2

    def test_corrupt_json_exits_two(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        proc = _run(REPLAY, "verify", path)
        assert proc.returncode == 2

    def test_unreplayable_header_exits_two(self, tmp_path):
        path = tmp_path / "headerless.jsonl"
        path.write_text(
            json.dumps({"event": "wire_capture", "meta": {"run": "x"}}) + "\n"
        )
        proc = _run(REPLAY, "verify", path)
        assert proc.returncode == 2


class TestWireReport:
    def test_report_renders_lanes_and_reconciliation(self, tmp_path):
        out = _record(tmp_path, family="foreach", seed=4)
        proc = _run(REPORT, out)
        assert proc.returncode == 0, proc.stderr
        assert "--(" in proc.stdout  # message-lane arrows
        assert "alice" in proc.stdout and "bob" in proc.stdout
        assert "reconciliation OK" in proc.stdout

    def test_report_exports_trace_and_flame(self, tmp_path):
        out = _record(tmp_path, family="forall", seed=4)
        trace = tmp_path / "trace.json"
        flame = tmp_path / "flame.txt"
        proc = _run(REPORT, out, "--trace", trace, "--flame", flame)
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert flame.exists()
