"""Tests for the cross-run observatory: obs_db ingestion + dashboard."""

import importlib
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
SCRIPTS = REPO / "scripts"


@pytest.fixture(scope="module")
def observatory():
    """Import scripts/obs_db.py and scripts/obs_dashboard.py as modules."""
    sys.path.insert(0, str(SCRIPTS))
    try:
        obs_db = importlib.import_module("obs_db")
        obs_dashboard = importlib.import_module("obs_dashboard")
    finally:
        sys.path.remove(str(SCRIPTS))
    return obs_db, obs_dashboard


def _telemetry_events(queries=531.0, wall=0.5, with_summary=True):
    events = [
        {"event": "span", "path": "experiment.e3", "depth": 0,
         "wall_s": wall, "status": "ok", "metrics": {"oracle.calls": queries}},
        {"event": "row", "table": "E3 / Theorem 1.3 - queries",
         "span_path": "experiment.e3", "meta": {"m": 1580, "k": 20},
         "values": {"eps": 0.6, "queries": queries, "bound": 219.4},
         "wall_s": wall},
        {"event": "row", "table": "E1b / Theorem 1.1 - bits",
         "span_path": "experiment.e3",
         "values": {"eps": 0.25, "n": 8, "beta": 1, "mean_bits": 1216.0,
                    "envelope": 32.0}},
        {"event": "bound_check", "spec": "thm13.queries", "theorem": "Thm 1.3",
         "kind": "row", "status": "pass", "measured": queries,
         "predicted": 219.4, "ratio": queries / 219.4},
    ]
    if with_summary:
        events.append(
            {"event": "summary",
             "metrics": {"counters": {"oracle.calls": queries},
                         "gauges": {}, "histograms": {}}}
        )
    return events


def _write_telemetry(path, **kwargs):
    events = _telemetry_events(**kwargs)
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return events


class TestCondenseRun:
    def test_summarises_all_sections(self, observatory, tmp_path):
        obs_db, _ = observatory
        events = _telemetry_events()
        record = obs_db.condense_run(events, label="pr3", source="t.jsonl")
        assert record["record"] == "run"
        assert record["label"] == "pr3"
        assert not record["partial"]
        assert record["spans"]["experiment.e3"]["count"] == 1
        assert record["metrics"]["oracle.calls"] == 531.0
        assert len(record["rows"]) == 2
        assert record["rows"][0]["meta"] == {"m": 1580, "k": 20}
        (check,) = record["bound_checks"]
        assert check["spec"] == "thm13.queries"
        assert "event" not in check

    def test_partial_flag(self, observatory):
        obs_db, _ = observatory
        record = obs_db.condense_run(_telemetry_events(with_summary=False))
        assert record["partial"]


class TestIngestion:
    def test_ingest_appends_one_record_per_run(
        self, observatory, tmp_path, capsys, monkeypatch
    ):
        obs_db, _ = observatory
        telemetry = tmp_path / "telemetry.jsonl"
        db = tmp_path / ".obs" / "history.jsonl"
        _write_telemetry(telemetry)
        args = ["ingest", "--telemetry", str(telemetry), "--db", str(db),
                "--label", "run-a", "--bench"]
        monkeypatch.setattr(sys, "argv", ["obs_db.py"] + args)
        assert obs_db.main() == 0
        _write_telemetry(telemetry, queries=600.0)
        # Same label again needs --force (see TestIngestion duplicate tests).
        monkeypatch.setattr(sys, "argv", ["obs_db.py"] + args + ["--force"])
        assert obs_db.main() == 0
        runs = obs_db.load_history(db)
        assert len(runs) == 2  # append-only: both ingests survive
        assert runs[1]["metrics"]["oracle.calls"] == 600.0

    def _ingest(self, obs_db, monkeypatch, telemetry, db, *extra):
        args = ["obs_db.py", "ingest", "--telemetry", str(telemetry),
                "--db", str(db), "--bench", *extra]
        monkeypatch.setattr(sys, "argv", args)
        return obs_db.main()

    def test_duplicate_label_rejected(
        self, observatory, tmp_path, capsys, monkeypatch
    ):
        obs_db, _ = observatory
        telemetry = tmp_path / "t.jsonl"
        db = tmp_path / "h.jsonl"
        _write_telemetry(telemetry)
        assert self._ingest(obs_db, monkeypatch, telemetry, db,
                            "--label", "pr4") == 0
        assert self._ingest(obs_db, monkeypatch, telemetry, db,
                            "--label", "pr4") == 1
        err = capsys.readouterr().err
        assert "'pr4' is already ingested" in err
        assert "--force" in err
        assert len(obs_db.load_history(db)) == 1  # nothing was appended

    def test_duplicate_label_allowed_with_force(
        self, observatory, tmp_path, monkeypatch
    ):
        obs_db, _ = observatory
        telemetry = tmp_path / "t.jsonl"
        db = tmp_path / "h.jsonl"
        _write_telemetry(telemetry)
        assert self._ingest(obs_db, monkeypatch, telemetry, db,
                            "--label", "pr4") == 0
        assert self._ingest(obs_db, monkeypatch, telemetry, db,
                            "--label", "pr4", "--force") == 0
        assert len(obs_db.load_history(db)) == 2

    def test_distinct_labels_unaffected(
        self, observatory, tmp_path, monkeypatch
    ):
        obs_db, _ = observatory
        telemetry = tmp_path / "t.jsonl"
        db = tmp_path / "h.jsonl"
        _write_telemetry(telemetry)
        assert self._ingest(obs_db, monkeypatch, telemetry, db,
                            "--label", "pr4") == 0
        assert self._ingest(obs_db, monkeypatch, telemetry, db,
                            "--label", "pr5") == 0
        assert len(obs_db.load_history(db)) == 2

    def test_unlabelled_ingests_never_clash(
        self, observatory, tmp_path, monkeypatch
    ):
        obs_db, _ = observatory
        telemetry = tmp_path / "t.jsonl"
        db = tmp_path / "h.jsonl"
        _write_telemetry(telemetry)
        assert self._ingest(obs_db, monkeypatch, telemetry, db) == 0
        assert self._ingest(obs_db, monkeypatch, telemetry, db) == 0
        assert len(obs_db.load_history(db)) == 2

    def test_collect_bench_extracts_gates(self, observatory, tmp_path):
        obs_db, _ = observatory
        bench = tmp_path / "BENCH_PRX.json"
        bench.write_text(json.dumps(
            {"gate": {"ratio": 1.0, "passed": True},
             "obs_guard": {"disabled_median_s": 0.01,
                           "enabled_over_disabled": 1.02,
                           "cuts": 4096}}
        ))
        out = obs_db.collect_bench([bench])
        assert out["BENCH_PRX.json"]["gate"]["passed"] is True
        assert "cuts" not in out["BENCH_PRX.json"]["obs_guard"]

    def test_collect_bench_tolerates_bad_file(self, observatory, tmp_path):
        obs_db, _ = observatory
        bad = tmp_path / "BENCH_BAD.json"
        bad.write_text("{not json")
        assert "error" in obs_db.collect_bench([bad])["BENCH_BAD.json"]

    def test_list_runs(self, observatory, tmp_path, capsys, monkeypatch):
        obs_db, _ = observatory
        telemetry = tmp_path / "t.jsonl"
        db = tmp_path / "h.jsonl"
        _write_telemetry(telemetry)
        monkeypatch.setattr(
            sys, "argv",
            ["obs_db.py", "ingest", "--telemetry", str(telemetry),
             "--db", str(db), "--label", "xyz", "--bench"],
        )
        obs_db.main()
        capsys.readouterr()
        monkeypatch.setattr(sys, "argv", ["obs_db.py", "list", "--db", str(db)])
        assert obs_db.main() == 0
        out = capsys.readouterr().out
        assert "label=xyz" in out and "violations=0" in out


class TestAsciiPlot:
    def test_plots_points_and_axes(self, observatory):
        _, dash = observatory
        lines = dash.ascii_plot(
            [("*", [(0.1, 100.0), (0.2, 25.0), (0.4, 6.0)]),
             ("o", [(0.1, 50.0), (0.4, 3.0)])]
        )
        joined = "\n".join(lines)
        assert "*" in joined and "o" in joined
        assert "100" in joined  # y-axis max label
        assert "0.1" in joined and "0.4" in joined  # x-axis labels

    def test_overlap_marker(self, observatory):
        _, dash = observatory
        lines = dash.ascii_plot(
            [("*", [(1.0, 1.0), (2.0, 2.0)]), ("o", [(1.0, 1.0)])]
        )
        assert any("@" in line for line in lines)

    def test_empty_series(self, observatory):
        _, dash = observatory
        assert dash.ascii_plot([("*", [])]) == ["(no data)"]


class TestDashboard:
    def _runs(self, observatory, slow_factor=1.0, queries=531.0):
        obs_db, _ = observatory
        base = obs_db.condense_run(_telemetry_events(), label="pr2")
        other = obs_db.condense_run(
            _telemetry_events(queries=queries, wall=0.5 * slow_factor),
            label="pr3",
        )
        return [base, other]

    def test_markdown_sections(self, observatory):
        _, dash = observatory
        text = dash.render_markdown(self._runs(observatory))
        assert "# Observability dashboard" in text
        assert "Thm 1.1 - for-each sketch bits vs eps" in text
        assert "VERIFY-GUESS queries vs eps" in text
        assert "Bound certification" in text
        assert "all bounds hold" in text
        assert "Span wall-time trends" in text
        assert "Regression verdict" in text

    def test_single_run_has_no_verdict(self, observatory):
        obs_db, dash = observatory
        runs = [obs_db.condense_run(_telemetry_events(), label="only")]
        assert "Need at least two ingested runs" in dash.render_markdown(runs)

    def test_regression_flagged_on_slow_span(self, observatory):
        _, dash = observatory
        text = dash.render_markdown(self._runs(observatory, slow_factor=3.0))
        assert "REGRESSION" in text
        assert "span timing regression" in text

    def test_ok_verdict_when_stable(self, observatory):
        _, dash = observatory
        text = dash.render_markdown(self._runs(observatory))
        assert "pr2 -> pr3: OK" in text

    def test_metric_regression_flagged_above_threshold(self, observatory):
        _, dash = observatory
        # 531 -> 600 queries is a +13% move, well past the 5% band.
        text = dash.render_markdown(self._runs(observatory, queries=600.0))
        assert "REGRESSION" in text
        assert "1 metric regression(s): oracle.calls" in text
        assert "metric verdicts" in text
        assert "REGRESSED" in text

    def test_metric_within_threshold_is_neutral(self, observatory):
        _, dash = observatory
        text = dash.render_markdown(self._runs(observatory, queries=531.0 * 1.04))
        assert "pr2 -> pr3: OK" in text
        assert "NEUTRAL" in text

    def test_metric_exactly_at_threshold_is_neutral(self, observatory):
        _, dash = observatory
        runs = self._runs(observatory)
        # Pin exact values: (105 - 100) / 100 is the 5% band edge, which
        # classify() keeps NEUTRAL.
        runs[0]["metrics"]["oracle.calls"] = 100.0
        runs[1]["metrics"]["oracle.calls"] = 105.0
        text = dash.render_markdown(runs)
        assert "pr2 -> pr3: OK" in text
        assert "metric regression" not in text

    def test_metric_improvement_is_not_a_problem(self, observatory):
        _, dash = observatory
        text = dash.render_markdown(self._runs(observatory, queries=400.0))
        assert "pr2 -> pr3: OK" in text
        assert "IMPROVED" in text

    def test_missing_metric_is_neutral_with_note(self, observatory):
        _, dash = observatory
        runs = self._runs(observatory)
        runs[0]["metrics"]["legacy.counter"] = 5.0
        text = dash.render_markdown(runs)
        assert "pr2 -> pr3: OK" in text
        assert "legacy.counter" in text
        assert "gone" in text

    def test_html_rendering(self, observatory):
        _, dash = observatory
        html_text = dash.render_html(
            dash.render_markdown(self._runs(observatory))
        )
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<pre>" in html_text and "</pre>" in html_text
        assert "<h1>Observability dashboard</h1>" in html_text

    def test_main_writes_dashboard_files(
        self, observatory, tmp_path, capsys, monkeypatch
    ):
        obs_db, dash = observatory
        telemetry = tmp_path / "t.jsonl"
        db = tmp_path / ".obs" / "history.jsonl"
        _write_telemetry(telemetry)
        monkeypatch.setattr(
            sys, "argv",
            ["obs_db.py", "ingest", "--telemetry", str(telemetry),
             "--db", str(db), "--bench"],
        )
        obs_db.main()
        monkeypatch.setattr(
            sys, "argv", ["obs_dashboard.py", "--db", str(db), "--no-store"]
        )
        assert dash.main() == 0
        assert (tmp_path / ".obs" / "dashboard.md").exists()
        assert (tmp_path / ".obs" / "dashboard.html").exists()

    def test_main_errors_without_history(
        self, observatory, tmp_path, capsys, monkeypatch
    ):
        _, dash = observatory
        monkeypatch.setattr(
            sys, "argv",
            ["obs_dashboard.py", "--db", str(tmp_path / "none.jsonl")],
        )
        assert dash.main() == 1
        assert "no runs" in capsys.readouterr().err


class TestStoreBackedDashboard:
    def _store_with_runs(self, tmp_path, queries=(531.0, 600.0)):
        from repro.obs.store import ExperimentStore

        store = ExperimentStore.init(tmp_path / "store")
        for n, value in enumerate(queries):
            events = _telemetry_events(queries=value)
            blob = "".join(json.dumps(e) + "\n" for e in events).encode()
            store.commit_artifacts(
                {"telemetry.jsonl": (blob, "telemetry")},
                message=f"run {n}",
                timestamp=1000.0 + n,
            )
        return store

    def test_runs_from_store_condenses_each_commit(self, observatory, tmp_path):
        _, dash = observatory
        store = self._store_with_runs(tmp_path)
        runs = dash.runs_from_store(store.root)
        assert len(runs) == 2
        assert runs[0]["metrics"]["oracle.calls"] == 531.0
        assert runs[1]["metrics"]["oracle.calls"] == 600.0
        assert runs[0]["source"] == "store:run 0"
        assert runs[0]["ingested_at"] == 1000.0

    def test_legacy_commits_pass_through_verbatim(self, observatory, tmp_path):
        _, dash = observatory
        from repro.obs.store import ExperimentStore
        from repro.obs.store.migrate import RECORD_NAME

        store = ExperimentStore.init(tmp_path / "store")
        record = {"record": "run", "label": "pr3", "ingested_at": 500.0,
                  "metrics": {"oracle.calls": 9.0}, "spans": {}, "rows": [],
                  "bound_checks": [], "partial": False}
        store.commit_artifacts(
            {RECORD_NAME: (json.dumps(record).encode(), "legacy")},
            message="legacy ingest: pr3",
            branch="lines/legacy",
        )
        runs = dash.runs_from_store(store.root, branch="lines/legacy")
        assert runs == [record]

    def test_main_prefers_store_when_present(
        self, observatory, tmp_path, capsys, monkeypatch
    ):
        _, dash = observatory
        store = self._store_with_runs(tmp_path)
        monkeypatch.setattr(
            sys, "argv",
            ["obs_dashboard.py", "--store", str(store.root),
             "--db", str(tmp_path / "absent.jsonl")],
        )
        assert dash.main() == 0
        text = (tmp_path / "dashboard.md").read_text()
        # 531 -> 600 queries across the two commits is a metric regression.
        assert "1 metric regression(s): oracle.calls" in text

    def test_no_store_flag_forces_the_flat_db(
        self, observatory, tmp_path, capsys, monkeypatch
    ):
        _, dash = observatory
        store = self._store_with_runs(tmp_path)
        monkeypatch.setattr(
            sys, "argv",
            ["obs_dashboard.py", "--store", str(store.root),
             "--db", str(tmp_path / "absent.jsonl"), "--no-store"],
        )
        assert dash.main() == 1
        assert "no runs" in capsys.readouterr().err
