"""End-to-end tests for scripts/obs_store.py over real run_all output.

These run the CLI (and run_all itself) as subprocesses — the exit codes
are part of the contract (0 success, 1 store/fsck error, 2 regression
under ``diff --check``) and only a real process exercises the
``--commit-run`` wiring end to end.
"""

import json
import os
import shutil
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
CLI = REPO / "scripts" / "obs_store.py"


def _run(*argv, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, *map(str, argv)],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


def _cli(*argv, cwd):
    return _run(CLI, *argv, cwd=cwd)


def _run_all(*argv, cwd):
    return _run("-m", "repro.experiments.run_all", *argv, cwd=cwd)


def _perturb_summary_counter(telemetry):
    """Double one summary counter in place; returns its metric name."""
    lines = telemetry.read_text().splitlines()
    for i, line in enumerate(lines):
        event = json.loads(line)
        if event.get("event") != "summary":
            continue
        counters = event["metrics"]["counters"]
        name = sorted(k for k, v in counters.items() if v > 0)[0]
        counters[name] = counters[name] * 2
        lines[i] = json.dumps(event)
        telemetry.write_text("\n".join(lines) + "\n")
        return name
    raise AssertionError("telemetry has no summary event")


@pytest.fixture(scope="module")
def seeded(tmp_path_factory):
    """Two committed e5 runs, the second with one perturbed counter."""
    root = tmp_path_factory.mktemp("e2e")
    proc = _run_all("e5", "--telemetry", "run1.jsonl", "--commit-run", cwd=root)
    assert proc.returncode == 0, proc.stderr
    assert "run committed to .obs/store" in proc.stdout

    proc = _run_all("e5", "--telemetry", "run2.jsonl", cwd=root)
    assert proc.returncode == 0, proc.stderr
    metric = _perturb_summary_counter(root / "run2.jsonl")

    proc = _cli(
        "commit", "--telemetry", "run2.jsonl", "-m", "perturbed run", cwd=root
    )
    assert proc.returncode == 0, proc.stderr
    return root, metric


class TestEndToEnd:
    def test_diff_flags_exactly_the_perturbed_metric(self, seeded):
        root, metric = seeded
        proc = _cli("diff", "HEAD~1", "HEAD", "--json", cwd=root)
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        regressed = [
            m["name"] for m in payload["metrics"] if m["verdict"] == "REGRESSED"
        ]
        assert regressed == [metric]

    def test_diff_check_exits_two_on_regression(self, seeded):
        root, metric = seeded
        proc = _cli("diff", "HEAD~1", "HEAD", "--check", cwd=root)
        assert proc.returncode == 2
        assert "REGRESSED" in proc.stdout
        assert metric in proc.stdout

    def test_log_shows_both_commits_with_meta(self, seeded):
        root, _ = seeded
        proc = _cli("log", cwd=root)
        assert proc.returncode == 0
        lines = proc.stdout.strip().splitlines()
        assert len(lines) == 2
        assert "perturbed run" in lines[0]
        assert "experiments=e5" in lines[1]

    def test_show_lists_artifacts(self, seeded):
        root, _ = seeded
        proc = _cli("show", "HEAD", cwd=root)
        assert proc.returncode == 0
        assert "telemetry.jsonl" in proc.stdout
        assert "bounds.json" in proc.stdout

    def test_fsck_passes_on_real_store(self, seeded):
        root, _ = seeded
        proc = _cli("fsck", cwd=root)
        assert proc.returncode == 0
        assert "fsck: OK" in proc.stdout

    def test_fsck_fails_loudly_on_bit_flip(self, seeded, tmp_path):
        root, _ = seeded
        copy = tmp_path / "store"
        shutil.copytree(root / ".obs" / "store", copy)
        flipped = False
        for path in sorted(copy.glob("objects/*/*")):
            body = bytearray(zlib.decompress(path.read_bytes()))
            if not body.startswith(b"blob "):
                continue
            body[-1] ^= 0x01
            path.write_bytes(zlib.compress(bytes(body)))
            flipped = True
            break
        assert flipped, "no blob object found to corrupt"
        proc = _cli("--store", copy, "fsck", cwd=tmp_path)
        assert proc.returncode == 1
        assert "CORRUPT" in proc.stdout
        assert "hash mismatch" in proc.stdout


class TestSyntheticStore:
    """CLI verbs over a small handwritten store (no run_all needed)."""

    def _telemetry(self, tmp_path, n, value):
        path = tmp_path / f"t{n}.jsonl"
        summary = {
            "event": "summary",
            "metrics": {"counters": {"comm.bits": value}, "gauges": {},
                        "histograms": {}},
        }
        path.write_text(json.dumps(summary) + "\n")
        return path

    def _seed(self, tmp_path, values):
        assert _cli("init", cwd=tmp_path).returncode == 0
        for n, value in enumerate(values):
            path = self._telemetry(tmp_path, n, value)
            proc = _cli(
                "commit", "--telemetry", path.name, "-m", f"run {n}",
                cwd=tmp_path,
            )
            assert proc.returncode == 0, proc.stderr

    def test_init_is_idempotent(self, tmp_path):
        assert "initialised" in _cli("init", cwd=tmp_path).stdout
        assert "reusing" in _cli("init", cwd=tmp_path).stdout

    def test_missing_store_errors(self, tmp_path):
        proc = _cli("log", cwd=tmp_path)
        assert proc.returncode == 1
        assert "not an experiment store" in proc.stderr

    def test_branch_and_checkout(self, tmp_path):
        self._seed(tmp_path, [100.0, 200.0])
        proc = _cli("branch", "lines/kernels", cwd=tmp_path)
        assert proc.returncode == 0
        listing = _cli("branch", cwd=tmp_path).stdout
        assert "* main" in listing
        assert "lines/kernels" in listing

        out = tmp_path / "extracted"
        proc = _cli("checkout", "HEAD~1", "--out", out, cwd=tmp_path)
        assert proc.returncode == 0
        assert json.loads(
            (out / "telemetry.jsonl").read_text()
        )["metrics"]["counters"]["comm.bits"] == 100.0

    def test_bisect_finds_first_bad_commit(self, tmp_path):
        self._seed(tmp_path, [100.0, 100.0, 200.0, 200.0])
        proc = _cli(
            "bisect", "--good", "HEAD~3", "--bad", "HEAD",
            "--metric", "comm.bits", "--json", cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        show = _cli("show", payload["first_bad"], cwd=tmp_path).stdout
        assert "run 2" in show

    def test_bisect_usage_error_exits_one(self, tmp_path):
        self._seed(tmp_path, [100.0, 200.0])
        proc = _cli("bisect", "--good", "HEAD~1", "--bad", "HEAD", cwd=tmp_path)
        assert proc.returncode == 1
        assert "exactly one target" in proc.stderr


class TestMigrateCli:
    def _legacy_db(self, tmp_path, labels):
        db = tmp_path / ".obs" / "history.jsonl"
        db.parent.mkdir(parents=True, exist_ok=True)
        records = [
            {"record": "run", "label": label, "source": "telemetry.jsonl",
             "ingested_at": 1000.0 + i,
             "metrics": {"oracle.queries": 100.0 + i},
             "spans": {}, "rows": [], "bound_checks": [], "partial": False}
            for i, label in enumerate(labels)
        ]
        db.write_text("".join(json.dumps(r) + "\n" for r in records))
        return db

    def test_round_trip_reported(self, tmp_path):
        self._legacy_db(tmp_path, ["pr2", "pr3"])
        assert _cli("init", cwd=tmp_path).returncode == 0
        proc = _cli("migrate", cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "round-trip verified against 2 source record(s)" in proc.stdout
        log = _cli("log", "lines/legacy", cwd=tmp_path).stdout
        assert "legacy ingest: pr3" in log
        assert "legacy ingest: pr2" in log

    def test_second_migration_refused(self, tmp_path):
        self._legacy_db(tmp_path, ["pr2"])
        assert _cli("init", cwd=tmp_path).returncode == 0
        assert _cli("migrate", cwd=tmp_path).returncode == 0
        proc = _cli("migrate", cwd=tmp_path)
        assert proc.returncode == 1
        assert "already exists" in proc.stderr
