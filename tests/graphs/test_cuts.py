"""Tests for repro.graphs.cuts (enumeration and brute-force ground truth)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.cuts import (
    all_directed_cut_values,
    all_undirected_cut_values,
    brute_force_directed_min_cut,
    brute_force_min_cut,
    enumerate_cut_sides,
    max_cut_error,
    max_directed_cut_error,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_connected_ugraph
from repro.graphs.ugraph import UGraph


class TestEnumerateCutSides:
    def test_counts_directed(self):
        sides = list(enumerate_cut_sides(["a", "b", "c"]))
        assert len(sides) == 2**3 - 2

    def test_counts_pinned(self):
        sides = list(enumerate_cut_sides(["a", "b", "c", "d"], pinned="a"))
        assert len(sides) == 2**3 - 1
        assert all("a" in side for side in sides)

    def test_no_trivial_sides(self):
        sides = list(enumerate_cut_sides(["a", "b"]))
        assert frozenset() not in sides
        assert frozenset({"a", "b"}) not in sides

    def test_single_node_yields_nothing(self):
        assert list(enumerate_cut_sides(["a"])) == []

    def test_pinned_must_exist(self):
        with pytest.raises(GraphError):
            list(enumerate_cut_sides(["a", "b"], pinned="zzz"))

    def test_size_limit_enforced(self):
        with pytest.raises(GraphError):
            list(enumerate_cut_sides(list(range(30))))


class TestBruteForce:
    def test_min_cut_of_path(self):
        g = UGraph(edges=[("a", "b", 5.0), ("b", "c", 1.0)])
        value, side = brute_force_min_cut(g)
        assert value == 1.0
        assert side in (frozenset({"a", "b"}), frozenset({"c"}))

    def test_directed_min_cut(self):
        g = DiGraph()
        g.add_edge("a", "b", 5.0)
        g.add_edge("b", "a", 1.0)
        value, side = brute_force_directed_min_cut(g)
        assert value == 1.0
        assert side == frozenset({"b"})

    def test_too_small_raises(self):
        with pytest.raises(GraphError):
            brute_force_min_cut(UGraph(nodes=["a"]))
        with pytest.raises(GraphError):
            brute_force_directed_min_cut(DiGraph(nodes=["a"]))

    def test_undirected_enumeration_counts_each_cut_once(self):
        g = UGraph(edges=[("a", "b", 1.0), ("b", "c", 1.0)])
        cuts = list(all_undirected_cut_values(g))
        assert len(cuts) == 2**2 - 1

    def test_directed_enumeration_counts_orientations(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "a", 3.0)
        values = dict(all_directed_cut_values(g))
        assert values[frozenset({"a"})] == 1.0
        assert values[frozenset({"b"})] == 3.0


class TestMaxCutError:
    def test_exact_oracle_has_zero_error(self):
        g = random_connected_ugraph(6, rng=0)
        assert max_cut_error(g, g.cut_weight) == 0.0

    def test_scaled_oracle_error(self):
        g = random_connected_ugraph(6, rng=1)
        err = max_cut_error(g, lambda side: 1.1 * g.cut_weight(side))
        assert err == pytest.approx(0.1)

    def test_zero_cut_must_be_exact(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        g.add_node("c")  # isolated: cut({c}) = 0
        err = max_cut_error(g, lambda side: g.cut_weight(side) + 0.5)
        assert err == float("inf")

    def test_directed_variant(self):
        g = DiGraph()
        g.add_edge("a", "b", 2.0)
        g.add_edge("b", "a", 1.0)
        err = max_directed_cut_error(g, lambda side: 0.9 * g.cut_weight(side))
        assert err == pytest.approx(0.1)

    @given(st.integers(3, 7), st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_error_of_unbiased_perturbation_bounded(self, n, seed):
        g = random_connected_ugraph(n, rng=seed)
        err = max_cut_error(g, lambda side: g.cut_weight(side) * 1.05)
        assert err == pytest.approx(0.05)
