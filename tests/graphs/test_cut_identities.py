"""Property tests on cut-value identities the reductions rely on.

Small algebraic facts used silently throughout the paper's proofs:
cut decomposition into directed parts, complement symmetry, reversal,
bilinearity of ``w(S, T)`` over disjoint unions, and the relation
between directed cuts and the symmetrization.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.cuts import enumerate_cut_sides
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_balanced_digraph, random_connected_ugraph
from repro.graphs.ugraph import symmetrize
from repro.utils.rng import ensure_rng


def random_digraph(n, seed, density=0.5):
    gen = ensure_rng(seed)
    g = DiGraph(nodes=range(n))
    for u in range(n):
        for v in range(n):
            if u != v and gen.random() < density:
                g.add_edge(u, v, float(gen.uniform(0.5, 3.0)))
    return g


class TestDirectedCutIdentities:
    @given(st.integers(3, 8), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_directed_cuts_sum_to_symmetrized_cut(self, n, seed):
        """w(S, V\\S) + w(V\\S, S) equals the undirected cut of the
        symmetrization — the identity behind the balanced-digraph
        sparsifier's error analysis."""
        g = random_digraph(n, seed)
        u = symmetrize(g)
        nodes = set(g.nodes())
        for side in enumerate_cut_sides(g.nodes(), pinned=g.nodes()[0]):
            forward = g.cut_weight(side)
            backward = g.cut_weight(nodes - set(side))
            assert forward + backward == pytest.approx(u.cut_weight(side))

    @given(st.integers(3, 8), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_reversal_swaps_cut_directions(self, n, seed):
        g = random_digraph(n, seed)
        rev = g.reverse()
        nodes = set(g.nodes())
        for side in enumerate_cut_sides(g.nodes(), pinned=g.nodes()[0]):
            assert rev.cut_weight(side) == pytest.approx(
                g.cut_weight(nodes - set(side))
            )

    @given(st.integers(4, 8), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_weight_between_is_additive_in_target(self, n, seed):
        """w(S, T1 u T2) = w(S, T1) + w(S, T2) for disjoint targets —
        what lets the for-all decoder estimate w(U, T) additively."""
        g = random_digraph(n, seed)
        nodes = g.nodes()
        src = set(nodes[: n // 3 + 1])
        rest = [v for v in nodes if v not in src]
        t1 = set(rest[: len(rest) // 2])
        t2 = set(rest[len(rest) // 2 :])
        if not t1 or not t2:
            return
        assert g.directed_weight_between(src, t1 | t2) == pytest.approx(
            g.directed_weight_between(src, t1)
            + g.directed_weight_between(src, t2)
        )

    @given(st.integers(3, 8), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_cut_equals_weight_between_complement(self, n, seed):
        g = random_digraph(n, seed)
        nodes = set(g.nodes())
        for side in enumerate_cut_sides(g.nodes(), pinned=g.nodes()[0]):
            assert g.cut_weight(side) == pytest.approx(
                g.directed_weight_between(set(side), nodes - set(side))
            )

    @given(st.integers(3, 8), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_scaling_weights_scales_cuts(self, n, seed):
        g = random_digraph(n, seed)
        doubled = g.scale_weights(2.0)
        side = {g.nodes()[0]}
        assert doubled.cut_weight(side) == pytest.approx(2 * g.cut_weight(side))


class TestBalanceIdentities:
    @given(st.integers(3, 7), st.floats(1.0, 6.0), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_balance_bounds_cut_ratio_everywhere(self, n, beta, seed):
        """Definition 2.1 unrolled: on a certified beta-balanced graph,
        every cut's directional ratio is within [1/beta, beta]."""
        g = random_balanced_digraph(n, beta=beta, rng=seed)
        nodes = set(g.nodes())
        for side in enumerate_cut_sides(g.nodes(), pinned=g.nodes()[0]):
            forward = g.cut_weight(side)
            backward = g.cut_weight(nodes - set(side))
            if backward > 0:
                assert forward <= beta * backward + 1e-9
            if forward > 0:
                assert backward <= beta * forward + 1e-9

    @given(st.integers(3, 8), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_undirected_cut_halves_bound_directed(self, n, seed):
        """w(S, V\\S) <= sym_cut(S) <= 2 * max-direction — the coarse
        inequalities the E8/E9 analyses use."""
        g = random_connected_ugraph(n, extra_edge_prob=0.4, rng=seed)
        d = DiGraph(nodes=g.nodes())
        for u, v, w in g.edges():
            d.add_edge(u, v, w)
            d.add_edge(v, u, w)
        for side in enumerate_cut_sides(g.nodes(), pinned=g.nodes()[0]):
            assert d.cut_weight(side) == pytest.approx(g.cut_weight(side))
