"""Row stability of the serving tier's cut kernel.

``cut_weights_stable`` promises each row's float is a function of that
row alone — batch composition must never change the bytes.  The plain
``cut_weights`` path makes no such promise (its BLAS blocking may), so
these tests pin the stable variant's contract explicitly.
"""

import numpy as np

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_regularish_ugraph


def _csr_and_member(n=64, k=48, rng=7):
    graph = random_regularish_ugraph(n, 6, rng=rng)
    csr = graph.freeze()
    gen = np.random.default_rng(rng)
    member = gen.random((k, n)) < 0.5
    return csr, member


class TestRowStability:
    def test_single_row_equals_batched_row_bytewise(self):
        csr, member = _csr_and_member()
        batched = csr.cut_weights_stable(member)
        for i in range(member.shape[0]):
            single = csr.cut_weights_stable(member[i])
            assert float(single) == float(batched[i])

    def test_any_batch_partition_gives_identical_bytes(self):
        csr, member = _csr_and_member()
        whole = csr.cut_weights_stable(member)
        for split in (1, 3, 7, 16):
            parts = [
                csr.cut_weights_stable(member[s : s + split])
                for s in range(0, member.shape[0], split)
            ]
            stitched = np.concatenate([np.atleast_1d(p) for p in parts])
            np.testing.assert_array_equal(stitched, whole)

    def test_row_order_permutation_permutes_values_exactly(self):
        csr, member = _csr_and_member()
        perm = np.random.default_rng(3).permutation(member.shape[0])
        base = csr.cut_weights_stable(member)
        shuffled = csr.cut_weights_stable(member[perm])
        np.testing.assert_array_equal(shuffled, base[perm])


class TestAgreement:
    def test_matches_cut_weights_within_float_tolerance(self):
        # The two paths may differ in last-ulp rounding but must agree
        # to float64 tolerance — they compute the same cut function.
        csr, member = _csr_and_member()
        np.testing.assert_allclose(
            csr.cut_weights_stable(member),
            csr.cut_weights(member),
            rtol=1e-12,
        )

    def test_directed_semantics_only_counts_outgoing_crossings(self):
        g = DiGraph()
        g.add_edge("s", "t", 5.0)
        g.add_edge("t", "s", 2.0)
        csr = g.freeze()
        row = csr.membership_matrix([frozenset(["s"])])
        assert float(csr.cut_weights_stable(row)[0]) == 5.0

    def test_empty_and_full_sides_cut_nothing(self):
        csr, _ = _csr_and_member(n=16, k=1)
        n = csr.num_nodes
        member = np.stack([np.zeros(n, dtype=bool), np.ones(n, dtype=bool)])
        np.testing.assert_array_equal(
            csr.cut_weights_stable(member), np.zeros(2)
        )
