"""Tests for repro.graphs.balance (Definition 2.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.balance import (
    edgewise_balance_bound,
    exact_balance,
    is_beta_balanced,
    most_unbalanced_cut,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    cycle_digraph,
    random_balanced_digraph,
    random_eulerian_digraph,
)


def symmetric_pair(w_forward: float, w_backward: float) -> DiGraph:
    g = DiGraph()
    g.add_edge("a", "b", w_forward)
    g.add_edge("b", "a", w_backward)
    return g


class TestExactBalance:
    def test_symmetric_graph_is_1_balanced(self):
        assert exact_balance(symmetric_pair(2.0, 2.0)) == pytest.approx(1.0)

    def test_ratio_detected_both_directions(self):
        assert exact_balance(symmetric_pair(6.0, 2.0)) == pytest.approx(3.0)
        assert exact_balance(symmetric_pair(2.0, 6.0)) == pytest.approx(3.0)

    def test_eulerian_graph_is_1_balanced(self):
        g = random_eulerian_digraph(6, cycles=3, rng=0)
        assert exact_balance(g) == pytest.approx(1.0)

    def test_directed_cycle_is_maximally_unbalanced_but_connected(self):
        # A pure cycle has w(backward) = 0 across every... no: every cut
        # of a cycle has exactly one forward and one backward crossing
        # arc, both of weight 1, so it is perfectly balanced.
        g = cycle_digraph(5)
        assert exact_balance(g) == pytest.approx(1.0)

    def test_not_strongly_connected_raises(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.0)
        with pytest.raises(GraphError):
            exact_balance(g)


class TestEdgewiseBound:
    def test_upper_bounds_exact(self):
        for seed in range(5):
            g = random_balanced_digraph(6, beta=5.0, density=0.5, rng=seed)
            assert exact_balance(g) <= edgewise_balance_bound(g) + 1e-9

    def test_missing_reverse_edge_gives_inf(self):
        g = cycle_digraph(4)
        assert edgewise_balance_bound(g) == math.inf

    def test_zero_weight_reverse_is_unbalanced(self):
        # The zero-weight edge itself imposes no constraint, but its
        # positive reverse has a zero-weight reverse, so the bound is inf.
        g = DiGraph()
        g.add_edge("a", "b", 0.0)
        g.add_edge("b", "a", 1.0)
        assert edgewise_balance_bound(g) == math.inf

    def test_zero_weight_both_directions_is_fine(self):
        g = DiGraph()
        g.add_edge("a", "b", 2.0)
        g.add_edge("b", "a", 2.0)
        g.add_edge("a", "c", 0.0)
        g.add_edge("c", "a", 0.0)
        assert edgewise_balance_bound(g) == 1.0

    @given(st.integers(4, 8), st.floats(1.0, 10.0), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_generator_meets_its_promise(self, n, beta, seed):
        g = random_balanced_digraph(n, beta=beta, rng=seed)
        assert edgewise_balance_bound(g) <= beta + 1e-6


class TestIsBetaBalanced:
    def test_edgewise_mode(self):
        g = symmetric_pair(4.0, 2.0)
        assert is_beta_balanced(g, 2.0)
        assert not is_beta_balanced(g, 1.5)

    def test_exact_mode_can_accept_more(self):
        # A cycle is exactly 1-balanced but edgewise infinity.
        g = cycle_digraph(4)
        assert not is_beta_balanced(g, 10.0, exact=False)
        assert is_beta_balanced(g, 1.0, exact=True)

    def test_disconnected_is_never_balanced(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.0)
        assert not is_beta_balanced(g, 100.0)

    def test_beta_below_one_raises(self):
        with pytest.raises(GraphError):
            is_beta_balanced(symmetric_pair(1.0, 1.0), 0.5)


class TestMostUnbalancedCut:
    def test_finds_the_witness(self):
        g = symmetric_pair(6.0, 2.0)
        ratio, side = most_unbalanced_cut(g)
        assert ratio == pytest.approx(3.0)
        forward = g.cut_weight(side)
        nodes = set(g.nodes())
        backward = g.cut_weight(nodes - set(side))
        assert forward / backward == pytest.approx(3.0)

    def test_requires_strong_connectivity(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.0)
        with pytest.raises(GraphError):
            most_unbalanced_cut(g)
