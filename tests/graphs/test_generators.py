"""Tests for repro.graphs.generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graphs.balance import edgewise_balance_bound, exact_balance
from repro.graphs.connectivity import is_strongly_connected
from repro.graphs.generators import (
    complete_bipartite_digraph,
    cycle_digraph,
    planted_min_cut_ugraph,
    random_balanced_digraph,
    random_connected_ugraph,
    random_eulerian_digraph,
    random_regularish_ugraph,
)
from repro.graphs.mincut import stoer_wagner


class TestRandomConnectedUGraph:
    @given(st.integers(1, 20), st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_connected(self, n, seed):
        g = random_connected_ugraph(n, rng=seed)
        assert g.num_nodes == n
        assert g.is_connected()

    def test_extra_edges_increase_density(self):
        sparse = random_connected_ugraph(20, extra_edge_prob=0.0, rng=1)
        dense = random_connected_ugraph(20, extra_edge_prob=0.9, rng=1)
        assert sparse.num_edges == 19  # exactly a tree
        assert dense.num_edges > sparse.num_edges

    def test_weight_range_respected(self):
        g = random_connected_ugraph(10, rng=2, weight_range=(2.0, 3.0))
        assert all(2.0 <= w <= 3.0 for _, _, w in g.edges())

    def test_bad_params(self):
        with pytest.raises(ParameterError):
            random_connected_ugraph(0)
        with pytest.raises(ParameterError):
            random_connected_ugraph(5, extra_edge_prob=1.5)


class TestRegularish:
    def test_degrees_near_target(self):
        g = random_regularish_ugraph(20, 6, rng=3)
        degrees = [g.degree(v) for v in g.nodes()]
        assert max(degrees) <= 6
        assert min(degrees) >= 2

    def test_connected(self):
        assert random_regularish_ugraph(15, 4, rng=4).is_connected()

    def test_bad_params(self):
        with pytest.raises(ParameterError):
            random_regularish_ugraph(2, 4)
        with pytest.raises(ParameterError):
            random_regularish_ugraph(10, 1)


class TestPlantedMinCut:
    @given(st.integers(4, 10), st.integers(1, 3), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_min_cut_is_planted_value(self, cluster, cut, seed):
        if cut > cluster - 2:
            return
        g, k = planted_min_cut_ugraph(cluster, cut, rng=seed)
        assert k == cut
        value, _ = stoer_wagner(g)
        assert value == pytest.approx(float(k))

    def test_two_clusters_of_requested_size(self):
        g, _ = planted_min_cut_ugraph(6, 2, rng=0)
        assert g.num_nodes == 12

    def test_bad_params(self):
        with pytest.raises(ParameterError):
            planted_min_cut_ugraph(2, 1)
        with pytest.raises(ParameterError):
            planted_min_cut_ugraph(5, 0)
        with pytest.raises(ParameterError):
            planted_min_cut_ugraph(5, 4)


class TestCompleteBipartite:
    def test_edge_counts_and_weights(self):
        g = complete_bipartite_digraph(["l0", "l1"], ["r0", "r1", "r2"], 2.0, 0.5)
        assert g.num_edges == 2 * 2 * 3
        assert g.weight("l0", "r1") == 2.0
        assert g.weight("r1", "l0") == 0.5

    def test_strongly_connected(self):
        g = complete_bipartite_digraph([0, 1], [2, 3], 1.0, 1.0)
        assert is_strongly_connected(g)

    def test_overlapping_parts_rejected(self):
        with pytest.raises(ParameterError):
            complete_bipartite_digraph([0, 1], [1, 2], 1.0, 1.0)


class TestBalancedDigraph:
    @given(st.integers(3, 10), st.floats(1.0, 8.0), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_certified_balance_and_connectivity(self, n, beta, seed):
        g = random_balanced_digraph(n, beta=beta, rng=seed)
        assert is_strongly_connected(g)
        assert edgewise_balance_bound(g) <= beta + 1e-6

    def test_beta_below_one_rejected(self):
        with pytest.raises(ParameterError):
            random_balanced_digraph(5, beta=0.9)


class TestEulerian:
    @given(st.integers(3, 10), st.integers(1, 4), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_in_weight_equals_out_weight(self, n, cycles, seed):
        g = random_eulerian_digraph(n, cycles=cycles, rng=seed)
        for node in g.nodes():
            assert g.in_weight(node) == pytest.approx(g.out_weight(node))

    def test_exactly_1_balanced(self):
        g = random_eulerian_digraph(6, cycles=2, rng=9)
        assert exact_balance(g) == pytest.approx(1.0)

    def test_cycle_digraph(self):
        g = cycle_digraph(4, weight=2.0)
        assert g.num_edges == 4
        assert is_strongly_connected(g)
        with pytest.raises(ParameterError):
            cycle_digraph(1)
