"""Tests for repro.graphs.strong_components."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.connectivity import is_strongly_connected
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import cycle_digraph, random_balanced_digraph
from repro.graphs.strong_components import (
    condensation,
    strongly_connected_components,
    unbalanced_witness,
)
from repro.utils.rng import ensure_rng


def random_digraph(n, seed, density=0.3):
    gen = ensure_rng(seed)
    g = DiGraph(nodes=range(n))
    for u in range(n):
        for v in range(n):
            if u != v and gen.random() < density:
                g.add_edge(u, v, 1.0)
    return g


class TestSCC:
    def test_cycle_is_one_component(self):
        comps = strongly_connected_components(cycle_digraph(5))
        assert len(comps) == 1
        assert comps[0] == set(range(5))

    def test_dag_has_singleton_components(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "c", 1.0)
        comps = strongly_connected_components(g)
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_two_cycles_joined_one_way(self):
        g = cycle_digraph(3)
        for i in range(3):
            g.add_edge(10 + i, 10 + (i + 1) % 3, 1.0)
        g.add_edge(0, 10, 1.0)  # bridge, one direction only
        comps = strongly_connected_components(g)
        assert sorted(len(c) for c in comps) == [3, 3]

    def test_isolated_nodes(self):
        g = DiGraph(nodes=["a", "b"])
        comps = strongly_connected_components(g)
        assert len(comps) == 2

    @given(st.integers(2, 12), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_components_partition_nodes(self, n, seed):
        g = random_digraph(n, seed)
        comps = strongly_connected_components(g)
        seen = [node for comp in comps for node in comp]
        assert sorted(seen) == sorted(g.nodes())

    @given(st.integers(2, 10), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_single_component_iff_strongly_connected(self, n, seed):
        g = random_digraph(n, seed)
        comps = strongly_connected_components(g)
        assert (len(comps) == 1) == is_strongly_connected(g)

    def test_deep_chain_no_recursion_error(self):
        g = DiGraph()
        for i in range(3000):
            g.add_edge(i, i + 1, 1.0)
        comps = strongly_connected_components(g)
        assert len(comps) == 3001


class TestCondensation:
    def test_condensation_is_acyclic(self):
        g = random_digraph(10, seed=1, density=0.4)
        dag = condensation(g)
        assert len(strongly_connected_components(dag)) == dag.num_nodes

    def test_weights_aggregate(self):
        g = cycle_digraph(2)  # a <-> b via weights 1
        g.add_edge(0, "t", 2.0)
        g.add_edge(1, "t", 3.0)
        dag = condensation(g)
        src = frozenset({0, 1})
        dst = frozenset({"t"})
        assert dag.weight(src, dst) == pytest.approx(5.0)

    @given(st.integers(2, 10), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_reverse_topological_emission_order(self, n, seed):
        g = random_digraph(n, seed)
        comps = strongly_connected_components(g)
        position = {frozenset(c): i for i, c in enumerate(comps)}
        dag = condensation(g)
        for cu, cv, _ in dag.edges():
            # Successors (cv) are emitted before predecessors (cu).
            assert position[cv] < position[cu]


class TestUnbalancedWitness:
    def test_strongly_connected_has_no_witness(self):
        g = random_balanced_digraph(8, beta=3.0, rng=2)
        assert unbalanced_witness(g) is None

    def test_witness_has_zero_backward_weight(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "a", 1.0)
        g.add_edge("a", "c", 5.0)  # nothing returns from c
        g.add_edge("c", "d", 1.0)
        g.add_edge("d", "c", 1.0)
        witness = unbalanced_witness(g)
        assert witness is not None
        nodes = set(g.nodes())
        assert g.cut_weight(nodes - set(witness)) == 0.0

    @given(st.integers(3, 10), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_witness_exists_iff_not_strongly_connected(self, n, seed):
        g = random_digraph(n, seed, density=0.25)
        witness = unbalanced_witness(g)
        if is_strongly_connected(g):
            assert witness is None
        else:
            assert witness is not None
            nodes = set(g.nodes())
            assert g.cut_weight(nodes - set(witness)) == 0.0

    def test_trivial_graph(self):
        assert unbalanced_witness(DiGraph(nodes=["a"])) is None
