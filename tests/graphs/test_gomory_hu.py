"""Tests for repro.graphs.gomory_hu."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.generators import random_connected_ugraph
from repro.graphs.gomory_hu import gomory_hu_tree
from repro.graphs.maxflow import max_flow_undirected
from repro.graphs.mincut import stoer_wagner
from repro.graphs.ugraph import UGraph


class TestGomoryHuTree:
    def test_path_graph(self):
        g = UGraph(edges=[("a", "b", 5.0), ("b", "c", 2.0)])
        tree = gomory_hu_tree(g)
        assert tree.min_cut_value("a", "b") == 5.0
        assert tree.min_cut_value("a", "c") == 2.0
        assert tree.min_cut_value("b", "c") == 2.0

    def test_tree_has_n_minus_1_edges(self):
        g = random_connected_ugraph(8, extra_edge_prob=0.4, rng=1)
        tree = gomory_hu_tree(g)
        assert len(tree.tree_edges()) == g.num_nodes - 1

    @given(st.integers(3, 8), st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_all_pairs_match_flows(self, n, seed):
        g = random_connected_ugraph(
            n, extra_edge_prob=0.4, rng=seed, weight_range=(0.5, 4.0)
        )
        tree = gomory_hu_tree(g)
        nodes = g.nodes()
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                expected = max_flow_undirected(g, nodes[i], nodes[j]).value
                assert tree.min_cut_value(nodes[i], nodes[j]) == pytest.approx(expected)

    @given(st.integers(3, 8), st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_global_min_is_lightest_tree_edge(self, n, seed):
        g = random_connected_ugraph(n, extra_edge_prob=0.5, rng=seed)
        tree = gomory_hu_tree(g)
        assert tree.global_min_cut_value() == pytest.approx(stoer_wagner(g)[0])

    def test_same_node_raises(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        tree = gomory_hu_tree(g)
        with pytest.raises(GraphError):
            tree.min_cut_value("a", "a")

    def test_unknown_node_raises(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        tree = gomory_hu_tree(g)
        with pytest.raises(GraphError):
            tree.min_cut_value("a", "zzz")

    def test_too_small_raises(self):
        with pytest.raises(GraphError):
            gomory_hu_tree(UGraph(nodes=["a"]))
