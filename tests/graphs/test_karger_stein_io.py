"""Tests for repro.graphs.karger_stein and repro.graphs.io."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    planted_min_cut_ugraph,
    random_balanced_digraph,
    random_connected_ugraph,
)
from repro.graphs.io import (
    dump_edges,
    load_digraph,
    load_ugraph,
    read_ugraph,
    write_graph,
)
from repro.graphs.karger_stein import karger_stein_min_cut
from repro.graphs.mincut import stoer_wagner
from repro.graphs.ugraph import UGraph


class TestKargerStein:
    @given(st.integers(4, 10), st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_matches_stoer_wagner(self, n, seed):
        g = random_connected_ugraph(
            n, extra_edge_prob=0.5, rng=seed, weight_range=(0.5, 3.0)
        )
        ks_value, ks_side = karger_stein_min_cut(g, rng=seed)
        sw_value, _ = stoer_wagner(g)
        assert ks_value == pytest.approx(sw_value)
        assert g.cut_weight(ks_side) == pytest.approx(sw_value)

    def test_planted_cut(self):
        g, k = planted_min_cut_ugraph(9, 2, rng=1)
        value, _ = karger_stein_min_cut(g, rng=1)
        assert value == pytest.approx(float(k))

    def test_disconnected_returns_zero(self):
        g = UGraph(edges=[("a", "b", 1.0), ("c", "d", 1.0)])
        value, _ = karger_stein_min_cut(g, rng=2)
        assert value == 0.0

    def test_two_nodes(self):
        g = UGraph(edges=[("a", "b", 2.5)])
        value, side = karger_stein_min_cut(g, rng=3)
        assert value == 2.5

    def test_too_small_raises(self):
        with pytest.raises(GraphError):
            karger_stein_min_cut(UGraph(nodes=["a"]))

    def test_explicit_repetitions(self):
        g = random_connected_ugraph(7, rng=4)
        value, _ = karger_stein_min_cut(g, repetitions=3, rng=4)
        assert value >= stoer_wagner(g)[0] - 1e-9


class TestGraphIO:
    def test_ugraph_roundtrip(self):
        g = random_connected_ugraph(8, extra_edge_prob=0.4, rng=5)
        restored = load_ugraph(dump_edges(g))
        assert set(restored.nodes()) == set(g.nodes())
        assert restored.num_edges == g.num_edges
        for u, v, w in g.edges():
            assert restored.weight(u, v) == pytest.approx(w)

    def test_digraph_roundtrip_preserves_direction(self):
        g = random_balanced_digraph(6, beta=3.0, rng=6)
        restored = load_digraph(dump_edges(g))
        for u, v, w in g.edges():
            assert restored.weight(u, v) == pytest.approx(w)
        assert restored.num_edges == g.num_edges

    def test_isolated_nodes_survive(self):
        g = UGraph(nodes=["lonely", "a", "b"])
        g.add_edge("a", "b", 1.0)
        restored = load_ugraph(dump_edges(g))
        assert restored.has_node("lonely")

    def test_stream_roundtrip(self):
        g = random_connected_ugraph(5, rng=7)
        buffer = io.StringIO()
        write_graph(g, buffer)
        buffer.seek(0)
        restored = read_ugraph(buffer)
        assert restored.num_edges == g.num_edges

    def test_kind_mismatch_rejected(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.0)
        with pytest.raises(GraphError):
            load_ugraph(dump_edges(g))
        u = UGraph(edges=[("a", "b", 1.0)])
        with pytest.raises(GraphError):
            load_digraph(dump_edges(u))

    def test_integer_labels_parse_back_as_ints(self):
        g = UGraph(edges=[(0, 1, 2.0)])
        restored = load_ugraph(dump_edges(g))
        assert restored.has_edge(0, 1)

    def test_malformed_lines_rejected(self):
        with pytest.raises(GraphError):
            load_ugraph("a b\n")
        with pytest.raises(GraphError):
            load_ugraph("a b notaweight\n")

    def test_whitespace_label_rejected(self):
        g = UGraph(edges=[("bad label", "b", 1.0)])
        with pytest.raises(GraphError):
            dump_edges(g)

    def test_comments_and_blanks_ignored(self):
        text = "# a comment\n\n0 1 1.0\n"
        restored = load_ugraph(text)
        assert restored.has_edge(0, 1)
