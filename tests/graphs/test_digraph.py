"""Tests for repro.graphs.digraph."""

import pytest

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph


@pytest.fixture
def triangle():
    """Directed triangle a->b->c->a with distinct weights."""
    g = DiGraph()
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", 2.0)
    g.add_edge("c", "a", 3.0)
    return g


class TestConstruction:
    def test_empty(self):
        g = DiGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_add_node_idempotent(self):
        g = DiGraph()
        g.add_node("x")
        g.add_node("x")
        assert g.num_nodes == 1

    def test_edges_add_endpoints(self, triangle):
        assert triangle.num_nodes == 3
        assert triangle.num_edges == 3

    def test_constructor_with_edges(self):
        g = DiGraph(nodes=["z"], edges=[("a", "b", 1.0)])
        assert g.has_node("z")
        assert g.has_edge("a", "b")

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            DiGraph().add_edge("a", "a", 1.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            DiGraph().add_edge("a", "b", -1.0)

    def test_duplicate_edge_modes(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.0)
        with pytest.raises(GraphError):
            g.add_edge("a", "b", 1.0)
        g.add_edge("a", "b", 2.0, combine="add")
        assert g.weight("a", "b") == 3.0
        g.add_edge("a", "b", 5.0, combine="set")
        assert g.weight("a", "b") == 5.0
        assert g.num_edges == 1

    def test_unknown_combine_mode(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.0)
        with pytest.raises(GraphError):
            g.add_edge("a", "b", 1.0, combine="bogus")

    def test_zero_weight_edge_counts_as_edge(self):
        g = DiGraph()
        g.add_edge("a", "b", 0.0)
        assert g.has_edge("a", "b")
        assert g.num_edges == 1


class TestRemoval:
    def test_remove_edge(self, triangle):
        triangle.remove_edge("a", "b")
        assert not triangle.has_edge("a", "b")
        assert triangle.num_edges == 2

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_edge("b", "a")

    def test_remove_node_removes_incident_edges(self, triangle):
        triangle.remove_node("b")
        assert triangle.num_nodes == 2
        assert triangle.num_edges == 1  # only c->a survives
        assert triangle.has_edge("c", "a")

    def test_remove_missing_node_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_node("zzz")


class TestInspection:
    def test_directed_asymmetry(self, triangle):
        assert triangle.has_edge("a", "b")
        assert not triangle.has_edge("b", "a")
        assert triangle.weight("b", "a") == 0.0

    def test_weight_unknown_node_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.weight("zzz", "a")

    def test_degrees_and_weights(self, triangle):
        assert triangle.out_degree("a") == 1
        assert triangle.in_degree("a") == 1
        assert triangle.out_weight("a") == 1.0
        assert triangle.in_weight("a") == 3.0

    def test_successors_predecessors_are_copies(self, triangle):
        succ = triangle.successors("a")
        succ["b"] = 99.0
        assert triangle.weight("a", "b") == 1.0
        pred = triangle.predecessors("a")
        pred["c"] = 99.0
        assert triangle.weight("c", "a") == 3.0

    def test_total_weight(self, triangle):
        assert triangle.total_weight() == 6.0

    def test_contains(self, triangle):
        assert "a" in triangle
        assert "q" not in triangle

    def test_repr(self, triangle):
        assert "n=3" in repr(triangle)


class TestCuts:
    def test_cut_weight_directed(self, triangle):
        assert triangle.cut_weight({"a"}) == 1.0
        assert triangle.cut_weight({"b", "c"}) == 3.0

    def test_trivial_cut_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.cut_weight(set())
        with pytest.raises(GraphError):
            triangle.cut_weight({"a", "b", "c"})

    def test_cut_with_unknown_node_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.cut_weight({"a", "zzz"})

    def test_directed_weight_between(self, triangle):
        assert triangle.directed_weight_between({"a"}, {"b"}) == 1.0
        assert triangle.directed_weight_between({"b"}, {"a"}) == 0.0
        assert triangle.directed_weight_between({"a", "b"}, {"c"}) == 2.0

    def test_edges_between(self, triangle):
        found = triangle.edges_between({"a", "b"}, {"c"})
        assert found == [("b", "c", 2.0)]


class TestDerivedGraphs:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge("a", "b")
        assert triangle.has_edge("a", "b")

    def test_reverse(self, triangle):
        rev = triangle.reverse()
        assert rev.has_edge("b", "a")
        assert rev.weight("b", "a") == 1.0
        assert not rev.has_edge("a", "b")

    def test_subgraph(self, triangle):
        sub = triangle.subgraph({"a", "b"})
        assert sub.num_nodes == 2
        assert sub.has_edge("a", "b")
        assert sub.num_edges == 1

    def test_scale_weights(self, triangle):
        scaled = triangle.scale_weights(2.0)
        assert scaled.weight("b", "c") == 4.0
        with pytest.raises(GraphError):
            triangle.scale_weights(-1.0)
