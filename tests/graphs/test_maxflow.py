"""Tests for repro.graphs.maxflow (Dinic) against first principles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.cuts import enumerate_cut_sides
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import random_connected_ugraph
from repro.graphs.maxflow import max_flow, max_flow_undirected, min_st_cut
from repro.graphs.ugraph import UGraph


def brute_force_st_cut(graph: DiGraph, s, t) -> float:
    """Min over all cuts separating s from t, by enumeration."""
    best = float("inf")
    for side in enumerate_cut_sides(graph.nodes()):
        if s in side and t not in side:
            best = min(best, graph.cut_weight(side))
    return best


class TestMaxFlowBasics:
    def test_single_path(self):
        g = DiGraph()
        g.add_edge("s", "a", 3.0)
        g.add_edge("a", "t", 2.0)
        assert max_flow(g, "s", "t").value == 2.0

    def test_parallel_paths(self):
        g = DiGraph()
        g.add_edge("s", "a", 1.0)
        g.add_edge("a", "t", 1.0)
        g.add_edge("s", "b", 2.0)
        g.add_edge("b", "t", 2.0)
        assert max_flow(g, "s", "t").value == 3.0

    def test_no_path_zero_flow(self):
        g = DiGraph(nodes=["s", "t"])
        g.add_edge("t", "s", 5.0)  # wrong direction only
        assert max_flow(g, "s", "t").value == 0.0

    def test_classic_diamond(self):
        g = DiGraph()
        for u, v, w in (
            ("s", "a", 10.0), ("s", "b", 10.0), ("a", "b", 1.0),
            ("a", "t", 8.0), ("b", "t", 10.0),
        ):
            g.add_edge(u, v, w)
        # t's in-capacity is 18 and it is achievable (s->a->t 8, s->b->t 10).
        assert max_flow(g, "s", "t").value == 18.0

    def test_source_equals_sink_raises(self):
        g = DiGraph()
        g.add_edge("s", "t", 1.0)
        with pytest.raises(GraphError):
            max_flow(g, "s", "s")

    def test_unknown_endpoints_raise(self):
        g = DiGraph()
        g.add_edge("s", "t", 1.0)
        with pytest.raises(GraphError):
            max_flow(g, "s", "zzz")


class TestMinCutCertificate:
    def test_source_side_is_min_cut(self):
        g = DiGraph()
        g.add_edge("s", "a", 5.0)
        g.add_edge("a", "t", 1.0)
        result = max_flow(g, "s", "t")
        assert result.source_side == frozenset({"s", "a"})
        assert g.cut_weight(result.source_side) == result.value

    def test_min_st_cut_wrapper(self):
        g = DiGraph()
        g.add_edge("s", "t", 4.0)
        value, side = min_st_cut(g, "s", "t")
        assert value == 4.0
        assert "s" in side and "t" not in side

    @given(st.integers(3, 7), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_duality_on_random_digraphs(self, n, seed):
        """Max-flow value equals brute-force min s-t cut (LP duality)."""
        import numpy as np

        gen = np.random.default_rng(seed)
        g = DiGraph(nodes=range(n))
        for u in range(n):
            for v in range(n):
                if u != v and gen.random() < 0.5:
                    g.add_edge(u, v, float(gen.integers(1, 10)))
        s, t = 0, n - 1
        result = max_flow(g, s, t)
        assert result.value == pytest.approx(brute_force_st_cut(g, s, t))
        # The certificate side achieves the optimum.
        if 0 < len(result.source_side) < n:
            assert g.cut_weight(result.source_side) == pytest.approx(result.value)

    @given(st.integers(3, 7), st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_flow_conservation(self, n, seed):
        import numpy as np

        gen = np.random.default_rng(seed)
        g = DiGraph(nodes=range(n))
        for u in range(n):
            for v in range(n):
                if u != v and gen.random() < 0.4:
                    g.add_edge(u, v, float(gen.integers(1, 5)))
        result = max_flow(g, 0, n - 1)
        for node in range(1, n - 1):
            inflow = sum(
                result.edge_flows.get((u, node), 0.0) for u in range(n) if u != node
            )
            outflow = sum(
                result.edge_flows.get((node, v), 0.0) for v in range(n) if v != node
            )
            assert inflow == pytest.approx(outflow, abs=1e-9)

    def test_capacity_respected(self):
        g = DiGraph()
        g.add_edge("s", "a", 2.0)
        g.add_edge("a", "t", 9.0)
        result = max_flow(g, "s", "t")
        for (u, v), f in result.edge_flows.items():
            assert 0.0 <= f <= g.weight(u, v) + 1e-9


class TestUndirectedFlow:
    def test_undirected_path(self):
        g = UGraph(edges=[("s", "a", 2.0), ("a", "t", 3.0)])
        assert max_flow_undirected(g, "s", "t").value == 2.0

    def test_matches_undirected_min_cut(self):
        g = random_connected_ugraph(7, extra_edge_prob=0.4, rng=3)
        nodes = g.nodes()
        s, t = nodes[0], nodes[-1]
        flow = max_flow_undirected(g, s, t).value
        best = float("inf")
        for side in enumerate_cut_sides(nodes):
            if s in side and t not in side:
                best = min(best, g.cut_weight(side))
        assert flow == pytest.approx(best)
