"""Tests for repro.graphs.cut_counting (Karger's n^{2 alpha} bound)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.cut_counting import cut_profile, near_minimum_counts
from repro.graphs.generators import (
    cycle_digraph,
    planted_min_cut_ugraph,
    random_connected_ugraph,
)
from repro.graphs.mincut import stoer_wagner
from repro.graphs.ugraph import UGraph


def cycle_ugraph(n):
    g = UGraph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n, 1.0)
    return g


class TestCutProfile:
    def test_min_matches_stoer_wagner(self):
        g = random_connected_ugraph(8, extra_edge_prob=0.5, rng=0)
        profile = cut_profile(g)
        assert profile.min_value == pytest.approx(stoer_wagner(g)[0])

    def test_cycle_min_cuts_counted_exactly(self):
        """An n-cycle has exactly C(n, 2) minimum cuts (pick 2 edges)."""
        n = 7
        profile = cut_profile(cycle_ugraph(n))
        assert profile.min_value == 2.0
        assert profile.count_within_factor(1.0) == n * (n - 1) // 2

    def test_counts_monotone_in_alpha(self):
        g = random_connected_ugraph(8, extra_edge_prob=0.4, rng=1)
        profile = cut_profile(g)
        counts = [profile.count_within_factor(a) for a in (1.0, 1.5, 2.0, 3.0)]
        assert counts == sorted(counts)

    def test_total_cut_count(self):
        g = random_connected_ugraph(6, rng=2)
        profile = cut_profile(g)
        assert len(profile.cuts) == 2 ** (6 - 1) - 1

    def test_validation(self):
        with pytest.raises(GraphError):
            cut_profile(UGraph(nodes=["a"]))
        disconnected = UGraph(edges=[("a", "b", 1.0)])
        disconnected.add_node("c")
        with pytest.raises(GraphError):
            cut_profile(disconnected)
        g = cycle_ugraph(4)
        with pytest.raises(GraphError):
            cut_profile(g).count_within_factor(0.5)


class TestKargerBound:
    @given(st.integers(4, 9), st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_bound_holds_on_random_graphs(self, n, seed):
        """The paper's §1 fact: near-minimum cuts are poly(n)-many."""
        g = random_connected_ugraph(n, extra_edge_prob=0.5, rng=seed)
        profile = cut_profile(g)
        for alpha in (1.0, 1.5, 2.0):
            assert profile.respects_karger_bound(alpha)

    def test_bound_holds_on_planted_instances(self):
        g, _ = planted_min_cut_ugraph(6, 2, rng=3)
        profile = cut_profile(g)
        for alpha in (1.0, 2.0, 3.0):
            assert profile.respects_karger_bound(alpha)

    def test_cycle_is_near_the_tight_case(self):
        """Cycles maximize min-cut counts: C(n,2) vs bound n^2."""
        profile = cut_profile(cycle_ugraph(8))
        count = profile.count_within_factor(1.0)
        assert count == 28
        assert count <= profile.karger_bound(1.0)
        assert profile.karger_bound(1.0) == pytest.approx(64.0)

    def test_near_minimum_counts_helper(self):
        g = cycle_ugraph(6)
        table = near_minimum_counts(g, [1.0, 2.0])
        assert table[1.0][0] == 15
        assert table[1.0][1] == pytest.approx(36.0)
        assert table[2.0][0] >= table[1.0][0]
