"""Property-based equivalence of the CSR kernel layer vs the dict path.

The CSR snapshot (:mod:`repro.graphs.csr`) is a performance layer: every
kernel must agree with the reference dict-of-dicts implementation on the
same graph.  These tests draw random weighted digraphs (including
zero-weight edges and non-contiguous, mixed hashable labels) and check

* ``cut_weights`` / ``cut_weights_both`` vs ``DiGraph.cut_weight``;
* ``weights_between`` vs ``DiGraph.directed_weight_between``;
* CSR integer-indexed Dinic vs the dict-path Dinic (value equality and
  min-cut duality);
* degree/weight vectors vs per-node dict sums;
* the UGraph freeze path;
* freeze/total_weight cache invalidation across mutations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, batched_cut_weights
from repro.graphs.cuts import all_directed_cut_values, enumerate_cut_sides
from repro.graphs.digraph import DiGraph
from repro.graphs.maxflow import DinicMaxFlow, max_flow
from repro.graphs.ugraph import UGraph

# Non-contiguous mixed hashable labels: ints with gaps, strings, tuples.
LABEL_POOL = [0, 7, 3, "a", "zz", (1, 2), ("x",), 100, -4, "node-9", 42, (0, 0)]


def _label_strategy(min_nodes=2, max_nodes=8):
    return st.lists(
        st.sampled_from(LABEL_POOL),
        min_size=min_nodes,
        max_size=max_nodes,
        unique=True,
    )


@st.composite
def random_digraphs(draw, min_nodes=2, max_nodes=8):
    """A DiGraph with random weighted edges, some of weight zero."""
    labels = draw(_label_strategy(min_nodes, max_nodes))
    n = len(labels)
    g = DiGraph(nodes=labels)
    max_edges = n * (n - 1)
    num_edges = draw(st.integers(0, min(max_edges, 20)))
    pairs = [(u, v) for u in labels for v in labels if u != v]
    for idx in draw(
        st.lists(st.integers(0, len(pairs) - 1), min_size=num_edges,
                 max_size=num_edges, unique=True)
    ):
        u, v = pairs[idx]
        weight = draw(
            st.one_of(
                st.just(0.0),
                st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
            )
        )
        g.add_edge(u, v, weight)
    return g


@st.composite
def random_ugraphs(draw, min_nodes=2, max_nodes=8):
    labels = draw(_label_strategy(min_nodes, max_nodes))
    g = UGraph(nodes=labels)
    pairs = [
        (u, v) for i, u in enumerate(labels) for v in labels[i + 1:]
    ]
    num_edges = draw(st.integers(0, min(len(pairs), 15)))
    for idx in draw(
        st.lists(st.integers(0, len(pairs) - 1), min_size=num_edges,
                 max_size=num_edges, unique=True)
    ):
        u, v = pairs[idx]
        weight = draw(st.floats(0.0, 10.0, allow_nan=False))
        g.add_edge(u, v, weight)
    return g


def _some_sides(graph):
    """A deterministic sample of proper cut sides of ``graph``."""
    nodes = graph.nodes()
    sides = [frozenset(side) for side in enumerate_cut_sides(nodes)]
    return sides[:64]


class TestDirectedKernels:
    @given(random_digraphs())
    @settings(max_examples=50, deadline=None)
    def test_cut_weights_matches_dict(self, g):
        sides = _some_sides(g)
        csr = g.freeze()
        member = csr.membership_matrix(sides)
        batched = csr.cut_weights(member)
        for side, value in zip(sides, batched):
            assert float(value) == pytest.approx(g.cut_weight(side))

    @given(random_digraphs())
    @settings(max_examples=50, deadline=None)
    def test_cut_weights_both_matches_dict(self, g):
        sides = _some_sides(g)
        csr = g.freeze()
        member = csr.membership_matrix(sides)
        forward, backward = csr.cut_weights_both(member)
        node_set = set(g.nodes())
        for side, fwd, bwd in zip(sides, forward, backward):
            assert float(fwd) == pytest.approx(g.cut_weight(side))
            assert float(bwd) == pytest.approx(
                g.cut_weight(frozenset(node_set - set(side)))
            )

    @given(random_digraphs())
    @settings(max_examples=50, deadline=None)
    def test_weights_between_matches_dict(self, g):
        sides = _some_sides(g)
        csr = g.freeze()
        node_set = set(g.nodes())
        src = csr.membership_matrix(sides)
        dst = csr.membership_matrix(
            [frozenset(node_set - set(side)) for side in sides]
        )
        batched = csr.weights_between(src, dst)
        for side, value in zip(sides, batched):
            other = node_set - set(side)
            assert float(value) == pytest.approx(
                g.directed_weight_between(side, other)
            )

    @given(random_digraphs())
    @settings(max_examples=50, deadline=None)
    def test_single_cut_weight_matches(self, g):
        csr = g.freeze()
        for side in _some_sides(g)[:8]:
            assert csr.cut_weight(side) == pytest.approx(g.cut_weight(side))

    @given(random_digraphs(min_nodes=3))
    @settings(max_examples=50, deadline=None)
    def test_degree_and_weight_vectors(self, g):
        csr = g.freeze()
        out_w = csr.out_weight_vector()
        in_w = csr.in_weight_vector()
        out_d = csr.out_degree_vector()
        in_d = csr.in_degree_vector()
        for i, node in enumerate(csr.labels):
            succ = dict(g.iter_successors(node))
            pred = dict(g.iter_predecessors(node))
            assert float(out_w[i]) == pytest.approx(sum(succ.values()))
            assert float(in_w[i]) == pytest.approx(sum(pred.values()))
            assert int(out_d[i]) == len(succ)
            assert int(in_d[i]) == len(pred)

    @given(random_digraphs())
    @settings(max_examples=30, deadline=None)
    def test_enumeration_engines_agree(self, g):
        dict_vals = list(all_directed_cut_values(g, engine="dict"))
        csr_vals = list(all_directed_cut_values(g, engine="csr"))
        assert len(dict_vals) == len(csr_vals)
        for (s1, v1), (s2, v2) in zip(dict_vals, csr_vals):
            assert s1 == s2
            assert v1 == pytest.approx(v2)

    @given(random_digraphs())
    @settings(max_examples=30, deadline=None)
    def test_batched_helper(self, g):
        sides = _some_sides(g)
        values = batched_cut_weights(g, sides)
        for side, value in zip(sides, values):
            assert float(value) == pytest.approx(g.cut_weight(side))


class TestMaxFlowEquivalence:
    @given(random_digraphs(min_nodes=2, max_nodes=7), st.data())
    @settings(max_examples=50, deadline=None)
    def test_csr_flow_matches_dict_dinic(self, g, data):
        labels = g.nodes()
        source = data.draw(st.sampled_from(labels))
        sink = data.draw(
            st.sampled_from([v for v in labels if v != source])
        )
        csr_result = max_flow(g, source, sink, engine="csr")
        dict_result = max_flow(g, source, sink, engine="dict")
        assert csr_result.value == pytest.approx(dict_result.value)
        # Min-cut duality: the reported source side is a cut whose dict
        # weight equals the flow value (or the trivial full-vertex set
        # when the sink is unreachable).
        side = csr_result.source_side
        if sink not in side and len(side) < g.num_nodes:
            assert g.cut_weight(side) == pytest.approx(csr_result.value)

    @given(random_digraphs(min_nodes=2, max_nodes=7), st.data())
    @settings(max_examples=30, deadline=None)
    def test_flow_conservation(self, g, data):
        labels = g.nodes()
        source = data.draw(st.sampled_from(labels))
        sink = data.draw(st.sampled_from([v for v in labels if v != source]))
        result = max_flow(g, source, sink, engine="csr")
        net = {v: 0.0 for v in labels}
        for (u, v), f in result.edge_flows.items():
            assert -1e-9 <= f <= g.weight(u, v) + 1e-9
            net[u] += f
            net[v] -= f
        for v in labels:
            if v in (source, sink):
                continue
            assert net[v] == pytest.approx(0.0, abs=1e-9)
        assert net[source] == pytest.approx(result.value, abs=1e-9)


class TestUndirectedKernels:
    @given(random_ugraphs())
    @settings(max_examples=50, deadline=None)
    def test_cut_weights_matches_dict(self, g):
        sides = _some_sides(g)
        csr = g.freeze()
        member = csr.membership_matrix(sides)
        batched = csr.cut_weights(member)
        for side, value in zip(sides, batched):
            assert float(value) == pytest.approx(g.cut_weight(side))

    @given(random_ugraphs())
    @settings(max_examples=30, deadline=None)
    def test_total_weight_cached(self, g):
        assert g.total_weight() == pytest.approx(g.total_weight())


class TestCacheInvalidation:
    def test_freeze_reused_until_mutation(self):
        g = DiGraph(edges=[("a", "b", 1.0), ("b", "c", 2.0)])
        first = g.freeze()
        assert g.freeze() is first
        g.add_edge("c", "a", 3.0)
        second = g.freeze()
        assert second is not first
        assert second.cut_weight({"c"}) == pytest.approx(3.0)

    def test_total_weight_invalidated_by_mutation(self):
        g = DiGraph(edges=[("a", "b", 1.0)])
        assert g.total_weight() == pytest.approx(1.0)
        g.add_edge("b", "a", 2.0)
        assert g.total_weight() == pytest.approx(3.0)
        g.remove_edge("a", "b")
        assert g.total_weight() == pytest.approx(2.0)

    def test_remove_node_invalidates(self):
        g = DiGraph(edges=[("a", "b", 1.0), ("b", "c", 2.0)])
        g.freeze()
        g.remove_node("b")
        csr = g.freeze()
        assert csr.num_nodes == 2
        assert csr.num_edges == 0

    def test_ugraph_freeze_invalidation(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        first = g.freeze()
        g.add_edge("b", "c", 5.0)
        second = g.freeze()
        assert second is not first
        assert second.total_weight() == pytest.approx(12.0)  # both directions

    def test_add_existing_node_keeps_cache(self):
        g = DiGraph(edges=[("a", "b", 1.0)])
        first = g.freeze()
        g.add_node("a")
        assert g.freeze() is first


class TestValidation:
    def test_unknown_label_rejected(self):
        g = DiGraph(edges=[("a", "b", 1.0)])
        csr = g.freeze()
        with pytest.raises(GraphError):
            csr.membership_matrix([{"zz"}])

    def test_improper_side_rejected(self):
        g = DiGraph(edges=[("a", "b", 1.0)])
        csr = g.freeze()
        with pytest.raises(GraphError):
            csr.check_proper(csr.membership_matrix([{"a", "b"}]))
        with pytest.raises(GraphError):
            csr.check_proper(csr.membership_matrix([set()]))

    def test_empty_batch(self):
        g = DiGraph(edges=[("a", "b", 1.0)])
        csr = g.freeze()
        member = np.zeros((0, csr.num_nodes), dtype=bool)
        assert csr.cut_weights(member).shape == (0,)
