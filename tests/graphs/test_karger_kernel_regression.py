"""Pinned Karger–Stein outputs per seed, identical across backends.

These values were computed once from the array-based contraction engine
(single recursion tree, so the outcome is maximally seed-sensitive) and
must never drift: the RNG contract is that ``_contract`` always draws
exactly ``size - target`` uniforms up front, so python and native
backends consume the same stream and any refactor that changes draw
order or count fails here.
"""

import pytest

from repro.graphs.generators import random_connected_ugraph
from repro.graphs.karger_stein import karger_stein_min_cut
from repro.graphs.mincut import stoer_wagner
from repro.kernels import registry, using_backend


@pytest.fixture(autouse=True)
def _clean_kernel_state(monkeypatch):
    monkeypatch.delenv("REPRO_KERNELS", raising=False)
    monkeypatch.delenv("REPRO_KERNELS_NATIVE", raising=False)
    registry._reset_for_tests()
    yield
    registry._reset_for_tests()


def _graph(gseed):
    return random_connected_ugraph(
        20, extra_edge_prob=0.55, rng=gseed, weight_range=(1.0, 10.0)
    )


# (graph seed, karger seed, pinned cut value, pinned sorted side)
PINNED = [
    (5, 0, 46.33437243337512,
     (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)),
    (5, 1, 46.33437243337512,
     (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)),
    (5, 2, 46.33437243337512,
     (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)),
    (5, 3, 46.33437243337512,
     (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)),
    (9, 0, 44.20136947511316,
     (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 18, 19)),
    (9, 1, 44.20136947511316,
     (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 18, 19)),
    # Seed 2 lands on a different (worse) cut: proof the pin is
    # genuinely seed-sensitive, not just re-finding the optimum.
    (9, 2, 52.53525611769895,
     (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 14, 15, 16, 17, 18, 19)),
    (9, 3, 44.20136947511316,
     (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 18, 19)),
]


@pytest.mark.parametrize("gseed,seed,value,side", PINNED)
def test_pinned_cut_python_backend(gseed, seed, value, side):
    g = _graph(gseed)
    with using_backend("python"):
        got_value, got_side = karger_stein_min_cut(
            g, repetitions=1, rng=seed
        )
    assert got_value == value
    assert tuple(sorted(got_side)) == side


@pytest.mark.parametrize("gseed,seed,value,side", PINNED)
def test_pinned_cut_native_backend(gseed, seed, value, side):
    try:
        from repro.kernels import native

        native.load_native()
    except registry.KernelUnavailableError as exc:
        pytest.skip(f"no native kernel toolchain: {exc}")
    g = _graph(gseed)
    with using_backend("native"):
        got_value, got_side = karger_stein_min_cut(
            g, repetitions=1, rng=seed
        )
    assert got_value == value
    assert tuple(sorted(got_side)) == side


def test_full_repetitions_find_true_min_cut():
    """With default repetitions the pinned graphs reach the Stoer–Wagner
    optimum — the single-tree pins above are deliberately weaker."""
    for gseed in (5, 9):
        g = _graph(gseed)
        sw_value, _ = stoer_wagner(g)
        ks_value, ks_side = karger_stein_min_cut(g, rng=0)
        assert ks_value == pytest.approx(sw_value)
        assert 0 < len(ks_side) < 20
