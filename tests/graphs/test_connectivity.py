"""Tests for repro.graphs.connectivity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.connectivity import (
    certify_pairwise_connectivity,
    edge_connectivity,
    edge_disjoint_path_count,
    is_gamma_connected,
    is_strongly_connected,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    cycle_digraph,
    random_connected_ugraph,
    random_regularish_ugraph,
)
from repro.graphs.mincut import stoer_wagner
from repro.graphs.ugraph import UGraph


class TestStrongConnectivity:
    def test_cycle_is_strong(self):
        assert is_strongly_connected(cycle_digraph(5))

    def test_one_way_path_is_not(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.0)
        assert not is_strongly_connected(g)

    def test_two_way_pair(self):
        g = DiGraph()
        g.add_edge("a", "b", 1.0)
        g.add_edge("b", "a", 1.0)
        assert is_strongly_connected(g)

    def test_trivial_graphs(self):
        assert is_strongly_connected(DiGraph())
        assert is_strongly_connected(DiGraph(nodes=["a"]))

    def test_disconnected_node(self):
        g = cycle_digraph(3)
        g.add_node("lonely")
        assert not is_strongly_connected(g)


class TestEdgeDisjointPaths:
    def test_parallel_structure(self):
        # Two internally disjoint paths s-a-t and s-b-t.
        g = UGraph(edges=[("s", "a", 1.0), ("a", "t", 1.0),
                          ("s", "b", 1.0), ("b", "t", 1.0)])
        assert edge_disjoint_path_count(g, "s", "t") == 2

    def test_bridge_limits_paths(self):
        g = UGraph(edges=[("s", "m", 1.0), ("m", "t", 1.0),
                          ("s", "m2", 1.0), ("m2", "m", 1.0)])
        assert edge_disjoint_path_count(g, "s", "t") == 1

    def test_weights_are_ignored(self):
        """Menger counts edges, not weight — Section 5 is unweighted."""
        g = UGraph(edges=[("s", "t", 100.0)])
        assert edge_disjoint_path_count(g, "s", "t") == 1

    def test_same_endpoints_raise(self):
        g = UGraph(edges=[("s", "t", 1.0)])
        with pytest.raises(GraphError):
            edge_disjoint_path_count(g, "s", "s")

    def test_disconnected_pair(self):
        g = UGraph(nodes=["s", "t"])
        assert edge_disjoint_path_count(g, "s", "t") == 0


class TestEdgeConnectivity:
    def test_cycle(self):
        g = UGraph()
        for i in range(5):
            g.add_edge(i, (i + 1) % 5, 1.0)
        assert edge_connectivity(g) == 2

    def test_tree_is_1_connected(self):
        g = UGraph(edges=[("a", "b", 1.0), ("b", "c", 1.0)])
        assert edge_connectivity(g) == 1

    @given(st.integers(4, 8), st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_matches_unweighted_min_cut(self, n, seed):
        g = random_regularish_ugraph(n, 4, rng=seed)
        # All weights are 1, so edge connectivity == weighted min cut.
        assert edge_connectivity(g) == pytest.approx(stoer_wagner(g)[0])

    def test_gamma_connected_flags(self):
        g = UGraph()
        for i in range(4):
            g.add_edge(i, (i + 1) % 4, 1.0)
        assert is_gamma_connected(g, 2)
        assert not is_gamma_connected(g, 3)
        assert is_gamma_connected(g, 0)
        with pytest.raises(GraphError):
            is_gamma_connected(g, -1)

    def test_too_small_raises(self):
        with pytest.raises(GraphError):
            edge_connectivity(UGraph(nodes=["a"]))


class TestCertification:
    def test_passing_certificate(self):
        g = random_regularish_ugraph(8, 4, rng=7)
        pairs = [(0, 4), (1, 5)]
        counts = certify_pairwise_connectivity(g, pairs, gamma=2)
        assert all(v >= 2 for v in counts.values())

    def test_failing_certificate_names_pair(self):
        g = UGraph(edges=[("a", "b", 1.0), ("b", "c", 1.0)])
        with pytest.raises(GraphError, match="edge-disjoint"):
            certify_pairwise_connectivity(g, [("a", "c")], gamma=2)
