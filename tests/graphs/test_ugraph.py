"""Tests for repro.graphs.ugraph."""

import pytest

from repro.errors import GraphError
from repro.graphs.digraph import DiGraph
from repro.graphs.ugraph import UGraph, symmetrize


@pytest.fixture
def square():
    """4-cycle a-b-c-d-a with unit weights."""
    g = UGraph()
    for u, v in (("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")):
        g.add_edge(u, v, 1.0)
    return g


class TestConstruction:
    def test_symmetry(self, square):
        assert square.has_edge("a", "b")
        assert square.has_edge("b", "a")
        assert square.weight("a", "b") == square.weight("b", "a")

    def test_parallel_edges_merge_at_construction(self):
        g = UGraph(edges=[("a", "b", 1.0), ("b", "a", 2.0)])
        assert g.num_edges == 1
        assert g.weight("a", "b") == 3.0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            UGraph().add_edge("a", "a")

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            UGraph().add_edge("a", "b", -0.5)

    def test_duplicate_modes(self):
        g = UGraph()
        g.add_edge("a", "b", 1.0)
        with pytest.raises(GraphError):
            g.add_edge("a", "b", 1.0)
        g.add_edge("b", "a", 2.0, combine="add")
        assert g.weight("a", "b") == 3.0
        g.add_edge("a", "b", 7.0, combine="set")
        assert g.weight("b", "a") == 7.0


class TestInspection:
    def test_edges_listed_once(self, square):
        assert len(list(square.edges())) == 4
        assert square.num_edges == 4

    def test_degree_and_weighted_degree(self, square):
        assert square.degree("a") == 2
        assert square.weighted_degree("a") == 2.0

    def test_total_weight(self, square):
        assert square.total_weight() == 4.0

    def test_neighbors_is_copy(self, square):
        nbrs = square.neighbors("a")
        nbrs["b"] = 42.0
        assert square.weight("a", "b") == 1.0

    def test_unknown_node_raises(self, square):
        with pytest.raises(GraphError):
            square.degree("zzz")


class TestCuts:
    def test_cut_counts_each_edge_once(self, square):
        assert square.cut_weight({"a"}) == 2.0
        assert square.cut_weight({"a", "b"}) == 2.0

    def test_cut_complement_symmetric(self, square):
        assert square.cut_weight({"a", "c"}) == square.cut_weight({"b", "d"})

    def test_trivial_cut_rejected(self, square):
        with pytest.raises(GraphError):
            square.cut_weight(set())
        with pytest.raises(GraphError):
            square.cut_weight({"a", "b", "c", "d"})


class TestContraction:
    def test_contract_merges_and_sums(self):
        g = UGraph(edges=[("a", "b", 1.0), ("a", "c", 2.0), ("b", "c", 4.0)])
        merged = g.contracted("a", "b")
        assert not merged.has_node("b")
        assert merged.weight("a", "c") == 6.0
        assert merged.num_edges == 1

    def test_contract_drops_internal_edge(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        merged = g.contracted("a", "b")
        assert merged.num_edges == 0
        assert merged.num_nodes == 1

    def test_contract_original_untouched(self):
        g = UGraph(edges=[("a", "b", 1.0), ("b", "c", 1.0)])
        g.contracted("a", "b")
        assert g.has_node("b")
        assert g.num_edges == 2

    def test_contract_errors(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        with pytest.raises(GraphError):
            g.contracted("a", "a")
        with pytest.raises(GraphError):
            g.contracted("a", "zzz")


class TestComponents:
    def test_connected(self, square):
        assert square.is_connected()
        assert len(square.connected_components()) == 1

    def test_disconnected(self):
        g = UGraph(edges=[("a", "b", 1.0), ("c", "d", 1.0)])
        comps = g.connected_components()
        assert len(comps) == 2
        assert not g.is_connected()

    def test_isolated_nodes_are_components(self):
        g = UGraph(nodes=["a", "b"])
        assert len(g.connected_components()) == 2

    def test_empty_graph_connected(self):
        assert UGraph().is_connected()

    def test_subgraph(self, square):
        sub = square.subgraph({"a", "b", "c"})
        assert sub.num_edges == 2
        with pytest.raises(GraphError):
            square.subgraph({"a", "zzz"})


class TestSymmetrize:
    def test_weights_sum_directions(self):
        d = DiGraph()
        d.add_edge("a", "b", 1.0)
        d.add_edge("b", "a", 2.5)
        d.add_edge("b", "c", 4.0)
        u = symmetrize(d)
        assert u.weight("a", "b") == 3.5
        assert u.weight("b", "c") == 4.0
        assert u.num_edges == 2

    def test_preserves_isolated_nodes(self):
        d = DiGraph(nodes=["x"])
        assert symmetrize(d).has_node("x")
