"""Tests for repro.graphs.mincut: Stoer–Wagner, Karger, directed min cut."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.cuts import brute_force_directed_min_cut, brute_force_min_cut
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    planted_min_cut_ugraph,
    random_balanced_digraph,
    random_connected_ugraph,
)
from repro.graphs.mincut import (
    directed_global_min_cut,
    karger_min_cut,
    sample_near_min_cuts,
    stoer_wagner,
)
from repro.graphs.ugraph import UGraph


class TestStoerWagner:
    def test_path_graph(self):
        g = UGraph(edges=[("a", "b", 3.0), ("b", "c", 1.0), ("c", "d", 2.0)])
        value, side = stoer_wagner(g)
        assert value == 1.0
        assert g.cut_weight(side) == 1.0

    def test_disconnected_returns_zero(self):
        g = UGraph(edges=[("a", "b", 1.0), ("c", "d", 1.0)])
        value, side = stoer_wagner(g)
        assert value == 0.0

    def test_two_nodes(self):
        g = UGraph(edges=[("a", "b", 4.5)])
        value, _ = stoer_wagner(g)
        assert value == 4.5

    def test_single_node_raises(self):
        with pytest.raises(GraphError):
            stoer_wagner(UGraph(nodes=["a"]))

    def test_planted_cut_found(self):
        g, k = planted_min_cut_ugraph(10, 3, rng=0)
        value, _ = stoer_wagner(g)
        assert value == float(k)

    @given(st.integers(3, 9), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, n, seed):
        g = random_connected_ugraph(n, extra_edge_prob=0.4, rng=seed,
                                    weight_range=(0.5, 3.0))
        sw_value, sw_side = stoer_wagner(g)
        bf_value, _ = brute_force_min_cut(g)
        assert sw_value == pytest.approx(bf_value)
        assert g.cut_weight(sw_side) == pytest.approx(bf_value)


class TestKarger:
    @given(st.integers(4, 8), st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_matches_stoer_wagner(self, n, seed):
        g = random_connected_ugraph(n, extra_edge_prob=0.4, rng=seed)
        k_value, k_side = karger_min_cut(g, rng=seed)
        sw_value, _ = stoer_wagner(g)
        assert k_value == pytest.approx(sw_value)
        assert g.cut_weight(k_side) == pytest.approx(sw_value)

    def test_respects_weights(self):
        # Heavy edge should never be the min cut.
        g = UGraph(edges=[("a", "b", 100.0), ("b", "c", 1.0)])
        value, side = karger_min_cut(g, rng=0)
        assert value == 1.0

    def test_disconnected(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        g.add_node("c")
        value, _ = karger_min_cut(g, rng=1)
        assert value == 0.0

    def test_too_small_raises(self):
        with pytest.raises(GraphError):
            karger_min_cut(UGraph(nodes=["a"]))

    def test_explicit_trials(self):
        g = random_connected_ugraph(5, rng=2)
        value, _ = karger_min_cut(g, trials=50, rng=2)
        assert value >= stoer_wagner(g)[0] - 1e-9


class TestNearMinCuts:
    def test_includes_the_minimum(self):
        g, k = planted_min_cut_ugraph(8, 2, rng=1)
        cuts = sample_near_min_cuts(g, factor=1.5, attempts=100, rng=1)
        assert cuts[0][0] == pytest.approx(float(k))

    def test_all_within_factor(self):
        g = random_connected_ugraph(8, extra_edge_prob=0.5, rng=4)
        base, _ = stoer_wagner(g)
        cuts = sample_near_min_cuts(g, factor=2.0, attempts=200, rng=4)
        for value, side in cuts:
            assert value <= 2.0 * base + 1e-9
            assert g.cut_weight(side) == pytest.approx(value)

    def test_sides_are_distinct(self):
        g = random_connected_ugraph(8, extra_edge_prob=0.5, rng=5)
        cuts = sample_near_min_cuts(g, factor=3.0, attempts=200, rng=5)
        sides = [side for _, side in cuts]
        assert len(sides) == len(set(sides))

    def test_factor_below_one_raises(self):
        g = random_connected_ugraph(4, rng=0)
        with pytest.raises(GraphError):
            sample_near_min_cuts(g, factor=0.5, attempts=10)


class TestDirectedGlobalMinCut:
    def test_simple_cycle(self):
        g = DiGraph()
        g.add_edge("a", "b", 2.0)
        g.add_edge("b", "c", 3.0)
        g.add_edge("c", "a", 1.0)
        value, side = directed_global_min_cut(g)
        assert value == 1.0
        assert g.cut_weight(side) == 1.0

    def test_asymmetric_pair(self):
        g = DiGraph()
        g.add_edge("a", "b", 9.0)
        g.add_edge("b", "a", 2.0)
        value, side = directed_global_min_cut(g)
        assert value == 2.0
        assert side == frozenset({"b"})

    @given(st.integers(3, 7), st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_matches_brute_force(self, n, seed):
        g = random_balanced_digraph(n, beta=4.0, density=0.4, rng=seed)
        flow_value, flow_side = directed_global_min_cut(g)
        bf_value, _ = brute_force_directed_min_cut(g)
        assert flow_value == pytest.approx(bf_value)
        assert g.cut_weight(flow_side) == pytest.approx(bf_value)

    def test_too_small_raises(self):
        with pytest.raises(GraphError):
            directed_global_min_cut(DiGraph(nodes=["a"]))
