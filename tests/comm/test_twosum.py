"""Tests for repro.comm.twosum (Definitions 5.1/5.2, Theorem 5.4 lifting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.twosum import (
    MIN_INTERSECTING_FRACTION,
    TwoSumInstance,
    concatenate_pairs,
    lift_instance,
    sample_twosum_instance,
    sample_unit_pair,
)
from repro.errors import ParameterError
from repro.utils.bitstrings import intersection_size


class TestUnitPair:
    @given(st.integers(1, 64), st.booleans(), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_intersection_exactly_as_requested(self, length, intersect, seed):
        x, y = sample_unit_pair(length, intersect, rng=seed)
        assert intersection_size(x, y) == (1 if intersect else 0)

    def test_bad_length(self):
        with pytest.raises(ParameterError):
            sample_unit_pair(0, True)


class TestSampler:
    @given(
        st.integers(1, 12),
        st.sampled_from([4, 8, 12]),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_promise_holds(self, pairs, length, seed):
        inst = sample_twosum_instance(pairs, length, alpha=1, rng=seed)
        inst.validate_promise()  # raises on violation
        counts = inst.intersection_counts()
        assert all(c in (0, 1) for c in counts)

    @given(st.sampled_from([1, 2, 4]), st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_alpha_lifting(self, alpha, seed):
        inst = sample_twosum_instance(6, 4 * alpha, alpha=alpha, rng=seed)
        counts = inst.intersection_counts()
        assert all(c in (0, alpha) for c in counts)
        assert inst.length == 4 * alpha

    def test_intersecting_fraction_controls_count(self):
        inst = sample_twosum_instance(
            20, 8, intersecting_fraction=0.5, rng=1
        )
        intersecting = sum(1 for c in inst.intersection_counts() if c > 0)
        assert intersecting == 10

    def test_minimum_one_intersection(self):
        inst = sample_twosum_instance(10, 8, intersecting_fraction=0.0, rng=2)
        assert sum(1 for c in inst.intersection_counts() if c > 0) >= 1

    def test_bad_params(self):
        with pytest.raises(ParameterError):
            sample_twosum_instance(0, 4)
        with pytest.raises(ParameterError):
            sample_twosum_instance(4, 5, alpha=2)  # not a multiple
        with pytest.raises(ParameterError):
            sample_twosum_instance(4, 4, alpha=0)
        with pytest.raises(ParameterError):
            sample_twosum_instance(4, 4, intersecting_fraction=2.0)


class TestInstanceArithmetic:
    def test_disjointness_sum(self):
        inst = sample_twosum_instance(10, 8, intersecting_fraction=0.3, rng=3)
        expected = sum(1 for c in inst.intersection_counts() if c == 0)
        assert inst.disjointness_sum() == expected

    def test_error_budget(self):
        inst = sample_twosum_instance(16, 4, rng=4)
        assert inst.additive_error_budget() == pytest.approx(4.0)

    def test_validate_rejects_bad_alpha(self):
        x = np.array([1, 1, 0, 0], dtype=np.int8)
        y = np.array([1, 1, 0, 0], dtype=np.int8)  # INT = 2, alpha claims 1
        inst = TwoSumInstance(alice_strings=[x], bob_strings=[y], alpha=1)
        with pytest.raises(ParameterError):
            inst.validate_promise()

    def test_validate_rejects_no_intersections(self):
        x = np.array([1, 0], dtype=np.int8)
        y = np.array([0, 1], dtype=np.int8)
        inst = TwoSumInstance(alice_strings=[x] * 4, bob_strings=[y] * 4, alpha=1)
        with pytest.raises(ParameterError):
            inst.validate_promise()


class TestLiftAndConcatenate:
    def test_lift_multiplies_intersections(self):
        base = sample_twosum_instance(5, 4, alpha=1, rng=5)
        lifted = lift_instance(base, 3)
        assert lifted.length == 12
        assert lifted.alpha == 3
        for c_base, c_lift in zip(
            base.intersection_counts(), lifted.intersection_counts()
        ):
            assert c_lift == 3 * c_base

    def test_lift_preserves_disjointness_sum(self):
        base = sample_twosum_instance(8, 4, alpha=1, rng=6)
        assert lift_instance(base, 4).disjointness_sum() == base.disjointness_sum()

    def test_lift_requires_unit_alpha(self):
        lifted = lift_instance(sample_twosum_instance(3, 4, rng=7), 2)
        with pytest.raises(ParameterError):
            lift_instance(lifted, 2)

    @given(st.integers(1, 8), st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_concatenation_is_intersection_additive(self, pairs, seed):
        inst = sample_twosum_instance(pairs, 8, rng=seed)
        x, y = concatenate_pairs(inst)
        assert intersection_size(x, y) == sum(inst.intersection_counts())
        assert x.shape[0] == pairs * 8
