"""Tests for repro.comm.protocol."""

import pytest

from repro.comm.protocol import (
    BitLedger,
    Message,
    OneWayProtocol,
    run_protocol,
)
from repro.errors import ProtocolError


class EchoProtocol(OneWayProtocol):
    """Alice pickles her input; Bob returns element [bob_input]."""

    def alice(self, alice_input):
        return Message.from_object(alice_input)

    def bob(self, message, bob_input):
        return message.to_object()[bob_input]


class BrokenProtocol(OneWayProtocol):
    def alice(self, alice_input):
        return b"raw bytes, not a Message"

    def bob(self, message, bob_input):
        return None


class TestMessage:
    def test_bits_counts_payload(self):
        assert Message(payload=b"ab").bits == 16
        assert Message(payload=b"").bits == 0

    def test_object_roundtrip(self):
        msg = Message.from_object({"a": [1, 2, 3]})
        assert msg.to_object() == {"a": [1, 2, 3]}

    def test_immutable(self):
        msg = Message(payload=b"x")
        with pytest.raises(AttributeError):
            msg.payload = b"y"


class TestRunProtocol:
    def test_answer_and_bits(self):
        run = run_protocol(EchoProtocol(), ["p", "q", "r"], 1)
        assert run.answer == "q"
        assert run.message_bits > 0

    def test_non_message_rejected(self):
        with pytest.raises(ProtocolError):
            run_protocol(BrokenProtocol(), None, None)


class TestBitLedger:
    def test_accumulates(self):
        ledger = BitLedger()
        ledger.charge(2)
        ledger.charge(2)
        ledger.charge(0)
        assert ledger.total_bits == 4
        assert ledger.charges == 3

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            BitLedger().charge(-1)

    def test_merge(self):
        a = BitLedger(total_bits=4, charges=2)
        b = BitLedger(total_bits=6, charges=1)
        merged = a.merged_with(b)
        assert merged.total_bits == 10
        assert merged.charges == 3
        # Originals untouched.
        assert a.total_bits == 4
