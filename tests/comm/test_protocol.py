"""Tests for repro.comm.protocol."""

import pytest

from repro import obs
from repro.comm.protocol import (
    BitLedger,
    Message,
    OneWayProtocol,
    run_protocol,
)
from repro.errors import ProtocolError
from repro.obs.sink import ListSink


class EchoProtocol(OneWayProtocol):
    """Alice pickles her input; Bob returns element [bob_input]."""

    def alice(self, alice_input):
        return Message.from_object(alice_input)

    def bob(self, message, bob_input):
        return message.to_object()[bob_input]


class BrokenProtocol(OneWayProtocol):
    def alice(self, alice_input):
        return b"raw bytes, not a Message"

    def bob(self, message, bob_input):
        return None


class TestMessage:
    def test_bits_counts_payload(self):
        assert Message(payload=b"ab").bits == 16
        assert Message(payload=b"").bits == 0

    def test_object_roundtrip(self):
        msg = Message.from_object({"a": [1, 2, 3]})
        assert msg.to_object() == {"a": [1, 2, 3]}

    def test_immutable(self):
        msg = Message(payload=b"x")
        with pytest.raises(AttributeError):
            msg.payload = b"y"


class TestRunProtocol:
    def test_answer_and_bits(self):
        run = run_protocol(EchoProtocol(), ["p", "q", "r"], 1)
        assert run.answer == "q"
        assert run.message_bits > 0

    def test_non_message_rejected(self):
        with pytest.raises(ProtocolError):
            run_protocol(BrokenProtocol(), None, None)


class TestBitLedger:
    def test_accumulates(self):
        ledger = BitLedger()
        ledger.charge(2)
        ledger.charge(2)
        ledger.charge(0)
        assert ledger.total_bits == 4
        assert ledger.charges == 3

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            BitLedger().charge(-1)

    def test_merge(self):
        a = BitLedger(total_bits=4, charges=2)
        b = BitLedger(total_bits=6, charges=1)
        merged = a.merged_with(b)
        assert merged.total_bits == 10
        assert merged.charges == 3
        # Originals untouched.
        assert a.total_bits == 4

    def test_add_operator(self):
        a = BitLedger(total_bits=4, charges=2)
        b = BitLedger(total_bits=6, charges=1)
        assert a + b == BitLedger(total_bits=10, charges=3)
        # __add__ leaves its operands alone, like merged_with.
        assert a.total_bits == 4 and b.total_bits == 6

    def test_add_rejects_arbitrary_types(self):
        with pytest.raises(TypeError):
            BitLedger() + "nope"

    def test_sum_builtin(self):
        ledgers = [
            BitLedger(total_bits=1, charges=1),
            BitLedger(total_bits=2, charges=1),
            BitLedger(total_bits=3, charges=2),
        ]
        total = sum(ledgers)
        assert total == BitLedger(total_bits=6, charges=4)

    def test_equality(self):
        assert BitLedger(total_bits=2, charges=1) == BitLedger(
            total_bits=2, charges=1
        )
        assert BitLedger() != BitLedger(total_bits=1, charges=1)

    def test_counts_without_telemetry(self):
        assert not obs.is_enabled()
        ledger = BitLedger()
        ledger.charge(8)
        assert ledger.total_bits == 8  # local meter is always on


class TestObsRouting:
    def test_ledger_mirrors_to_global_registry(self):
        obs.reset_metrics()
        ledger = BitLedger()
        with obs.enabled(ListSink()):
            ledger.charge(5)
            ledger.charge(3)
        snap = obs.snapshot()
        obs.reset_metrics()
        assert snap["comm.wire_bits"] == 8
        assert snap["comm.wire_charges"] == 2
        assert ledger.total_bits == 8

    def test_run_protocol_counts_message_bits(self):
        obs.reset_metrics()
        with obs.enabled(ListSink()) as sink:
            run = run_protocol(EchoProtocol(), ["p", "q"], 0)
        snap = obs.snapshot()
        obs.reset_metrics()
        assert snap["comm.messages"] == 1
        assert snap["comm.message_bits"] == run.message_bits
        (span_record,) = sink.of_kind("span")
        assert span_record["name"] == "comm.run_protocol"
        assert span_record["attrs"]["protocol"] == "EchoProtocol"
