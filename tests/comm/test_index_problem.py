"""Tests for repro.comm.index_problem (Lemma 3.1's distribution)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.index_problem import (
    SendEverythingIndexProtocol,
    TruncatingIndexProtocol,
    sample_index_instance,
)
from repro.comm.protocol import run_protocol
from repro.errors import ParameterError
from repro.utils.stats import estimate_success_probability


class TestSampling:
    def test_shapes(self):
        inst = sample_index_instance(100, rng=0)
        assert inst.length == 100
        assert 0 <= inst.index < 100
        assert set(np.unique(inst.string)) <= {-1, 1}

    def test_answer_field(self):
        inst = sample_index_instance(10, rng=1)
        assert inst.answer == int(inst.string[inst.index])

    def test_bad_length(self):
        with pytest.raises(ParameterError):
            sample_index_instance(0)

    def test_index_roughly_uniform(self):
        rng = np.random.default_rng(2)
        hits = [sample_index_instance(4, rng=rng).index for _ in range(400)]
        counts = np.bincount(hits, minlength=4)
        assert counts.min() > 50  # crude uniformity check


class TestSendEverything:
    @given(st.integers(1, 256), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_always_correct(self, length, seed):
        inst = sample_index_instance(length, rng=seed)
        run = run_protocol(SendEverythingIndexProtocol(), inst.string, inst.index)
        assert run.answer == inst.answer

    def test_message_is_n_bits_up_to_padding(self):
        inst = sample_index_instance(64, rng=3)
        run = run_protocol(SendEverythingIndexProtocol(), inst.string, inst.index)
        assert run.message_bits == 64


class TestTruncating:
    def test_correct_inside_prefix(self):
        inst = sample_index_instance(32, rng=4)
        protocol = TruncatingIndexProtocol(keep=32)
        run = run_protocol(protocol, inst.string, inst.index)
        assert run.answer == inst.answer

    def test_message_shrinks(self):
        inst = sample_index_instance(64, rng=5)
        full = run_protocol(TruncatingIndexProtocol(keep=64), inst.string, 0)
        half = run_protocol(TruncatingIndexProtocol(keep=32), inst.string, 0)
        assert half.message_bits < full.message_bits

    def test_zero_prefix_sends_nothing(self):
        inst = sample_index_instance(8, rng=6)
        run = run_protocol(TruncatingIndexProtocol(keep=0), inst.string, inst.index)
        assert run.message_bits == 0

    def test_sublinear_messages_fall_below_two_thirds(self):
        """The operational content of Lemma 3.1 at finite size.

        With only a 1/8 prefix, the overall success probability is about
        1/8 + (7/8) * 1/2 ~ 0.56 < 2/3.
        """
        length = 128

        def trial(rng) -> bool:
            inst = sample_index_instance(length, rng=rng)
            run = run_protocol(
                TruncatingIndexProtocol(keep=length // 8), inst.string, inst.index
            )
            return run.answer == inst.answer

        summary = estimate_success_probability(trial, trials=300, rng=7)
        assert summary.rate < 2.0 / 3.0

    def test_negative_keep_rejected(self):
        with pytest.raises(ParameterError):
            TruncatingIndexProtocol(keep=-1)
