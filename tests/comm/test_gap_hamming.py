"""Tests for repro.comm.gap_hamming (Lemma 4.1's distribution)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.gap_hamming import (
    GapCase,
    distance_to_case,
    gap_threshold,
    intersection_case,
    sample_gap_hamming_instance,
)
from repro.errors import ParameterError
from repro.utils.bitstrings import hamming_weight, intersection_size


class TestGapThreshold:
    def test_scales_with_sqrt_length(self):
        assert gap_threshold(4) <= gap_threshold(64) <= gap_threshold(1024)

    def test_at_least_one(self):
        assert gap_threshold(4) >= 1

    def test_too_short_raises(self):
        with pytest.raises(ParameterError):
            gap_threshold(1)


class TestSampler:
    @given(
        st.integers(1, 6),
        st.sampled_from([4, 8, 16]),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_promise_respected(self, h, length, seed):
        inst = sample_gap_hamming_instance(h, length, rng=seed)
        half = length // 2
        # Every string has the advertised fixed weight.
        for s in inst.strings:
            assert hamming_weight(s) == half
        assert hamming_weight(inst.query) == half
        # The planted distance lies on the declared side of the promise.
        dist = inst.planted_distance()
        if inst.case is GapCase.HIGH:
            assert dist >= half + inst.gap
        else:
            assert dist <= half - inst.gap

    def test_case_roughly_balanced(self):
        rng = np.random.default_rng(1)
        cases = [
            sample_gap_hamming_instance(1, 8, rng=rng).case for _ in range(200)
        ]
        highs = sum(1 for c in cases if c is GapCase.HIGH)
        assert 50 < highs < 150

    def test_bad_params(self):
        with pytest.raises(ParameterError):
            sample_gap_hamming_instance(0, 8)
        with pytest.raises(ParameterError):
            sample_gap_hamming_instance(1, 7)  # odd length
        with pytest.raises(ParameterError):
            sample_gap_hamming_instance(1, 0)

    def test_index_in_range(self):
        inst = sample_gap_hamming_instance(5, 8, rng=2)
        assert 0 <= inst.index < 5
        assert inst.num_strings == 5
        assert inst.length == 8


class TestCaseClassifiers:
    def test_distance_to_case(self):
        assert distance_to_case(8, length=8, gap=2) is GapCase.HIGH
        assert distance_to_case(0, length=8, gap=2) is GapCase.LOW
        with pytest.raises(ParameterError):
            distance_to_case(4, length=8, gap=2)

    def test_intersection_case_matches_distance_identity(self):
        """Delta = L/2 + L/2 - 2*INT for two weight-L/2 strings, so the
        two classifiers must agree through that identity."""
        length, gap = 16, 2
        for inter in range(0, length // 2 + 1):
            dist = length - 2 * inter
            try:
                by_dist = distance_to_case(dist, length, gap)
            except ParameterError:
                with pytest.raises(ParameterError):
                    intersection_case(inter, length, gap)
                continue
            assert intersection_case(inter, length, gap) is by_dist

    def test_sampler_agrees_with_classifier(self):
        inst = sample_gap_hamming_instance(3, 16, rng=5)
        assert distance_to_case(inst.planted_distance(), 16, inst.gap) is inst.case

    def test_planted_intersection_classifies_too(self):
        inst = sample_gap_hamming_instance(2, 16, rng=6)
        inter = intersection_size(inst.strings[inst.index], inst.query)
        assert intersection_case(inter, 16, inst.gap) is inst.case
