"""Tests for repro.localquery.oracle."""

import pytest

from repro import obs
from repro.errors import BudgetExceededError, OracleError
from repro.graphs.generators import random_connected_ugraph
from repro.graphs.ugraph import UGraph
from repro.localquery.oracle import QUERY_KINDS, GraphOracle, QueryCounter
from repro.obs.sink import ListSink


@pytest.fixture
def oracle():
    g = UGraph(edges=[("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 1.0)])
    return GraphOracle(g)


class TestQueryAnswers:
    def test_degree(self, oracle):
        assert oracle.degree("a") == 2

    def test_neighbor_in_order(self, oracle):
        first = oracle.neighbor("a", 0)
        second = oracle.neighbor("a", 1)
        assert {first, second} == {"b", "c"}

    def test_neighbor_order_is_stable(self, oracle):
        assert oracle.neighbor("a", 0) == oracle.neighbor("a", 0)

    def test_neighbor_past_degree_is_none(self, oracle):
        assert oracle.neighbor("a", 2) is None

    def test_neighbor_bad_inputs(self, oracle):
        with pytest.raises(OracleError):
            oracle.neighbor("a", -1)
        with pytest.raises(OracleError):
            oracle.neighbor("zzz", 0)

    def test_adjacent(self, oracle):
        assert oracle.adjacent("a", "b")
        assert not oracle.adjacent("a", "zzz")

    def test_vertices_public(self, oracle):
        assert set(oracle.vertices) == {"a", "b", "c"}

    def test_oracle_isolated_from_mutation(self):
        g = UGraph(edges=[("a", "b", 1.0)])
        oracle = GraphOracle(g)
        g.add_edge("a", "c", 1.0)
        assert not oracle.adjacent("a", "c")


class TestCounting:
    def test_counts_by_type(self, oracle):
        oracle.degree("a")
        oracle.degree("b")
        oracle.neighbor("a", 0)
        oracle.adjacent("a", "b")
        counter = oracle.counter
        assert counter.degree_queries == 2
        assert counter.neighbor_queries == 1
        assert counter.pair_queries == 1
        assert counter.total == 4

    def test_reset(self, oracle):
        oracle.degree("a")
        oracle.counter.reset()
        assert oracle.counter.total == 0

    def test_failed_queries_still_charged(self, oracle):
        try:
            oracle.neighbor("zzz", 0)
        except OracleError:
            pass
        assert oracle.counter.neighbor_queries == 1


class TestQueryCounterShim:
    def test_kinds_cover_the_model(self):
        assert QUERY_KINDS == ("degree", "neighbor", "pair")

    def test_initial_values_constructor(self):
        counter = QueryCounter(
            degree_queries=2, neighbor_queries=3, pair_queries=5
        )
        assert counter.degree_queries == 2
        assert counter.neighbor_queries == 3
        assert counter.pair_queries == 5
        assert counter.total == 10

    def test_charge_by_kind(self):
        counter = QueryCounter()
        counter.charge("degree")
        counter.charge("pair")
        counter.charge("pair")
        assert counter.degree_queries == 1
        assert counter.pair_queries == 2
        assert counter.total == 3

    def test_unknown_kind_raises(self):
        with pytest.raises(OracleError):
            QueryCounter().charge("telepathy")

    def test_counters_independent_between_instances(self):
        a, b = QueryCounter(), QueryCounter()
        a.charge("degree")
        assert b.degree_queries == 0

    def test_repr_shows_tallies(self):
        counter = QueryCounter(degree_queries=1)
        assert "degree_queries=1" in repr(counter)

    def test_counts_without_telemetry(self):
        assert not obs.is_enabled()
        counter = QueryCounter()
        counter.charge("neighbor")
        assert counter.neighbor_queries == 1  # local meter is always on


class TestObsMirroring:
    def test_charges_mirror_to_global_registry(self, oracle):
        obs.reset_metrics()
        with obs.enabled(ListSink()):
            oracle.degree("a")
            oracle.neighbor("a", 0)
            oracle.neighbor("a", 1)
            oracle.adjacent("a", "b")
        snap = obs.snapshot()
        obs.reset_metrics()
        assert snap["oracle.query.degree"] == 1
        assert snap["oracle.query.neighbor"] == 2
        assert snap["oracle.query.pair"] == 1

    def test_budget_overrun_counted(self):
        g = random_connected_ugraph(5, rng=0)
        oracle = GraphOracle(g, budget=1)
        obs.reset_metrics()
        with obs.enabled(ListSink()):
            oracle.degree(g.nodes()[0])
            with pytest.raises(BudgetExceededError):
                oracle.degree(g.nodes()[1])
        snap = obs.snapshot()
        obs.reset_metrics()
        assert snap["oracle.budget_overrun"] == 1


class TestBudget:
    def test_budget_enforced(self):
        g = random_connected_ugraph(5, rng=0)
        oracle = GraphOracle(g, budget=3)
        for v in list(g.nodes())[:3]:
            oracle.degree(v)
        with pytest.raises(BudgetExceededError):
            oracle.degree(g.nodes()[3])

    def test_no_budget_unlimited(self):
        g = random_connected_ugraph(4, rng=1)
        oracle = GraphOracle(g)
        for _ in range(100):
            oracle.degree(g.nodes()[0])
        assert oracle.counter.total == 100
