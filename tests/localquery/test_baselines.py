"""Tests for repro.localquery.baselines."""

import pytest

from repro.errors import ParameterError
from repro.graphs.generators import planted_min_cut_ugraph, random_connected_ugraph
from repro.graphs.mincut import stoer_wagner
from repro.graphs.ugraph import UGraph
from repro.localquery.baselines import (
    exact_reconstruction_estimate,
    minimum_degree_upper_bound,
    reconstruct_graph,
    uniform_edge_sample_estimate,
)
from repro.localquery.oracle import GraphOracle


@pytest.fixture
def planted():
    g, k = planted_min_cut_ugraph(12, 3, rng=0)
    return g, float(k)


class TestReconstruction:
    def test_rebuilds_graph_exactly(self, planted):
        g, _ = planted
        oracle = GraphOracle(g)
        rebuilt = reconstruct_graph(oracle)
        assert rebuilt.num_edges == g.num_edges
        for u, v, _ in g.edges():
            assert rebuilt.has_edge(u, v)

    def test_exact_estimate(self, planted):
        g, k = planted
        oracle = GraphOracle(g)
        result = exact_reconstruction_estimate(oracle)
        assert result.value == k
        # Theta(m): n degree queries + 2m neighbor queries.
        assert result.queries == g.num_nodes + 2 * g.num_edges

    def test_disconnected_gives_zero(self):
        g = UGraph(edges=[("a", "b", 1.0), ("c", "d", 1.0)])
        result = exact_reconstruction_estimate(GraphOracle(g))
        assert result.value == 0.0

    def test_too_small_raises(self):
        g = UGraph(nodes=["a"])
        with pytest.raises(ParameterError):
            exact_reconstruction_estimate(GraphOracle(g))


class TestDegreeBound:
    def test_upper_bounds_min_cut(self, planted):
        g, k = planted
        result = minimum_degree_upper_bound(GraphOracle(g))
        assert result.value >= k
        assert result.queries == g.num_nodes

    def test_tight_on_stars(self):
        g = UGraph(edges=[("hub", leaf, 1.0) for leaf in "abc"])
        result = minimum_degree_upper_bound(GraphOracle(g))
        assert result.value == 1.0  # a leaf's degree = the min cut here


class TestUniformSample:
    def test_full_budget_is_exact(self, planted):
        g, k = planted
        oracle = GraphOracle(g)
        result = uniform_edge_sample_estimate(oracle, budget=10**6, rng=1)
        assert result.value == pytest.approx(k)

    def test_tiny_budget_is_unreliable(self, planted):
        """Without accept/reject semantics a small budget silently
        returns garbage — the failure mode VERIFY-GUESS exists to
        prevent."""
        g, k = planted
        wrong = 0
        for seed in range(10):
            oracle = GraphOracle(g)
            result = uniform_edge_sample_estimate(oracle, budget=30, rng=seed)
            if abs(result.value - k) > 0.5 * k:
                wrong += 1
        assert wrong >= 5

    def test_budget_validated(self, planted):
        g, _ = planted
        with pytest.raises(ParameterError):
            uniform_edge_sample_estimate(GraphOracle(g), budget=0)

    def test_query_accounting(self, planted):
        g, _ = planted
        oracle = GraphOracle(g)
        result = uniform_edge_sample_estimate(oracle, budget=40, rng=2)
        assert result.queries == g.num_nodes + 40
