"""Tests for repro.localquery.comm_oracle (the Lemma 5.6 simulation)."""

import numpy as np
import pytest

from repro.errors import OracleError, ParameterError
from repro.localquery.comm_oracle import CommOracle
from repro.localquery.gxy import (
    PART_A,
    PART_A_PRIME,
    PART_B,
    PART_B_PRIME,
    build_gxy,
)
from repro.utils.rng import ensure_rng


def strings(side=4, seed=0):
    gen = ensure_rng(seed)
    x = gen.integers(0, 2, size=side * side).astype(np.int8)
    y = gen.integers(0, 2, size=side * side).astype(np.int8)
    return x, y


class TestConsistencyWithGxy:
    def test_neighbor_answers_match_graph(self):
        x, y = strings()
        gxy = build_gxy(x, y)
        oracle = CommOracle(x, y)
        for v in oracle.vertices:
            for i in range(oracle.side):
                answer = oracle.neighbor(v, i)
                assert gxy.graph.has_edge(v, answer)

    def test_neighbor_slots_enumerate_all_neighbors(self):
        x, y = strings(seed=1)
        gxy = build_gxy(x, y)
        oracle = CommOracle(x, y)
        for v in oracle.vertices:
            answered = {oracle.neighbor(v, i) for i in range(oracle.side)}
            assert answered == set(gxy.graph.neighbors(v))

    def test_adjacency_matches_graph(self):
        x, y = strings(seed=2)
        gxy = build_gxy(x, y)
        oracle = CommOracle(x, y)
        vertices = oracle.vertices
        for u in vertices:
            for v in vertices:
                if u == v:
                    continue
                assert oracle.adjacent(u, v) == gxy.graph.has_edge(u, v)

    def test_degree_is_side(self):
        x, y = strings(seed=3)
        oracle = CommOracle(x, y)
        assert all(oracle.degree(v) == 4 for v in oracle.vertices)

    def test_neighbor_past_degree_is_none(self):
        x, y = strings()
        oracle = CommOracle(x, y)
        assert oracle.neighbor((PART_A, 0), 4) is None


class TestBitAccounting:
    def test_degree_queries_are_free(self):
        x, y = strings()
        oracle = CommOracle(x, y)
        for v in oracle.vertices:
            oracle.degree(v)
        assert oracle.bits_exchanged == 0

    def test_neighbor_query_costs_two_bits(self):
        x, y = strings()
        oracle = CommOracle(x, y)
        oracle.neighbor((PART_A, 0), 0)
        assert oracle.bits_exchanged == 2

    def test_repeat_queries_are_free(self):
        x, y = strings()
        oracle = CommOracle(x, y)
        oracle.neighbor((PART_A, 0), 1)
        oracle.neighbor((PART_A, 0), 1)
        oracle.adjacent((PART_A, 0), (PART_A_PRIME, 1))  # same index pair
        assert oracle.bits_exchanged == 2

    def test_never_adjacent_pairs_cost_nothing(self):
        x, y = strings()
        oracle = CommOracle(x, y)
        assert not oracle.adjacent((PART_A, 0), (PART_A, 1))
        assert not oracle.adjacent((PART_A, 0), (PART_B, 0))
        assert not oracle.adjacent((PART_A_PRIME, 0), (PART_B_PRIME, 1))
        assert oracle.bits_exchanged == 0

    def test_total_bits_bounded_by_2n(self):
        x, y = strings(seed=4)
        oracle = CommOracle(x, y)
        for v in oracle.vertices:
            for i in range(oracle.side):
                oracle.neighbor(v, i)
        # Only side^2 distinct index pairs exist.
        assert oracle.bits_exchanged == 2 * oracle.side**2

    def test_queries_counted_per_type(self):
        x, y = strings()
        oracle = CommOracle(x, y)
        oracle.degree((PART_A, 0))
        oracle.neighbor((PART_A, 0), 0)
        oracle.adjacent((PART_A, 0), (PART_B_PRIME, 0))
        assert oracle.counter.degree_queries == 1
        assert oracle.counter.neighbor_queries == 1
        assert oracle.counter.pair_queries == 1


class TestValidation:
    def test_bad_strings(self):
        with pytest.raises(ParameterError):
            CommOracle(np.zeros(3, dtype=np.int8), np.zeros(3, dtype=np.int8))
        with pytest.raises(ParameterError):
            CommOracle(np.zeros(4, dtype=np.int8), np.zeros(9, dtype=np.int8))

    def test_bad_vertices(self):
        x, y = strings()
        oracle = CommOracle(x, y)
        with pytest.raises(OracleError):
            oracle.degree(("Z", 0))
        with pytest.raises(OracleError):
            oracle.neighbor((PART_A, 99), 0)
        with pytest.raises(OracleError):
            oracle.neighbor((PART_A, 0), -1)
