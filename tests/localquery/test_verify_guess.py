"""Tests for VERIFY-GUESS (Lemma 5.8) and the Theorem 5.7 driver."""

import pytest

from repro.errors import ParameterError
from repro.graphs.generators import planted_min_cut_ugraph, random_connected_ugraph
from repro.graphs.mincut import stoer_wagner
from repro.graphs.ugraph import UGraph
from repro.localquery.mincut_query import estimate_min_cut
from repro.localquery.oracle import GraphOracle
from repro.localquery.verify_guess import fetch_degrees, verify_guess


@pytest.fixture(scope="module")
def planted():
    g, k = planted_min_cut_ugraph(20, 4, rng=0)
    return g, float(k)


class TestVerifyGuess:
    def test_accepts_guess_below_k(self, planted):
        g, k = planted
        oracle = GraphOracle(g)
        degrees = fetch_degrees(oracle)
        result = verify_guess(oracle, degrees, t=k / 2, eps=0.3, rng=1)
        assert result.accepted
        assert result.estimate == pytest.approx(k, rel=0.5)

    def test_rejects_guess_far_above_k(self, planted):
        g, k = planted
        oracle = GraphOracle(g)
        degrees = fetch_degrees(oracle)
        result = verify_guess(oracle, degrees, t=200 * k, eps=0.3, rng=2)
        assert not result.accepted
        assert result.estimate is None

    def test_small_guess_means_exact_sampling(self, planted):
        g, k = planted
        oracle = GraphOracle(g)
        degrees = fetch_degrees(oracle)
        result = verify_guess(oracle, degrees, t=1.0, eps=0.3, rng=3)
        assert result.keep_prob == 1.0
        assert result.estimate == pytest.approx(k)

    def test_queries_decrease_with_larger_guess(self, planted):
        g, _ = planted
        counts = []
        for t in (2.0, 8.0, 32.0):
            oracle = GraphOracle(g)
            degrees = fetch_degrees(oracle)
            result = verify_guess(oracle, degrees, t=t, eps=0.3, rng=4)
            counts.append(result.neighbor_queries)
        assert counts[0] >= counts[1] >= counts[2]

    def test_bad_params(self, planted):
        g, _ = planted
        oracle = GraphOracle(g)
        degrees = fetch_degrees(oracle)
        with pytest.raises(ParameterError):
            verify_guess(oracle, degrees, t=0, eps=0.3)
        with pytest.raises(ParameterError):
            verify_guess(oracle, degrees, t=1, eps=0.0)
        with pytest.raises(ParameterError):
            verify_guess(oracle, degrees, t=1, eps=0.3, constant=0)

    def test_degree_map_required_nonempty(self):
        g = UGraph(nodes=["a"])
        oracle = GraphOracle(g)
        with pytest.raises(ParameterError):
            verify_guess(oracle, {"a": 0}, t=1, eps=0.3)


class TestEstimateMinCut:
    def test_recovers_planted_cut(self, planted):
        g, k = planted
        for variant in ("modified", "naive"):
            oracle = GraphOracle(g)
            estimate = estimate_min_cut(oracle, eps=0.25, rng=5, variant=variant)
            assert estimate.value == pytest.approx(k, rel=0.3)
            assert estimate.variant == variant
            assert estimate.total_queries > 0

    def test_random_graph_estimate(self):
        g = random_connected_ugraph(24, extra_edge_prob=0.5, rng=6)
        true_value, _ = stoer_wagner(g)
        oracle = GraphOracle(g)
        estimate = estimate_min_cut(oracle, eps=0.25, rng=7)
        assert estimate.value == pytest.approx(true_value, rel=0.5)

    def test_disconnected_graph_returns_zero(self):
        g = UGraph(edges=[("a", "b", 1.0), ("c", "d", 1.0)])
        # Make both components non-trivial so degrees exist.
        g.add_edge("a", "b2", 1.0)
        g.add_edge("c", "d2", 1.0)
        oracle = GraphOracle(g)
        estimate = estimate_min_cut(oracle, eps=0.3, rng=8)
        assert estimate.value == 0.0

    def test_query_accounting_matches_oracle(self, planted):
        g, _ = planted
        oracle = GraphOracle(g)
        estimate = estimate_min_cut(oracle, eps=0.25, rng=9)
        assert estimate.total_queries == oracle.counter.total
        assert estimate.degree_queries == g.num_nodes

    def test_bad_params(self, planted):
        g, _ = planted
        oracle = GraphOracle(g)
        with pytest.raises(ParameterError):
            estimate_min_cut(oracle, eps=0.0)
        with pytest.raises(ParameterError):
            estimate_min_cut(oracle, eps=0.2, variant="bogus")

    def test_modified_never_slower_at_small_eps(self):
        """The Section 5.4 ablation in miniature: at small eps the
        modified variant uses no more queries than the naive one."""
        g, _ = planted_min_cut_ugraph(24, 8, rng=10)
        naive_queries = []
        modified_queries = []
        for seed in range(3):
            o1 = GraphOracle(g)
            estimate_min_cut(o1, eps=0.1, rng=seed, variant="naive")
            naive_queries.append(o1.counter.total)
            o2 = GraphOracle(g)
            estimate_min_cut(o2, eps=0.1, rng=seed, variant="modified")
            modified_queries.append(o2.counter.total)
        assert sum(modified_queries) <= sum(naive_queries)
