"""Tests for the Lemma 5.6 reduction (2-SUM via MINCUT)."""

import numpy as np
import pytest

from repro.comm.twosum import sample_twosum_instance
from repro.errors import ParameterError
from repro.graphs.mincut import stoer_wagner
from repro.localquery.mincut_query import estimate_min_cut
from repro.localquery.reduction import (
    build_instance_graph,
    pad_to_square,
    solve_twosum_via_mincut,
)


def exact_mincut_algorithm(oracle, gen):
    """Reference algorithm: reconstruct the graph via neighbor queries
    and compute the exact min cut (maximal queries, zero error)."""
    from repro.graphs.ugraph import UGraph

    g = UGraph(nodes=oracle.vertices)
    for v in oracle.vertices:
        deg = oracle.degree(v)
        for i in range(deg):
            u = oracle.neighbor(v, i)
            if u is not None and not g.has_edge(v, u):
                g.add_edge(v, u, 1.0)
    return stoer_wagner(g)[0]


class TestPadding:
    def test_square_untouched(self):
        x = np.zeros(9, dtype=np.int8)
        y = np.zeros(9, dtype=np.int8)
        px, py = pad_to_square(x, y)
        assert px.shape == (9,)

    def test_padded_to_next_square(self):
        x = np.ones(10, dtype=np.int8)
        y = np.ones(10, dtype=np.int8)
        px, py = pad_to_square(x, y)
        assert px.shape == (16,)
        assert np.all(px[10:] == 0)
        assert np.all(py[10:] == 0)

    def test_intersection_preserved(self):
        x = np.array([1, 1, 0], dtype=np.int8)
        y = np.array([1, 0, 1], dtype=np.int8)
        px, py = pad_to_square(x, y)
        assert int(np.sum(np.logical_and(px, py))) == 1

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            pad_to_square(np.zeros(3, dtype=np.int8), np.zeros(4, dtype=np.int8))


class TestBuildInstanceGraph:
    def test_mincut_identity(self):
        inst = sample_twosum_instance(16, 16, intersecting_fraction=0.2, rng=0)
        gxy = build_instance_graph(inst)
        value, _ = stoer_wagner(gxy.graph)
        assert value == pytest.approx(2.0 * gxy.intersection())

    def test_violating_instance_rejected(self):
        # All pairs intersect with tiny strings: sqrt(N) < 3 INT.
        inst = sample_twosum_instance(9, 1, intersecting_fraction=1.0, rng=1)
        with pytest.raises(ParameterError):
            build_instance_graph(inst)


class TestSolveTwoSum:
    @pytest.mark.parametrize("alpha", [1, 2])
    def test_exact_algorithm_recovers_disj_sum(self, alpha):
        inst = sample_twosum_instance(
            16, 36 * alpha, alpha=alpha, intersecting_fraction=0.25, rng=2
        )
        result = solve_twosum_via_mincut(inst, exact_mincut_algorithm, rng=3)
        assert result.disj_estimate == pytest.approx(result.true_disj)
        assert result.within_budget
        assert result.mincut_estimate == pytest.approx(result.true_mincut)

    def test_real_estimator_within_budget(self):
        inst = sample_twosum_instance(16, 16, intersecting_fraction=0.25, rng=4)

        def algorithm(oracle, gen):
            return estimate_min_cut(oracle, eps=0.2, rng=gen).value

        result = solve_twosum_via_mincut(inst, algorithm, rng=5)
        assert result.within_budget

    def test_bits_at_most_twice_queries(self):
        inst = sample_twosum_instance(16, 16, intersecting_fraction=0.25, rng=6)
        result = solve_twosum_via_mincut(inst, exact_mincut_algorithm, rng=7)
        # Lemma 5.6: each query costs at most 2 bits.
        assert result.bits_exchanged <= 2 * result.queries

    def test_queries_recorded(self):
        inst = sample_twosum_instance(9, 9, intersecting_fraction=0.2, rng=8)

        def frugal(oracle, gen):
            oracle.degree(oracle.vertices[0])
            return 2.0 * 1  # wrong but cheap

        result = solve_twosum_via_mincut(inst, frugal, rng=9)
        assert result.queries == 1
        assert result.bits_exchanged == 0
