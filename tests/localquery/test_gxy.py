"""Tests for repro.localquery.gxy — Figure 2 and Lemma 5.5."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graphs.connectivity import edge_disjoint_path_count
from repro.graphs.mincut import stoer_wagner
from repro.localquery.gxy import (
    PART_A,
    PART_A_PRIME,
    PART_B,
    PART_B_PRIME,
    build_gxy,
    representative_figure_pairs,
)
from repro.utils.rng import ensure_rng


def planted_strings(side: int, intersections: int, seed: int):
    """Random x, y over side^2 positions with a planted intersection count."""
    gen = ensure_rng(seed)
    n = side * side
    x = gen.integers(0, 2, size=n).astype(np.int8)
    y = np.zeros(n, dtype=np.int8)
    # y is 1 only at planted positions => INT is exactly `intersections`.
    planted = gen.choice(n, size=intersections, replace=False)
    x[planted] = 1
    y[planted] = 1
    return x, y


class TestConstruction:
    def test_figure_2_example(self):
        """The paper's worked example: x = 000000100, y = 100010100."""
        x = np.array([0, 0, 0, 0, 0, 0, 1, 0, 0], dtype=np.int8)
        y = np.array([1, 0, 0, 0, 1, 0, 1, 0, 0], dtype=np.int8)
        gxy = build_gxy(x, y)
        assert gxy.intersection() == 1  # only position (3,1) = index 6
        # The red edges of Figure 2: (a_3, b'_1) and (b_3, a'_1) with
        # 1-based indexing; 0-based (2, 0).
        assert gxy.graph.has_edge((PART_A, 2), (PART_B_PRIME, 0))
        assert gxy.graph.has_edge((PART_B, 2), (PART_A_PRIME, 0))
        # And the corresponding green edges are absent.
        assert not gxy.graph.has_edge((PART_A, 2), (PART_A_PRIME, 0))

    def test_every_vertex_has_degree_ell(self):
        x, y = planted_strings(4, 2, seed=0)
        gxy = build_gxy(x, y)
        for v in gxy.graph.nodes():
            assert gxy.graph.degree(v) == 4

    def test_edge_count_is_2n(self):
        x, y = planted_strings(5, 1, seed=1)
        gxy = build_gxy(x, y)
        assert gxy.num_edges == 2 * 25
        assert gxy.num_vertices == 20

    def test_part_cut_value_is_2int(self):
        x, y = planted_strings(6, 3, seed=2)
        gxy = build_gxy(x, y)
        assert gxy.part_cut_value() == pytest.approx(2.0 * gxy.intersection())

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            build_gxy(np.zeros(3, dtype=np.int8), np.zeros(3, dtype=np.int8))
        with pytest.raises(ParameterError):
            build_gxy(np.zeros(4, dtype=np.int8), np.zeros(9, dtype=np.int8))
        with pytest.raises(ParameterError):
            build_gxy(
                np.array([2, 0, 0, 0], dtype=np.int8),
                np.zeros(4, dtype=np.int8),
            )


class TestLemma55:
    @given(st.sampled_from([4, 6, 9]), st.integers(0, 3), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_mincut_equals_2int_under_hypothesis(self, side, gamma, seed):
        if side < 3 * gamma:
            return
        x, y = planted_strings(side, gamma, seed)
        gxy = build_gxy(x, y)
        assert gxy.lemma_55_applicable()
        value, _ = stoer_wagner(gxy.graph)
        if gamma == 0:
            # Zero intersections disconnect A u A' from B u B'.
            assert value == 0.0
        else:
            assert value == pytest.approx(2.0 * gamma)

    def test_hypothesis_flag(self):
        x, y = planted_strings(3, 2, seed=3)  # sqrt(N)=3 < 3*2
        gxy = build_gxy(x, y)
        assert not gxy.lemma_55_applicable()

    @given(st.sampled_from([6, 9]), st.integers(1, 2), st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_2gamma_connectivity_on_figure_pairs(self, side, gamma, seed):
        """Figures 3–6: every representative pair admits >= 2 gamma
        edge-disjoint paths."""
        x, y = planted_strings(side, gamma, seed)
        gxy = build_gxy(x, y)
        for u, v, _figure in representative_figure_pairs(gxy):
            assert edge_disjoint_path_count(gxy.graph, u, v) >= 2 * gamma

    def test_representative_pairs_cover_four_cases(self):
        x, y = planted_strings(4, 1, seed=4)
        gxy = build_gxy(x, y)
        pairs = representative_figure_pairs(gxy)
        assert len(pairs) == 4
        parts = {(u[0], v[0]) for u, v, _ in pairs}
        assert (PART_A, PART_A) in parts
        assert (PART_A, PART_A_PRIME) in parts
        assert (PART_A, PART_B_PRIME) in parts
        assert (PART_A, PART_B) in parts
