"""Tests for repro.streaming.sparsify_stream."""

import pytest

from repro.errors import ParameterError, SketchError
from repro.graphs.cuts import max_cut_error
from repro.graphs.generators import random_connected_ugraph
from repro.graphs.mincut import stoer_wagner
from repro.graphs.ugraph import UGraph
from repro.sketch.base import SketchModel
from repro.streaming.sparsify_stream import StreamingCutSparsifier


def stream_all(graph, **kwargs):
    sketch = StreamingCutSparsifier(graph.nodes(), **kwargs)
    sketch.extend(graph.edges())
    return sketch


class TestStreaming:
    def test_counts_and_model(self):
        g = random_connected_ugraph(12, extra_edge_prob=0.5, rng=0)
        sketch = stream_all(g, epsilon=0.5, block_size=20, rng=0)
        assert sketch.edges_seen == g.num_edges
        assert sketch.model is SketchModel.FOR_ALL

    def test_reduces_triggered_by_block_size(self):
        g = random_connected_ugraph(12, extra_edge_prob=0.8, rng=1)
        sketch = stream_all(g, epsilon=0.5, block_size=10, rng=1)
        assert sketch.reduce_count >= g.num_edges // 10 - 1

    def test_buffer_flushed_on_finish(self):
        g = random_connected_ugraph(10, rng=2)
        sketch = StreamingCutSparsifier(g.nodes(), epsilon=0.5, block_size=10**6, rng=2)
        sketch.extend(g.edges())
        assert sketch.reduce_count == 0
        final = sketch.finish()
        assert sketch.reduce_count == 1
        assert final.num_nodes == g.num_nodes

    def test_error_stays_within_budget_on_dense_graph(self):
        g = random_connected_ugraph(14, extra_edge_prob=0.9, rng=3)
        sketch = stream_all(g, epsilon=0.5, block_size=30, rng=3)
        err = max_cut_error(g, sketch.query)
        assert err <= 0.5 + 1e-9

    def test_min_cut_preserved(self):
        g = random_connected_ugraph(14, extra_edge_prob=0.6, rng=4)
        sketch = stream_all(g, epsilon=0.4, block_size=25, rng=4)
        true_value, _ = stoer_wagner(g)
        estimate, _ = stoer_wagner(sketch.finish())
        assert estimate == pytest.approx(true_value, rel=0.4)

    def test_query_mid_stream_counts_buffer_exactly(self):
        g = UGraph(edges=[("a", "b", 2.0), ("b", "c", 3.0)])
        sketch = StreamingCutSparsifier(
            ["a", "b", "c"], epsilon=0.5, block_size=10, rng=5
        )
        sketch.insert("a", "b", 2.0)
        assert sketch.query({"a"}) == pytest.approx(2.0)
        sketch.insert("b", "c", 3.0)
        assert sketch.query({"c"}) == pytest.approx(3.0)

    def test_resident_never_exceeds_stream(self):
        g = random_connected_ugraph(16, extra_edge_prob=0.7, rng=6)
        sketch = stream_all(g, epsilon=0.6, block_size=15, rng=6)
        assert sketch.resident_edges <= g.num_edges

    def test_parallel_edges_merge(self):
        sketch = StreamingCutSparsifier(["a", "b"], epsilon=0.5, rng=7)
        sketch.insert("a", "b", 1.0)
        sketch.insert("a", "b", 2.0)
        assert sketch.query({"a"}) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(SketchError):
            StreamingCutSparsifier(["a"], epsilon=0.5)
        with pytest.raises(SketchError):
            StreamingCutSparsifier(["a", "b"], epsilon=1.5)
        with pytest.raises(ParameterError):
            StreamingCutSparsifier(["a", "b"], epsilon=0.5, block_size=0)
        with pytest.raises(ParameterError):
            StreamingCutSparsifier(["a", "b"], epsilon=0.5, expected_reduces=0)
        sketch = StreamingCutSparsifier(["a", "b"], epsilon=0.5)
        with pytest.raises(SketchError):
            sketch.query(set())
