"""Tests for repro.distributed (servers + coordinator)."""

import pytest

from repro.distributed.coordinator import distributed_min_cut
from repro.distributed.server import Server, partition_edges, quantize_relative
from repro.errors import ParameterError
from repro.graphs.generators import random_regularish_ugraph
from repro.graphs.mincut import stoer_wagner
from repro.graphs.ugraph import UGraph


@pytest.fixture(scope="module")
def workload():
    g = random_regularish_ugraph(24, 8, rng=0)
    servers = partition_edges(g, 3, rng=1)
    true_value, _ = stoer_wagner(g)
    return g, servers, true_value


class TestQuantization:
    def test_relative_error_bound(self):
        for value in (1.0, 3.7, 123.456, 1e6):
            q, bits = quantize_relative(value, 0.01)
            assert abs(q - value) <= 0.01 * value
            assert bits > 0

    def test_zero_value(self):
        q, bits = quantize_relative(0.0, 0.1)
        assert q == 0.0
        assert bits > 0

    def test_more_precision_costs_more_bits(self):
        _, coarse = quantize_relative(100.0, 0.25)
        _, fine = quantize_relative(100.0, 0.001)
        assert fine > coarse

    def test_bad_precision(self):
        with pytest.raises(ParameterError):
            quantize_relative(1.0, 0.0)
        with pytest.raises(ParameterError):
            quantize_relative(1.0, 1.0)


class TestPartition:
    def test_edges_partitioned_exactly(self, workload):
        g, servers, _ = workload
        assert sum(s.num_edges for s in servers) == g.num_edges

    def test_every_server_knows_all_vertices(self, workload):
        g, servers, _ = workload
        for server in servers:
            assert set(server.shard.nodes()) == set(g.nodes())

    def test_bad_server_count(self, workload):
        g, _, _ = workload
        with pytest.raises(ParameterError):
            partition_edges(g, 0)


class TestServer:
    def test_cut_response_quantizes_local_cut(self, workload):
        g, servers, _ = workload
        side = set(list(g.nodes())[:5])
        for server in servers:
            response, bits = server.cut_value_response(side, 0.01)
            exact = server.shard.cut_weight(side)
            assert response == pytest.approx(exact, rel=0.01)

    def test_responses_sum_to_global_cut(self, workload):
        g, servers, _ = workload
        side = set(list(g.nodes())[:7])
        total = sum(s.cut_value_response(side, 0.0001)[0] for s in servers)
        assert total == pytest.approx(g.cut_weight(side), rel=0.001)

    def test_sketch_has_positive_size(self, workload):
        _, servers, _ = workload
        sketch = servers[0].forall_sketch(0.5, rng=2)
        assert sketch.size_bits() > 0

    def test_shard_copy_is_isolated(self, workload):
        _, servers, _ = workload
        shard = servers[0].shard
        before = servers[0].num_edges
        u, v, w = next(shard.edges())
        shard.remove_edge(u, v)
        assert servers[0].num_edges == before


class TestCoordinator:
    def test_hybrid_finds_near_minimum(self, workload):
        _, servers, true_value = workload
        result = distributed_min_cut(servers, epsilon=0.1, strategy="hybrid", rng=3)
        assert result.value == pytest.approx(true_value, rel=0.3)
        assert result.candidates_scored >= 1
        assert result.total_bits == result.sketch_bits + result.query_bits

    def test_forall_only_reports_no_query_bits(self, workload):
        _, servers, _ = workload
        result = distributed_min_cut(
            servers, epsilon=0.4, strategy="forall_only", rng=4
        )
        assert result.query_bits == 0
        assert result.sketch_bits > 0

    def test_returned_side_is_a_cut_of_the_union(self, workload):
        g, servers, _ = workload
        result = distributed_min_cut(servers, epsilon=0.2, strategy="hybrid", rng=5)
        assert 0 < len(result.side) < g.num_nodes
        # Re-scoring the reported side on the true graph approximates
        # the reported value within the quantization error.
        assert g.cut_weight(set(result.side)) == pytest.approx(
            result.value, rel=0.1
        )

    def test_bad_params(self, workload):
        _, servers, _ = workload
        with pytest.raises(ParameterError):
            distributed_min_cut([], epsilon=0.1)
        with pytest.raises(ParameterError):
            distributed_min_cut(servers, epsilon=0.0)
        with pytest.raises(ParameterError):
            distributed_min_cut(servers, epsilon=0.1, strategy="bogus")

    def test_hybrid_query_bits_grow_with_precision(self, workload):
        _, servers, _ = workload
        coarse = distributed_min_cut(servers, epsilon=0.5, strategy="hybrid", rng=6)
        fine = distributed_min_cut(servers, epsilon=0.01, strategy="hybrid", rng=6)
        assert fine.query_bits >= coarse.query_bits
