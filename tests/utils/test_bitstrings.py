"""Tests for repro.utils.bitstrings, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitstrings import (
    bits_to_signs,
    hamming_distance,
    hamming_weight,
    intersection_size,
    is_disjoint,
    pack_bits,
    random_bitstring,
    random_fixed_weight_bitstring,
    random_signstring,
    signs_to_bits,
    unpack_bits,
)


class TestSamplers:
    def test_bitstring_values(self):
        s = random_bitstring(200, rng=1)
        assert s.shape == (200,)
        assert set(np.unique(s)) <= {0, 1}

    def test_signstring_values(self):
        s = random_signstring(200, rng=1)
        assert set(np.unique(s)) <= {-1, 1}

    def test_fixed_weight_exact(self):
        for weight in (0, 3, 10):
            s = random_fixed_weight_bitstring(10, weight, rng=weight)
            assert hamming_weight(s) == weight

    def test_fixed_weight_bad_weight(self):
        with pytest.raises(ValueError):
            random_fixed_weight_bitstring(4, 5)
        with pytest.raises(ValueError):
            random_fixed_weight_bitstring(4, -1)

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            random_bitstring(-1)
        with pytest.raises(ValueError):
            random_signstring(-1)

    def test_zero_length_ok(self):
        assert random_bitstring(0).shape == (0,)

    def test_samplers_are_seed_deterministic(self):
        assert np.array_equal(random_bitstring(64, rng=3), random_bitstring(64, rng=3))
        assert np.array_equal(
            random_fixed_weight_bitstring(64, 32, rng=3),
            random_fixed_weight_bitstring(64, 32, rng=3),
        )


class TestArithmetic:
    def test_hamming_distance_basic(self):
        x = np.array([0, 1, 1, 0], dtype=np.int8)
        y = np.array([1, 1, 0, 0], dtype=np.int8)
        assert hamming_distance(x, y) == 2

    def test_intersection_and_disjoint(self):
        x = np.array([1, 1, 0], dtype=np.int8)
        y = np.array([0, 1, 1], dtype=np.int8)
        assert intersection_size(x, y) == 1
        assert not is_disjoint(x, y)
        assert is_disjoint(x, np.array([0, 0, 1], dtype=np.int8))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_distance(np.zeros(3, dtype=np.int8), np.zeros(4, dtype=np.int8))
        with pytest.raises(ValueError):
            intersection_size(np.zeros(3, dtype=np.int8), np.zeros(4, dtype=np.int8))

    @given(st.integers(1, 200), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_distance_identity_property(self, length, seed):
        x = random_bitstring(length, rng=seed)
        y = random_bitstring(length, rng=seed + 1)
        # Delta(x, y) = |x| + |y| - 2 INT(x, y), the identity Section 4 uses.
        assert hamming_distance(x, y) == (
            hamming_weight(x) + hamming_weight(y) - 2 * intersection_size(x, y)
        )

    @given(st.integers(1, 100), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_distance_is_symmetric_and_bounded(self, length, seed):
        x = random_bitstring(length, rng=seed)
        y = random_bitstring(length, rng=seed + 7)
        assert hamming_distance(x, y) == hamming_distance(y, x)
        assert 0 <= hamming_distance(x, y) <= length


class TestPacking:
    @given(st.integers(1, 300), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_pack_unpack_roundtrip(self, length, seed):
        s = random_bitstring(length, rng=seed)
        assert np.array_equal(unpack_bits(pack_bits(s), length), s)

    def test_pack_charges_ceil_bytes(self):
        assert len(pack_bits(np.zeros(9, dtype=np.int8))) == 2
        assert len(pack_bits(np.zeros(8, dtype=np.int8))) == 1

    def test_pack_rejects_non_binary(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([0, 2], dtype=np.int8))

    def test_unpack_too_short_raises(self):
        with pytest.raises(ValueError):
            unpack_bits(b"\x00", 9)

    @given(st.integers(1, 100), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sign_bit_conversion_roundtrip(self, length, seed):
        s = random_signstring(length, rng=seed)
        assert np.array_equal(bits_to_signs(signs_to_bits(s)), s)

    def test_sign_conversion_rejects_bad_values(self):
        with pytest.raises(ValueError):
            signs_to_bits(np.array([0], dtype=np.int8))
        with pytest.raises(ValueError):
            bits_to_signs(np.array([-1], dtype=np.int8))
