"""Tests for repro.utils.stats."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    RunningStat,
    TrialSummary,
    binomial_confidence_interval,
    estimate_success_probability,
    median_of_trials,
)


class TestRunningStat:
    def test_mean_and_variance(self):
        stat = RunningStat()
        for v in (1.0, 2.0, 3.0, 4.0):
            stat.add(v)
        assert stat.mean == pytest.approx(2.5)
        assert stat.variance == pytest.approx(5.0 / 3.0)
        assert stat.stddev == pytest.approx(math.sqrt(5.0 / 3.0))

    def test_single_observation(self):
        stat = RunningStat()
        stat.add(7.0)
        assert stat.mean == 7.0
        assert stat.variance == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStat().mean
        with pytest.raises(ValueError):
            RunningStat().variance

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_matches_two_pass(self, values):
        stat = RunningStat()
        for v in values:
            stat.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stat.mean == pytest.approx(mean, abs=1e-6)
        assert stat.variance == pytest.approx(var, rel=1e-6, abs=1e-6)


class TestConfidenceInterval:
    def test_interval_contains_rate(self):
        lo, hi = binomial_confidence_interval(70, 100)
        assert lo < 0.7 < hi

    def test_extremes_clamped(self):
        lo, hi = binomial_confidence_interval(0, 10)
        assert lo == 0.0
        lo, hi = binomial_confidence_interval(10, 10)
        assert hi == 1.0

    def test_wider_with_fewer_trials(self):
        small = binomial_confidence_interval(7, 10)
        big = binomial_confidence_interval(700, 1000)
        assert (small[1] - small[0]) > (big[1] - big[0])

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            binomial_confidence_interval(1, 0)
        with pytest.raises(ValueError):
            binomial_confidence_interval(5, 4)
        with pytest.raises(ValueError):
            binomial_confidence_interval(1, 10, confidence=1.5)

    @given(st.integers(1, 200), st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_interval_ordered_and_in_unit_range(self, trials, successes):
        if successes > trials:
            return
        lo, hi = binomial_confidence_interval(successes, trials)
        assert 0.0 <= lo <= hi <= 1.0


class TestTrialSummary:
    def test_rate(self):
        s = TrialSummary(successes=3, trials=4)
        assert s.rate == 0.75

    def test_exceeds_uses_lower_bound(self):
        confident = TrialSummary(successes=990, trials=1000)
        assert confident.exceeds(0.9)
        shaky = TrialSummary(successes=3, trials=4)
        assert not shaky.exceeds(0.7)

    def test_zero_trials_rate_raises(self):
        with pytest.raises(ValueError):
            TrialSummary(successes=0, trials=1).rate  # fine
            TrialSummary(successes=0, trials=0)


class TestEstimateSuccessProbability:
    def test_counts_successes(self):
        summary = estimate_success_probability(
            lambda rng: bool(rng.random() < 2.0), trials=10, rng=1
        )
        assert summary.successes == 10

    def test_deterministic_under_seed(self):
        trial = lambda rng: bool(rng.random() < 0.5)
        a = estimate_success_probability(trial, trials=50, rng=3)
        b = estimate_success_probability(trial, trials=50, rng=3)
        assert a.successes == b.successes

    def test_zero_trials_raises(self):
        with pytest.raises(ValueError):
            estimate_success_probability(lambda rng: True, trials=0)


class TestMedian:
    def test_odd(self):
        assert median_of_trials([3.0, 1.0, 2.0]) == 2.0

    def test_even(self):
        assert median_of_trials([4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median_of_trials([])

    def test_boosting_rejects_outlier(self):
        # One corrupted query out of three cannot move the median: the
        # footnote-2 boosting argument in miniature.
        assert median_of_trials([10.0, 10.2, 99.0]) == 10.2
