"""Tests for repro.utils.rng."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, size=8)
        b = ensure_rng(42).integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1 << 30, size=8)
        b = ensure_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed_accepted(self):
        seed = np.int64(5)
        assert isinstance(ensure_rng(seed), np.random.Generator)

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 1 << 30, size=16)
        b = children[1].integers(0, 1 << 30, size=16)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        a = [g.integers(0, 1 << 30) for g in spawn_rngs(9, 3)]
        b = [g.integers(0, 1 << 30) for g in spawn_rngs(9, 3)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestSpawnSeeds:
    """The seed-splitting contract of the parallel trial engine."""

    def test_matches_spawn_rngs_streams(self):
        from repro.utils.rng import spawn_seeds

        seeds = spawn_seeds(11, 4)
        via_seeds = [
            np.random.default_rng(s).integers(0, 1 << 30, size=8)
            for s in seeds
        ]
        via_rngs = [
            g.integers(0, 1 << 30, size=8) for g in spawn_rngs(11, 4)
        ]
        for a, b in zip(via_seeds, via_rngs):
            assert np.array_equal(a, b)

    def test_plain_ints(self):
        from repro.utils.rng import spawn_seeds

        for seed in spawn_seeds(3, 6):
            assert type(seed) is int
            assert 0 <= seed < 2**63

    def test_negative_count_raises(self):
        from repro.utils.rng import spawn_seeds

        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestSplitInvariance:
    """Property: per-trial streams are independent of how trials are
    later split across workers — the bit-identity guarantee of
    repro.parallel rests on this.
    """

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_trials=st.integers(min_value=0, max_value=24),
        splits=st.sampled_from([1, 2, 3, 7]),
    )
    @settings(max_examples=60, deadline=None)
    def test_draws_independent_of_split_count(self, seed, n_trials, splits):
        from repro.utils.rng import spawn_seeds

        # Canonical: split all trials in one call.
        canonical = spawn_seeds(seed, n_trials)
        draws = [
            np.random.default_rng(s).random(4).tolist() for s in canonical
        ]

        # Chunked: the same seeds partitioned into `splits` contiguous
        # chunks (what the pool's chunk plan does) must replay the same
        # per-trial streams regardless of the chunk boundaries.
        size = max(1, -(-n_trials // splits))
        chunked = []
        for start in range(0, n_trials, size):
            chunk = canonical[start : start + size]
            chunked.extend(
                np.random.default_rng(s).random(4).tolist() for s in chunk
            )
        assert chunked == draws

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_prefix_stability(self, seed):
        from repro.utils.rng import spawn_seeds

        # Seeds are drawn in one vectorized call; a shorter split of the
        # same parent must be a prefix of a longer one only when the
        # parent state is identical — verify the documented behaviour
        # that each call consumes the parent stream deterministically.
        a = spawn_seeds(seed, 7)
        b = spawn_seeds(seed, 7)
        assert a == b
