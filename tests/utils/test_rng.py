"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, size=8)
        b = ensure_rng(42).integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1 << 30, size=8)
        b = ensure_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed_accepted(self):
        seed = np.int64(5)
        assert isinstance(ensure_rng(seed), np.random.Generator)

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 1 << 30, size=16)
        b = children[1].integers(0, 1 << 30, size=16)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        a = [g.integers(0, 1 << 30) for g in spawn_rngs(9, 3)]
        b = [g.integers(0, 1 << 30) for g in spawn_rngs(9, 3)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
