"""Tests for store integrity verification (fsck)."""

import json
import zlib

import pytest

from repro.obs.store.fsck import fsck
from repro.obs.store.repo import ExperimentStore


@pytest.fixture
def store(tmp_path):
    s = ExperimentStore.init(tmp_path / "store")
    for n in (1, 2):
        s.commit_artifacts(
            {"telemetry.jsonl": (
                json.dumps({"event": "summary", "n": n}).encode(), "telemetry")},
            message=f"run {n}",
        )
    return s


class TestCleanStore:
    def test_ok_and_fully_reachable(self, store):
        report = fsck(store)
        assert report.ok
        assert report.errors == []
        assert report.commits == 2
        assert report.trees == 2
        assert report.blobs == 2
        assert report.reachable == report.objects_checked
        assert "OK" in report.summary()

    def test_fresh_store_is_ok(self, tmp_path):
        report = fsck(ExperimentStore.init(tmp_path / "fresh"))
        assert report.ok
        assert report.objects_checked == 0


class TestCorruption:
    def _some_blob_path(self, store):
        for oid in store.objects.iter_oids():
            kind, _ = store.objects.read(oid)
            if kind == "blob":
                return oid, store.objects.path_for(oid)
        raise AssertionError("no blob in store")

    def test_bit_flip_detected(self, store):
        oid, path = self._some_blob_path(store)
        decompressed = bytearray(zlib.decompress(path.read_bytes()))
        decompressed[-1] ^= 0x01  # flip one bit of the body
        path.write_bytes(zlib.compress(bytes(decompressed)))
        report = fsck(store)
        assert not report.ok
        assert any(
            i.subject == oid and "hash mismatch" in i.message
            for i in report.errors
        )

    def test_unreadable_object_detected(self, store):
        oid, path = self._some_blob_path(store)
        path.write_bytes(b"this is not zlib data")
        report = fsck(store)
        assert not report.ok
        assert any("unreadable object" in i.message for i in report.errors)

    def test_missing_referenced_blob_detected(self, store):
        oid, path = self._some_blob_path(store)
        path.unlink()
        report = fsck(store)
        assert not report.ok
        assert any("missing blob" in i.message for i in report.errors)

    def test_branch_at_missing_commit_detected(self, store):
        store.refs.update_branch("main", "0" * 64)
        report = fsck(store)
        assert not report.ok
        assert any(
            i.subject == "refs/heads/main" and "missing object" in i.message
            for i in report.errors
        )

    def test_dangling_object_is_warning_not_error(self, store):
        store.objects.write_blob(b"orphan: written but never committed")
        report = fsck(store)
        assert report.ok
        assert any("dangling blob" in i.message for i in report.warnings)

    def test_corrupt_reflog_detected(self, store):
        with store.refs.reflog_path.open("a") as fh:
            fh.write("{torn write\n")
        report = fsck(store)
        assert not report.ok
        assert any(i.subject == "reflog" for i in report.errors)

    def test_corrupt_head_detected(self, store):
        store.refs.head_path.write_text("nonsense\n")
        report = fsck(store)
        assert not report.ok
        assert any(i.subject == "HEAD" for i in report.errors)
