"""Tests for branches, tags, HEAD, and the reflog."""

import pytest

from repro.obs.store.objects import StoreError
from repro.obs.store.refs import RefStore, validate_ref_name

OID_A = "a" * 64
OID_B = "b" * 64


@pytest.fixture
def refs(tmp_path):
    r = RefStore(tmp_path / "store")
    r.heads_dir.mkdir(parents=True)
    r.tags_dir.mkdir(parents=True)
    r.set_head_branch("main", message="init")
    return r


class TestRefNames:
    @pytest.mark.parametrize(
        "name", ["main", "lines/kernels", "v1.0", "a_b-c.d", "deep/er/still"]
    )
    def test_valid(self, name):
        assert validate_ref_name(name) == name

    @pytest.mark.parametrize(
        "name",
        ["", "a//b", "../escape", "refs/../../etc", "a/.", "-flag", "sp ace",
         "semi;colon"],
    )
    def test_invalid(self, name):
        with pytest.raises(StoreError):
            validate_ref_name(name)

    def test_traversal_cannot_escape_refs_dir(self, refs):
        with pytest.raises(StoreError):
            refs.branch_path("../../outside")


class TestBranches:
    def test_update_creates_and_moves(self, refs):
        refs.update_branch("main", OID_A)
        assert refs.read_branch("main") == OID_A
        refs.update_branch("main", OID_B)
        assert refs.read_branch("main") == OID_B

    def test_missing_branch_reads_none(self, refs):
        assert refs.read_branch("nope") is None

    def test_list_branches_includes_nested(self, refs):
        refs.update_branch("main", OID_A)
        refs.update_branch("lines/kernels", OID_B)
        assert refs.list_branches() == ["lines/kernels", "main"]

    def test_delete_refuses_checked_out(self, refs):
        refs.update_branch("main", OID_A)
        with pytest.raises(StoreError, match="checked-out"):
            refs.delete_branch("main")

    def test_delete_other_branch(self, refs):
        refs.update_branch("scratch", OID_A)
        refs.delete_branch("scratch")
        assert refs.read_branch("scratch") is None

    def test_corrupt_ref_file_raises(self, refs):
        refs.update_branch("main", OID_A)
        refs.branch_path("main").write_text("not a commit id\n")
        with pytest.raises(StoreError, match="does not hold a commit id"):
            refs.read_branch("main")


class TestTags:
    def test_create_and_read(self, refs):
        refs.create_tag("baseline", OID_A)
        assert refs.read_tag("baseline") == OID_A
        assert refs.list_tags() == ["baseline"]

    def test_tags_are_immutable(self, refs):
        refs.create_tag("baseline", OID_A)
        with pytest.raises(StoreError, match="already exists"):
            refs.create_tag("baseline", OID_B)


class TestHead:
    def test_symbolic_head(self, refs):
        assert refs.head() == ("branch", "main")
        assert refs.current_branch() == "main"

    def test_unborn_branch_resolves_none(self, refs):
        assert refs.resolve_head() is None

    def test_resolves_through_branch(self, refs):
        refs.update_branch("main", OID_A)
        assert refs.resolve_head() == OID_A

    def test_detached_head(self, refs):
        refs.set_head_detached(OID_B)
        assert refs.head() == ("detached", OID_B)
        assert refs.current_branch() is None
        assert refs.resolve_head() == OID_B

    def test_missing_head_means_not_a_store(self, tmp_path):
        with pytest.raises(StoreError, match="not an experiment store"):
            RefStore(tmp_path / "empty").head()

    def test_corrupt_head_raises(self, refs):
        refs.head_path.write_text("garbage\n")
        with pytest.raises(StoreError, match="corrupt HEAD"):
            refs.head()


class TestReflog:
    def test_moves_are_logged(self, refs):
        refs.update_branch("main", OID_A, message="first commit")
        refs.update_branch("main", OID_B, message="second commit")
        log = refs.reflog()
        moves = [r for r in log if r["ref"] == "refs/heads/main"]
        assert [m["new"] for m in moves] == [OID_A, OID_B]
        assert moves[1]["old"] == OID_A
        assert moves[1]["message"] == "second commit"

    def test_empty_reflog(self, tmp_path):
        assert RefStore(tmp_path / "fresh").reflog() == []

    def test_corrupt_reflog_raises(self, refs):
        with refs.reflog_path.open("a") as fh:
            fh.write("{broken\n")
        with pytest.raises(StoreError, match="corrupt reflog"):
            refs.reflog()
