"""Tests for classify() and the structural commit diff."""

import json

import pytest

from repro.obs.store.diff import (
    IMPROVED,
    NEUTRAL,
    REGRESSED,
    DiffThresholds,
    classify,
    commit_gate_status,
    commit_metric_value,
    diff_commits,
    metric_deltas,
)
from repro.obs.store.repo import ExperimentStore


def telemetry_blob(counters, spans=None):
    """Telemetry JSONL bytes with given summary counters and span times."""
    events = []
    for path, wall in (spans or {}).items():
        events.append(
            {"event": "span", "path": path, "depth": 0, "wall_s": wall,
             "status": "ok"}
        )
    events.append(
        {"event": "summary",
         "metrics": {"counters": counters, "gauges": {}, "histograms": {}}}
    )
    return "".join(json.dumps(e) + "\n" for e in events).encode()


def capture_blob(digests, family=None, seed=None):
    """Capture JSONL bytes with one message per digest."""
    meta = {}
    if family is not None:
        meta = {"family": family, "seed": seed}
    events = [{"event": "wire_capture", "version": 1, "meta": meta}]
    for seq, digest in enumerate(digests):
        events.append(
            {"event": "wire", "seq": seq, "sender": "alice", "receiver":
             "bob", "kind": "sketch", "bits": 128, "digest": digest,
             "span": ""}
        )
    return "".join(json.dumps(e) + "\n" for e in events).encode()


def bench_blob(ratio, passed):
    return json.dumps({"gate": {"ratio": ratio, "passed": passed}}).encode()


@pytest.fixture
def store(tmp_path):
    return ExperimentStore.init(tmp_path / "store")


def commit_run(store, files, message="run"):
    return store.commit_artifacts(files, message=message)


class TestClassify:
    def test_identical_is_neutral(self):
        assert classify(100.0, 100.0) == (NEUTRAL, "")

    def test_within_threshold_is_neutral(self):
        verdict, _ = classify(100.0, 104.9)
        assert verdict == NEUTRAL

    def test_exactly_at_threshold_is_neutral(self):
        verdict, _ = classify(100.0, 105.0)
        assert verdict == NEUTRAL

    def test_above_threshold_regresses(self):
        verdict, _ = classify(100.0, 105.1)
        assert verdict == REGRESSED

    def test_below_threshold_improves(self):
        verdict, _ = classify(100.0, 90.0)
        assert verdict == IMPROVED

    def test_higher_is_better_flips_direction(self):
        assert classify(100.0, 150.0, lower_is_better=False)[0] == IMPROVED
        assert classify(100.0, 50.0, lower_is_better=False)[0] == REGRESSED

    def test_missing_values_are_neutral_with_notes(self):
        verdict, note = classify(None, 5.0)
        assert verdict == NEUTRAL and "new metric" in note
        verdict, note = classify(5.0, None)
        assert verdict == NEUTRAL and "gone" in note

    def test_zero_baseline_classified_by_direction(self):
        verdict, note = classify(0.0, 10.0)
        assert verdict == REGRESSED and note == "zero baseline"
        assert classify(0.0, -1.0)[0] == IMPROVED

    def test_non_finite_is_neutral(self):
        assert classify(float("nan"), 1.0)[0] == NEUTRAL


class TestMetricDeltas:
    def test_unchanged_metrics_skipped_by_default(self):
        deltas = metric_deltas({"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 4.0})
        assert [d.name for d in deltas] == ["b"]
        assert deltas[0].verdict == REGRESSED
        assert deltas[0].delta == 2.0

    def test_include_unchanged(self):
        deltas = metric_deltas({"a": 1.0}, {"a": 1.0}, include_unchanged=True)
        assert [d.verdict for d in deltas] == [NEUTRAL]


class TestDiffCommits:
    def test_single_perturbed_metric_flags_exactly_that_metric(self, store):
        base = commit_run(store, {
            "telemetry.jsonl": (
                telemetry_blob({"comm.bits": 1000.0, "oracle.calls": 50.0}),
                "telemetry",
            ),
        })
        other = commit_run(store, {
            "telemetry.jsonl": (
                telemetry_blob({"comm.bits": 2000.0, "oracle.calls": 50.0}),
                "telemetry",
            ),
        })
        diff = diff_commits(store, base, other)
        assert diff.verdict == REGRESSED
        assert diff.regressions == ["comm.bits"]
        assert [m.name for m in diff.metrics] == ["comm.bits"]

    def test_improvement_without_regression(self, store):
        base = commit_run(store, {
            "telemetry.jsonl": (telemetry_blob({"comm.bits": 1000.0}), "telemetry"),
        })
        other = commit_run(store, {
            "telemetry.jsonl": (telemetry_blob({"comm.bits": 500.0}), "telemetry"),
        })
        diff = diff_commits(store, base, other)
        assert diff.verdict == IMPROVED
        assert diff.improvements == ["comm.bits"]

    def test_identical_runs_are_neutral(self, store):
        blob = telemetry_blob({"comm.bits": 1000.0})
        base = commit_run(store, {"telemetry.jsonl": (blob, "telemetry")})
        other = commit_run(store, {"telemetry.jsonl": (blob, "telemetry")})
        diff = diff_commits(store, base, other)
        assert diff.verdict == NEUTRAL
        assert diff.metrics == []

    def test_slow_span_flags_with_ratio(self, store):
        base = commit_run(store, {
            "telemetry.jsonl": (
                telemetry_blob({}, spans={"experiment.e1": 0.1}), "telemetry"),
        })
        other = commit_run(store, {
            "telemetry.jsonl": (
                telemetry_blob({}, spans={"experiment.e1": 0.4}), "telemetry"),
        })
        diff = diff_commits(store, base, other)
        (span,) = diff.spans
        assert span.path == "experiment.e1"
        assert span.ratio == pytest.approx(4.0)
        assert diff.verdict == REGRESSED

    def test_sub_floor_span_noise_ignored(self, store):
        base = commit_run(store, {
            "telemetry.jsonl": (
                telemetry_blob({}, spans={"experiment.e1": 0.0001}), "telemetry"),
        })
        other = commit_run(store, {
            "telemetry.jsonl": (
                telemetry_blob({}, spans={"experiment.e1": 0.0004}), "telemetry"),
        })
        diff = diff_commits(store, base, other)
        assert diff.spans == []
        assert diff.verdict == NEUTRAL

    def test_missing_telemetry_noted_not_crashed(self, store):
        base = commit_run(store, {"BENCH_X.json": (bench_blob(1.0, True), "bench")})
        other = commit_run(store, {
            "telemetry.jsonl": (telemetry_blob({"a": 1.0}), "telemetry"),
        })
        diff = diff_commits(store, base, other)
        assert any("telemetry blob missing" in note for note in diff.notes)
        assert diff.metrics == []

    def test_gate_flip_to_failed_regresses(self, store):
        base = commit_run(store, {
            "BENCH_X.json": (bench_blob(1.0, True), "bench"),
            "telemetry.jsonl": (telemetry_blob({}), "telemetry"),
        })
        other = commit_run(store, {
            "BENCH_X.json": (bench_blob(1.4, False), "bench"),
            "telemetry.jsonl": (telemetry_blob({}), "telemetry"),
        })
        diff = diff_commits(store, base, other)
        (gate,) = diff.gates
        assert gate.verdict == REGRESSED
        assert diff.verdict == REGRESSED
        assert "BENCH_X.json" in diff.regressions

    def test_gate_flip_to_passed_improves(self, store):
        base = commit_run(store, {
            "BENCH_X.json": (bench_blob(1.4, False), "bench"),
            "telemetry.jsonl": (telemetry_blob({}), "telemetry"),
        })
        other = commit_run(store, {
            "BENCH_X.json": (bench_blob(1.0, True), "bench"),
            "telemetry.jsonl": (telemetry_blob({}), "telemetry"),
        })
        diff = diff_commits(store, base, other)
        assert diff.gates[0].verdict == IMPROVED
        assert diff.verdict == IMPROVED

    def test_identical_wire_transcripts(self, store):
        blob = capture_blob(["d1", "d2"])
        base = commit_run(store, {
            "wire.capture.jsonl": (blob, "capture"),
            "telemetry.jsonl": (telemetry_blob({}), "telemetry"),
        })
        other = commit_run(store, {
            "wire.capture.jsonl": (blob, "capture"),
            "telemetry.jsonl": (telemetry_blob({}), "telemetry"),
        })
        diff = diff_commits(store, base, other)
        assert diff.wire["divergence"] is None
        assert diff.wire["base_messages"] == 2

    def test_diverging_wire_transcripts_pinpointed(self, store):
        base = commit_run(store, {
            "wire.capture.jsonl": (capture_blob(["d1", "d2"]), "capture"),
            "telemetry.jsonl": (telemetry_blob({}), "telemetry"),
        })
        other = commit_run(store, {
            "wire.capture.jsonl": (capture_blob(["d1", "XX"]), "capture"),
            "telemetry.jsonl": (telemetry_blob({}), "telemetry"),
        })
        diff = diff_commits(store, base, other)
        divergence = diff.wire["divergence"]
        assert divergence["index"] == 1
        assert divergence["field"] == "digest"

    def test_render_mentions_verdict_and_tables(self, store):
        base = commit_run(store, {
            "telemetry.jsonl": (telemetry_blob({"comm.bits": 100.0}), "telemetry"),
        })
        other = commit_run(store, {
            "telemetry.jsonl": (telemetry_blob({"comm.bits": 300.0}), "telemetry"),
        })
        text = diff_commits(store, base, other).render()
        assert "REGRESSED" in text
        assert "comm.bits" in text
        assert "metric deltas" in text

    def test_as_dict_is_json_serialisable(self, store):
        base = commit_run(store, {
            "telemetry.jsonl": (telemetry_blob({"a": 1.0}), "telemetry"),
        })
        other = commit_run(store, {
            "telemetry.jsonl": (telemetry_blob({"a": 3.0}), "telemetry"),
        })
        payload = json.loads(json.dumps(diff_commits(store, base, other).as_dict()))
        assert payload["verdict"] == REGRESSED

    def test_custom_thresholds(self, store):
        base = commit_run(store, {
            "telemetry.jsonl": (telemetry_blob({"a": 100.0}), "telemetry"),
        })
        other = commit_run(store, {
            "telemetry.jsonl": (telemetry_blob({"a": 110.0}), "telemetry"),
        })
        loose = diff_commits(
            store, base, other, thresholds=DiffThresholds(metric=0.5)
        )
        assert loose.verdict == NEUTRAL
        tight = diff_commits(
            store, base, other, thresholds=DiffThresholds(metric=0.01)
        )
        assert tight.verdict == REGRESSED


class TestCommitValueHelpers:
    def test_commit_metric_value(self, store):
        oid = commit_run(store, {
            "telemetry.jsonl": (telemetry_blob({"a": 42.0}), "telemetry"),
        })
        assert commit_metric_value(store, oid, "a") == 42.0
        assert commit_metric_value(store, oid, "nope") is None

    def test_commit_gate_status(self, store):
        oid = commit_run(store, {
            "BENCH_X.json": (bench_blob(1.2, True), "bench"),
            "telemetry.jsonl": (telemetry_blob({}), "telemetry"),
        })
        assert commit_gate_status(store, oid, "BENCH_X.json") == (1.2, True)
        assert commit_gate_status(store, oid, "BENCH_Y.json") == (None, None)
