"""Tests for the ExperimentStore facade and the run_all bridge."""

import json

import pytest

from repro.obs.store.objects import StoreError
from repro.obs.store.repo import (
    ExperimentStore,
    bounds_summary,
    collect_run_files,
    events_from_bytes,
)


@pytest.fixture
def store(tmp_path):
    return ExperimentStore.init(tmp_path / "store")


def _commit(store, n, branch=None, **meta):
    return store.commit_artifacts(
        {"telemetry.jsonl": (f'{{"event":"summary","n":{n}}}\n'.encode(), "telemetry")},
        message=f"run {n}",
        branch=branch,
        meta=meta,
        timestamp=1000.0 + n,
    )


class TestLifecycle:
    def test_init_creates_layout(self, tmp_path):
        store = ExperimentStore.init(tmp_path / "s")
        assert ExperimentStore.is_store(tmp_path / "s")
        assert store.refs.head() == ("branch", "main")

    def test_init_is_idempotent(self, store):
        oid = _commit(store, 1)
        again = ExperimentStore.init(store.root)
        assert again.refs.resolve_head() == oid

    def test_open_rejects_non_store(self, tmp_path):
        with pytest.raises(StoreError, match="not an experiment store"):
            ExperimentStore.open(tmp_path / "nothing")


class TestCommit:
    def test_commit_advances_branch_with_parent_links(self, store):
        first = _commit(store, 1)
        second = _commit(store, 2)
        assert store.refs.read_branch("main") == second
        commit = store.read_commit(second)
        assert commit.parents == (first,)
        assert store.read_commit(first).parents == ()

    def test_empty_commit_refused(self, store):
        with pytest.raises(StoreError, match="empty commit"):
            store.commit_artifacts({}, message="nothing")

    def test_detached_head_needs_explicit_branch(self, store):
        oid = _commit(store, 1)
        store.checkout(oid)
        with pytest.raises(StoreError, match="detached"):
            _commit(store, 2)

    def test_new_branch_starts_independent_line(self, store):
        _commit(store, 1)
        other = _commit(store, 2, branch="lines/kernels")
        assert store.read_commit(other).parents == ()
        assert store.refs.read_branch("lines/kernels") == other
        # main is untouched
        assert store.refs.read_branch("main") != other

    def test_meta_round_trips(self, store):
        oid = _commit(store, 1, experiments=["e1"], kernels="python")
        meta = store.read_commit(oid).meta
        assert meta["experiments"] == ["e1"]
        assert meta["kernels"] == "python"


class TestResolve:
    def test_head_and_tilde(self, store):
        first = _commit(store, 1)
        second = _commit(store, 2)
        third = _commit(store, 3)
        assert store.resolve("HEAD") == third
        assert store.resolve("HEAD~1") == second
        assert store.resolve("HEAD~2") == first
        assert store.resolve("HEAD~~") == first

    def test_tilde_past_root_raises(self, store):
        _commit(store, 1)
        with pytest.raises(StoreError, match="no parent"):
            store.resolve("HEAD~5")

    def test_branch_tag_and_prefix(self, store):
        oid = _commit(store, 1)
        store.refs.create_tag("baseline", oid)
        assert store.resolve("main") == oid
        assert store.resolve("baseline") == oid
        assert store.resolve(oid[:8]) == oid
        assert store.resolve(oid) == oid

    def test_non_commit_object_rejected(self, store):
        _commit(store, 1)
        blob_oid = store.tree_files(store.resolve("HEAD"))["telemetry.jsonl"][0]
        with pytest.raises(StoreError, match="names a blob"):
            store.resolve(blob_oid)

    def test_unknown_revision(self, store):
        _commit(store, 1)
        with pytest.raises(StoreError, match="unknown revision"):
            store.resolve("no-such-thing")


class TestHistory:
    def test_log_newest_first_history_oldest_first(self, store):
        oids = [_commit(store, n) for n in (1, 2, 3)]
        assert [oid for oid, _ in store.log()] == list(reversed(oids))
        assert [oid for oid, _ in store.history()] == oids

    def test_log_limit(self, store):
        for n in (1, 2, 3):
            _commit(store, n)
        assert len(store.log(limit=2)) == 2


class TestCheckout:
    def test_branch_checkout_is_symbolic(self, store):
        _commit(store, 1)
        _commit(store, 2, branch="lines/x")
        store.checkout("lines/x")
        assert store.refs.head() == ("branch", "lines/x")

    def test_commit_checkout_detaches(self, store):
        first = _commit(store, 1)
        _commit(store, 2)
        store.checkout(first[:10])
        assert store.refs.head() == ("detached", first)

    def test_extracts_artifacts(self, store, tmp_path):
        _commit(store, 7)
        out = tmp_path / "out"
        store.checkout("HEAD", out_dir=out)
        data = (out / "telemetry.jsonl").read_text()
        assert json.loads(data)["n"] == 7


class TestRunAllBridge:
    def test_events_from_bytes_round_trip(self):
        raw = b'{"event":"span"}\n\n{"event":"summary"}\n'
        events = events_from_bytes(raw)
        assert [e["event"] for e in events] == ["span", "summary"]

    def test_events_from_bytes_rejects_corruption(self):
        with pytest.raises(StoreError, match="not valid JSON"):
            events_from_bytes(b'{"ok":1}\n{broken\n')

    def test_bounds_summary_counts_violations(self):
        events = [
            {"event": "bound_check", "spec": "a", "status": "pass", "seq": 1},
            {"event": "bound_check", "spec": "b", "status": "violation"},
            {"event": "row"},
        ]
        payload = json.loads(bounds_summary(events))
        assert payload["violations"] == 1
        assert len(payload["checks"]) == 2
        assert "seq" not in payload["checks"][0]

    def test_collect_run_files_derives_bounds(self, tmp_path):
        telemetry = tmp_path / "t.jsonl"
        telemetry.write_text(
            '{"event": "bound_check", "spec": "x", "status": "pass"}\n'
            '{"event": "summary", "metrics": {}}\n'
        )
        bench = tmp_path / "BENCH_PR9.json"
        bench.write_text('{"gate": {"passed": true}}')
        files = collect_run_files(
            telemetry_path=telemetry, bench_paths=[bench]
        )
        assert files["telemetry.jsonl"][1] == "telemetry"
        assert files["bounds.json"][1] == "bounds"
        assert files["BENCH_PR9.json"][1] == "bench"
        assert json.loads(files["bounds.json"][0])["violations"] == 0

    def test_collect_run_files_requires_something(self):
        with pytest.raises(StoreError, match="nothing to commit"):
            collect_run_files()
