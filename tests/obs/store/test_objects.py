"""Tests for the content-addressed object layer."""

import pytest

from repro.obs.store.objects import (
    Commit,
    ObjectStore,
    StoreError,
    Tree,
    TreeEntry,
    decode_object,
    encode_object,
    hash_object,
    short_oid,
    tree_from_files,
)


@pytest.fixture
def store(tmp_path):
    s = ObjectStore(tmp_path / "store")
    s.objects_dir.mkdir(parents=True)
    return s


class TestFraming:
    def test_round_trip(self):
        framed = encode_object("blob", b"hello")
        assert framed == b"blob 5\x00hello"
        assert decode_object(framed) == ("blob", b"hello")

    def test_unknown_kind_rejected(self):
        with pytest.raises(StoreError, match="unknown object kind"):
            encode_object("banana", b"")

    def test_size_mismatch_rejected(self):
        with pytest.raises(StoreError, match="header claims"):
            decode_object(b"blob 99\x00short")

    def test_missing_separator_rejected(self):
        with pytest.raises(StoreError, match="corrupt object header"):
            decode_object(b"no separator at all")

    def test_hash_is_stable(self):
        # The address is a pure function of (kind, content); pin it so
        # stores written by different sessions stay interoperable.
        assert hash_object("blob", b"x") == hash_object("blob", b"x")
        assert hash_object("blob", b"x") != hash_object("tree", b"x")


class TestObjectStore:
    def test_write_read_round_trip(self, store):
        oid = store.write_blob(b"payload")
        assert oid in store
        assert store.read_blob(oid) == b"payload"

    def test_write_is_idempotent_and_deduplicating(self, store):
        a = store.write_blob(b"same")
        b = store.write_blob(b"same")
        assert a == b
        assert sum(1 for _ in store.iter_oids()) == 1

    def test_read_missing_raises(self, store):
        with pytest.raises(StoreError, match="does not exist"):
            store.read("f" * 64)

    def test_read_kind_mismatch_raises(self, store):
        oid = store.write_blob(b"data")
        with pytest.raises(StoreError, match="is a blob, expected a tree"):
            store.read_kind(oid, "tree")

    def test_objects_are_sharded_by_prefix(self, store):
        oid = store.write_blob(b"shard me")
        path = store.path_for(oid)
        assert path.parent.name == oid[:2]
        assert path.name == oid[2:]

    def test_resolve_prefix_unique(self, store):
        oid = store.write_blob(b"only one")
        assert store.resolve_prefix(oid[:8]) == oid

    def test_resolve_prefix_too_short_or_nonhex(self, store):
        store.write_blob(b"x")
        assert store.resolve_prefix("ab") is None
        assert store.resolve_prefix("nothex00") is None

    def test_resolve_prefix_ambiguous_raises(self, store):
        # Brute-force two blobs sharing their first four hex chars.
        oids = {}
        clash = None
        for i in range(20000):
            oid = hash_object("blob", str(i).encode())
            if oid[:4] in oids:
                clash = (oids[oid[:4]], i)
                break
            oids[oid[:4]] = i
        assert clash is not None
        store.write_blob(str(clash[0]).encode())
        store.write_blob(str(clash[1]).encode())
        prefix = hash_object("blob", str(clash[0]).encode())[:4]
        with pytest.raises(StoreError, match="ambiguous"):
            store.resolve_prefix(prefix)


class TestTree:
    def test_canonical_encoding_ignores_construction_order(self, store):
        e1 = TreeEntry("a.json", "1" * 64, "bench")
        e2 = TreeEntry("b.jsonl", "2" * 64, "telemetry")
        assert Tree((e1, e2)).encode() == Tree((e2, e1)).encode()

    def test_round_trip_preserves_roles(self, store):
        tree = Tree((TreeEntry("t.jsonl", "3" * 64, "telemetry"),))
        oid = store.write_tree(tree)
        loaded = store.read_tree(oid)
        assert loaded.by_name()["t.jsonl"].role == "telemetry"

    def test_by_role_filters_and_sorts(self):
        tree = Tree((
            TreeEntry("z.json", "1" * 64, "bench"),
            TreeEntry("a.json", "2" * 64, "bench"),
            TreeEntry("t.jsonl", "3" * 64, "telemetry"),
        ))
        assert [e.name for e in tree.by_role("bench")] == ["a.json", "z.json"]

    def test_corrupt_tree_rejected(self):
        with pytest.raises(StoreError, match="corrupt tree"):
            Tree.decode(b"not json")

    def test_tree_from_files_blobs_everything(self, store):
        tree_oid = tree_from_files(
            store,
            {"t.jsonl": (b"events", "telemetry"), "b.json": (b"{}", "bench")},
        )
        tree = store.read_tree(tree_oid)
        assert {e.name for e in tree.entries} == {"t.jsonl", "b.json"}
        for entry in tree.entries:
            assert entry.oid in store


class TestCommit:
    def test_round_trip(self, store):
        commit = Commit(
            tree="4" * 64,
            parents=("5" * 64,),
            message="run_all e1",
            author="tester",
            timestamp=123.5,
            meta={"experiments": ["e1"]},
        )
        oid = store.write_commit(commit)
        loaded = store.read_commit(oid)
        assert loaded == commit

    def test_logically_equal_commits_hash_identically(self):
        a = Commit(tree="6" * 64, meta={"b": 2, "a": 1})
        b = Commit(tree="6" * 64, meta={"a": 1, "b": 2})
        assert hash_object("commit", a.encode()) == hash_object(
            "commit", b.encode()
        )

    def test_corrupt_commit_rejected(self):
        with pytest.raises(StoreError, match="corrupt commit"):
            Commit.decode(b"[]")


def test_short_oid():
    assert short_oid("abcdef0123456789" * 4) == "abcdef0123"
