"""Tests for the replay-verified regression bisector."""

import json

import pytest

from repro.obs.store.bisect import (
    REPLAY_NOT_REPLAYABLE,
    REPLAY_NO_TRANSCRIPT,
    REPLAY_VERIFIED,
    BisectError,
    bisect_commits,
    commit_chain,
    verify_transcript,
)
from repro.obs.store.repo import ExperimentStore


def telemetry_blob(value, metric="comm.bits"):
    return (
        json.dumps(
            {"event": "summary",
             "metrics": {"counters": {metric: value}, "gauges": {},
                         "histograms": {}}}
        ) + "\n"
    ).encode()


def bench_blob(passed):
    return json.dumps({"gate": {"ratio": 1.0, "passed": passed}}).encode()


@pytest.fixture
def store(tmp_path):
    return ExperimentStore.init(tmp_path / "store")


def build_metric_history(store, values):
    """One commit per metric value, linear on main; returns the oids."""
    return [
        store.commit_artifacts(
            {"telemetry.jsonl": (telemetry_blob(value), "telemetry")},
            message=f"run {i}: {value}",
            timestamp=1000.0 + i,
        )
        for i, value in enumerate(values)
    ]


class TestCommitChain:
    def test_linear_chain_oldest_first(self, store):
        oids = build_metric_history(store, [1.0, 2.0, 3.0])
        assert commit_chain(store, oids[0], oids[2]) == oids

    def test_unrelated_commits_rejected(self, store):
        build_metric_history(store, [1.0])
        other = store.commit_artifacts(
            {"telemetry.jsonl": (telemetry_blob(9.0), "telemetry")},
            message="independent line",
            branch="lines/other",
        )
        good = store.resolve("main")
        with pytest.raises(BisectError, match="not a first-parent ancestor"):
            commit_chain(store, other, good)


class TestMetricBisect:
    def test_finds_first_bad_commit_in_synthetic_history(self, store):
        # 6 commits; the metric doubles at index 3 and stays bad.
        values = [100.0, 100.0, 100.0, 200.0, 200.0, 200.0]
        oids = build_metric_history(store, values)
        result = bisect_commits(
            store, good_rev=oids[0], bad_rev=oids[-1], metric="comm.bits"
        )
        assert result.first_bad == oids[3]
        assert result.last_good == oids[2]
        assert result.chain_length == 6
        # Binary search beats linear scan: at most O(log n) + endpoints.
        assert result.steps <= 5
        assert all(e.replay == REPLAY_NO_TRANSCRIPT for e in result.evaluations)
        assert "first bad commit" in result.summary()

    def test_works_over_revision_syntax(self, store):
        oids = build_metric_history(store, [100.0, 100.0, 200.0, 200.0])
        result = bisect_commits(
            store, good_rev="HEAD~3", bad_rev="HEAD", metric="comm.bits"
        )
        assert result.first_bad == oids[2]

    def test_improvement_direction_respects_lower_is_better(self, store):
        # The metric *drops*; with lower_is_better=False that is bad.
        oids = build_metric_history(store, [100.0, 100.0, 40.0, 40.0])
        result = bisect_commits(
            store,
            good_rev=oids[0],
            bad_rev=oids[-1],
            metric="comm.bits",
            lower_is_better=False,
        )
        assert result.first_bad == oids[2]

    def test_bad_endpoint_must_be_bad(self, store):
        oids = build_metric_history(store, [100.0, 100.0, 100.0])
        with pytest.raises(BisectError, match="does not show a regression"):
            bisect_commits(
                store, good_rev=oids[0], bad_rev=oids[-1], metric="comm.bits"
            )

    def test_same_endpoints_rejected(self, store):
        oids = build_metric_history(store, [100.0, 200.0])
        with pytest.raises(BisectError, match="same commit"):
            bisect_commits(
                store, good_rev=oids[0], bad_rev=oids[0], metric="comm.bits"
            )

    def test_exactly_one_target_required(self, store):
        oids = build_metric_history(store, [100.0, 200.0])
        with pytest.raises(BisectError, match="exactly one target"):
            bisect_commits(store, good_rev=oids[0], bad_rev=oids[1])
        with pytest.raises(BisectError, match="exactly one target"):
            bisect_commits(
                store, good_rev=oids[0], bad_rev=oids[1],
                metric="x", gate="BENCH_X.json",
            )

    def test_commit_without_metric_fails_loudly(self, store):
        first = store.commit_artifacts(
            {"telemetry.jsonl": (telemetry_blob(100.0), "telemetry")},
            message="good",
        )
        store.commit_artifacts(
            {"telemetry.jsonl": (telemetry_blob(1.0, metric="other"), "telemetry")},
            message="metric vanished",
        )
        last = store.commit_artifacts(
            {"telemetry.jsonl": (telemetry_blob(200.0), "telemetry")},
            message="bad",
        )
        with pytest.raises(BisectError, match="no value for metric:comm.bits"):
            bisect_commits(
                store, good_rev=first, bad_rev=last, metric="comm.bits"
            )


class TestGateBisect:
    def test_finds_gate_flip(self, store):
        oids = [
            store.commit_artifacts(
                {
                    "BENCH_X.json": (bench_blob(passed), "bench"),
                    "telemetry.jsonl": (telemetry_blob(1.0), "telemetry"),
                },
                message=f"run {i}",
            )
            for i, passed in enumerate([True, True, False, False])
        ]
        result = bisect_commits(
            store, good_rev=oids[0], bad_rev=oids[-1], gate="BENCH_X.json"
        )
        assert result.first_bad == oids[2]
        assert result.target == "gate:BENCH_X.json"

    def test_good_endpoint_must_pass(self, store):
        oids = [
            store.commit_artifacts(
                {
                    "BENCH_X.json": (bench_blob(passed), "bench"),
                    "telemetry.jsonl": (telemetry_blob(1.0), "telemetry"),
                },
                message=f"run {i}",
            )
            for i, passed in enumerate([False, False])
        ]
        with pytest.raises(BisectError, match="already fails"):
            bisect_commits(
                store, good_rev=oids[0], bad_rev=oids[-1], gate="BENCH_X.json"
            )


class TestReplayVerification:
    def _capture_bytes(self, tmp_path, tamper=False, strip_header=False):
        from repro.obs.replay import run_captured_game

        cap = run_captured_game("foreach", seed=3)
        path = tmp_path / "cap.jsonl"
        cap.save(path)
        lines = path.read_text().splitlines()
        if strip_header:
            header = json.loads(lines[0])
            header["meta"] = {"run": "run_all"}  # not replayable
            lines[0] = json.dumps(header)
        if tamper:
            record = json.loads(lines[-1])
            record["digest"] = "0" * 16  # recorded transcript lies
            lines[-1] = json.dumps(record)
        return ("\n".join(lines) + "\n").encode()

    def _commit_with_capture(self, store, tmp_path, value, **kwargs):
        return store.commit_artifacts(
            {
                "telemetry.jsonl": (telemetry_blob(value), "telemetry"),
                "wire.capture.jsonl": (
                    self._capture_bytes(tmp_path, **kwargs), "capture"),
            },
            message=f"run {value}",
        )

    def test_intact_transcript_verifies(self, store, tmp_path):
        oid = self._commit_with_capture(store, tmp_path, 100.0)
        assert verify_transcript(store, oid) == REPLAY_VERIFIED

    def test_unreplayable_header_marked(self, store, tmp_path):
        oid = self._commit_with_capture(
            store, tmp_path, 100.0, strip_header=True
        )
        assert verify_transcript(store, oid) == REPLAY_NOT_REPLAYABLE

    def test_no_transcript_marked(self, store):
        oid = store.commit_artifacts(
            {"telemetry.jsonl": (telemetry_blob(100.0), "telemetry")},
            message="bare",
        )
        assert verify_transcript(store, oid) == REPLAY_NO_TRANSCRIPT

    def test_tampered_transcript_fails_bisect_loudly(self, store, tmp_path):
        self._commit_with_capture(store, tmp_path, 100.0, tamper=True)
        last = store.commit_artifacts(
            {"telemetry.jsonl": (telemetry_blob(200.0), "telemetry")},
            message="bad",
        )
        with pytest.raises(BisectError, match="failed replay verification"):
            bisect_commits(
                store, good_rev="HEAD~1", bad_rev=last, metric="comm.bits"
            )

    def test_bisect_records_verified_transcripts(self, store, tmp_path):
        good = self._commit_with_capture(store, tmp_path, 100.0)
        bad = self._commit_with_capture(store, tmp_path, 200.0)
        result = bisect_commits(
            store, good_rev=good, bad_rev=bad, metric="comm.bits"
        )
        assert result.first_bad == bad
        assert {e.replay for e in result.evaluations} == {REPLAY_VERIFIED}

    def test_verification_can_be_disabled(self, store, tmp_path):
        self._commit_with_capture(store, tmp_path, 100.0, tamper=True)
        last = store.commit_artifacts(
            {"telemetry.jsonl": (telemetry_blob(200.0), "telemetry")},
            message="bad",
        )
        result = bisect_commits(
            store,
            good_rev="HEAD~1",
            bad_rev=last,
            metric="comm.bits",
            verify_replay=False,
        )
        assert result.first_bad == last
