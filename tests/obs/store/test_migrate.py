"""Tests for migrating the flat .obs/history.jsonl into the store."""

import json

import pytest

from repro.obs.store.migrate import (
    LEGACY_BRANCH,
    RECORD_NAME,
    load_history_records,
    migrate_history,
    verify_migration,
)
from repro.obs.store.objects import StoreError
from repro.obs.store.repo import ExperimentStore


def legacy_record(label, ingested_at, queries=100.0):
    return {
        "record": "run",
        "label": label,
        "source": "telemetry.jsonl",
        "ingested_at": ingested_at,
        "partial": False,
        "spans": {"experiment.e1": {"count": 1, "total_s": 0.5}},
        "metrics": {"oracle.queries": queries},
        "rows": [],
        "bound_checks": [],
    }


@pytest.fixture
def db(tmp_path):
    records = [
        legacy_record("pr2", 1000.0, queries=100.0),
        legacy_record("pr3", 2000.0, queries=110.0),
        legacy_record(None, 3000.0, queries=120.0),
    ]
    path = tmp_path / "history.jsonl"
    lines = [json.dumps(r) for r in records]
    # Interleave a non-run record and a blank line: both must be ignored.
    lines.insert(1, json.dumps({"record": "note", "text": "ignore me"}))
    lines.insert(3, "")
    path.write_text("\n".join(lines) + "\n")
    return path


@pytest.fixture
def store(tmp_path):
    return ExperimentStore.init(tmp_path / "store")


class TestLoadRecords:
    def test_only_run_records_in_order(self, db):
        records = load_history_records(db)
        assert [r["label"] for r in records] == ["pr2", "pr3", None]

    def test_missing_db_raises(self, tmp_path):
        with pytest.raises(StoreError, match="does not exist"):
            load_history_records(tmp_path / "nope.jsonl")

    def test_corrupt_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "run"}\n{torn\n')
        with pytest.raises(StoreError, match="bad.jsonl:2"):
            load_history_records(path)


class TestMigrate:
    def test_round_trips_every_record(self, store, db):
        oids = migrate_history(store, db)
        assert len(oids) == 3
        assert verify_migration(store, db) == (3, 3)
        # The branch holds the chain oldest-first with parent links.
        history = store.history(LEGACY_BRANCH)
        assert [oid for oid, _ in history] == oids
        assert store.read_commit(oids[1]).parents == (oids[0],)

    def test_records_stored_verbatim(self, store, db):
        oids = migrate_history(store, db)
        stored = json.loads(store.artifact_bytes(oids[0], RECORD_NAME))
        assert stored == load_history_records(db)[0]
        (entry,) = store.read_tree_of(oids[0]).by_role("legacy")
        assert entry.name == RECORD_NAME

    def test_commit_timestamps_preserve_ingestion_time(self, store, db):
        oids = migrate_history(store, db)
        assert [store.read_commit(o).timestamp for o in oids] == [
            1000.0, 2000.0, 3000.0,
        ]

    def test_meta_carries_provenance(self, store, db):
        oids = migrate_history(store, db)
        meta = store.read_commit(oids[1]).meta
        assert meta["migrated_from"] == str(db)
        assert meta["legacy_index"] == 1
        assert meta["label"] == "pr3"

    def test_main_branch_untouched(self, store, db):
        migrate_history(store, db)
        assert store.refs.read_branch("main") is None
        assert store.refs.current_branch() == "main"

    def test_refuses_existing_branch(self, store, db):
        migrate_history(store, db)
        with pytest.raises(StoreError, match="already exists"):
            migrate_history(store, db)

    def test_refuses_empty_history(self, store, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text(json.dumps({"record": "note"}) + "\n")
        with pytest.raises(StoreError, match="no run records"):
            migrate_history(store, path)


class TestVerify:
    def test_detects_lost_record(self, store, db):
        migrate_history(store, db)
        # Grow the *source* after migration: one record has no commit.
        with db.open("a") as fh:
            fh.write(json.dumps(legacy_record("pr4", 4000.0)) + "\n")
        with pytest.raises(StoreError, match="lost records"):
            verify_migration(store, db)

    def test_detects_corrupted_record(self, store, db):
        migrate_history(store, db)
        # Rewrite the *source* after migration: record 0 no longer matches.
        records = load_history_records(db)
        records[0]["metrics"]["oracle.queries"] = 999.0
        db.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        with pytest.raises(StoreError, match="corrupted record 0"):
            verify_migration(store, db)
