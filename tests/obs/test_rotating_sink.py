"""RotatingJsonlSink: size-triggered rotation with per-segment headers."""

import json

import pytest

from repro.obs.sink import RotatingJsonlSink


def _lines(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestValidation:
    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            RotatingJsonlSink(tmp_path / "t.jsonl", max_bytes=0)

    def test_keep_must_be_at_least_one(self, tmp_path):
        with pytest.raises(ValueError):
            RotatingJsonlSink(tmp_path / "t.jsonl", keep=0)


class TestRotation:
    def test_no_rotation_under_budget(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with RotatingJsonlSink(path, max_bytes=1 << 20) as sink:
            for i in range(10):
                sink.write({"event": "x", "i": i})
            assert sink.rotations == 0
        assert len(_lines(path)) == 10
        assert not (tmp_path / "t.jsonl.1").exists()

    def test_rotation_shifts_chain_and_drops_oldest(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with RotatingJsonlSink(path, max_bytes=200, keep=2) as sink:
            for i in range(40):
                sink.write({"event": "x", "i": i})
            assert sink.rotations > 2  # chain cycled at least once
        # Current file plus exactly `keep` numbered segments.
        assert path.exists()
        assert (tmp_path / "t.jsonl.1").exists()
        assert (tmp_path / "t.jsonl.2").exists()
        assert not (tmp_path / "t.jsonl.3").exists()
        # Newest rotated segment holds newer records than the oldest.
        newest = [r["i"] for r in _lines(tmp_path / "t.jsonl.1") if "i" in r]
        oldest = [r["i"] for r in _lines(tmp_path / "t.jsonl.2") if "i" in r]
        assert min(newest) > max(oldest)

    def test_never_splits_a_record(self, tmp_path):
        path = tmp_path / "t.jsonl"
        big = {"event": "blob", "data": "z" * 500}
        with RotatingJsonlSink(path, max_bytes=200) as sink:
            sink.write({"event": "small"})
            sink.write(big)  # larger than max_bytes: own segment, intact
        for candidate in (path, tmp_path / "t.jsonl.1"):
            for record in _lines(candidate):
                if record["event"] == "blob":
                    assert record["data"] == big["data"]
                    return
        pytest.fail("big record not found intact in any segment")

    def test_header_factory_reopens_every_segment(self, tmp_path):
        path = tmp_path / "t.jsonl"
        header = {"event": "wire_capture", "meta": {"kind": "serving"}}
        with RotatingJsonlSink(
            path, max_bytes=200, keep=2, header_factory=lambda: dict(header)
        ) as sink:
            sink.write(dict(header))  # caller writes the first header
            for i in range(40):
                sink.write({"event": "x", "i": i})
        for candidate in (path, tmp_path / "t.jsonl.1", tmp_path / "t.jsonl.2"):
            records = _lines(candidate)
            assert records, f"{candidate} is empty"
            assert records[0]["event"] == "wire_capture"

    def test_rotated_paths_newest_first(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with RotatingJsonlSink(path, max_bytes=150, keep=3) as sink:
            for i in range(60):
                sink.write({"event": "x", "i": i})
            rotated = sink.rotated_paths()
        assert rotated[0].endswith(".1")
        assert all(str(path) in p for p in rotated)
