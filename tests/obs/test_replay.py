"""Replay determinism: capture → replay across seeds and families.

The executable form of the claim "a transcript IS the game": for every
replayable family and several seeds, re-running from the capture header
reproduces every message (sender, receiver, kind, bits, payload digest).
"""

import pytest

from repro.errors import ObsError
from repro.obs.capture import WireCapture, WireMessage
from repro.obs.replay import (
    DEFAULT_PARAMS,
    GAME_FAMILIES,
    replay_capture,
    run_captured_game,
)

SEEDS = (0, 7, 123)


class TestReplayMatrix:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("family", ["foreach", "forall", "localquery"])
    def test_capture_replays_identically(self, family, seed):
        recorded = run_captured_game(family, seed)
        assert len(recorded) > 0
        result = replay_capture(recorded)
        assert result.ok, f"diverged: {result.divergence}"
        assert result.recorded_messages == result.replayed_messages

    def test_distributed_capture_replays_identically(self):
        recorded = run_captured_game("distributed", 7)
        assert len(recorded) > 0
        result = replay_capture(recorded)
        assert result.ok, f"diverged: {result.divergence}"

    def test_replay_survives_save_load(self, tmp_path):
        recorded = run_captured_game("foreach", 11)
        path = tmp_path / "c.jsonl"
        recorded.save(path)
        result = replay_capture(WireCapture.load(path))
        assert result.ok

    @pytest.mark.parametrize("family", GAME_FAMILIES)
    def test_header_carries_replay_inputs(self, family):
        cap = run_captured_game(family, 1)
        assert cap.meta["family"] == family
        assert cap.meta["seed"] == 1
        assert cap.meta["params"] == DEFAULT_PARAMS[family]
        assert "reported_bits" in cap.meta["result"]

    def test_different_seeds_give_different_transcripts(self):
        a = run_captured_game("foreach", 0)
        b = run_captured_game("foreach", 1)
        digests = lambda c: [m.digest for m in c.messages]  # noqa: E731
        assert digests(a) != digests(b)


class TestReplayErrors:
    def test_unknown_family_rejected(self):
        with pytest.raises(ObsError):
            run_captured_game("tictactoe", 0)

    def test_unreplayable_header_rejected(self):
        with pytest.raises(ObsError):
            replay_capture(WireCapture(meta={"run": "run_all"}))
        with pytest.raises(ObsError):
            replay_capture(WireCapture(meta={"family": "foreach"}))

    def test_perturbed_transcript_diverges_at_right_index(self):
        recorded = run_captured_game("forall", 5)
        target = len(recorded) // 2
        original = recorded.messages[target]
        recorded.messages[target] = WireMessage(
            seq=original.seq,
            sender=original.sender,
            receiver=original.receiver,
            kind=original.kind,
            bits=original.bits + 1,
            digest=original.digest,
            span=original.span,
        )
        result = replay_capture(recorded)
        assert not result.ok
        assert result.divergence["index"] == target
        assert result.divergence["field"] == "bits"
