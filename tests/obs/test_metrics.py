"""Tests for repro.obs.metrics: counters, gauges, histograms, registry."""

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ObsError):
            Counter("x").inc(-1)

    def test_reset(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("depth")
        assert g.value is None
        g.set(3)
        g.set(7)
        assert g.value == 7

    def test_reset_forgets(self):
        g = Gauge("depth")
        g.set(1)
        g.reset()
        assert g.value is None


class TestHistogramQuantiles:
    def test_empty_quantile_raises(self):
        h = Histogram("h")
        with pytest.raises(ObsError):
            h.quantile(0.5)

    def test_empty_mean_raises(self):
        with pytest.raises(ObsError):
            Histogram("h").mean

    def test_quantile_out_of_range_raises(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ObsError):
            h.quantile(1.5)
        with pytest.raises(ObsError):
            h.quantile(-0.1)

    def test_single_sample_all_quantiles(self):
        h = Histogram("h")
        h.observe(42.0)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert h.quantile(q) == 42.0

    def test_duplicates(self):
        h = Histogram("h")
        for v in (5.0, 5.0, 5.0, 9.0):
            h.observe(v)
        assert h.quantile(0.5) == 5.0
        assert h.quantile(0.75) == 5.0
        assert h.quantile(1.0) == 9.0

    def test_nearest_rank_min_max(self):
        h = Histogram("h")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 3.0

    def test_observe_after_sort_resorts(self):
        h = Histogram("h")
        h.observe(2.0)
        assert h.quantile(1.0) == 2.0
        h.observe(1.0)  # arrives out of order after a sorted read
        assert h.quantile(0.0) == 1.0

    def test_summary_empty_and_filled(self):
        h = Histogram("h")
        assert h.summary() == {"count": 0, "sum": 0.0, "empty": True}
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == 6.0
        assert s["mean"] == pytest.approx(2.0)
        assert s["min"] == 1.0 and s["max"] == 3.0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(ObsError):
            r.histogram("a")
        with pytest.raises(ObsError):
            r.gauge("a")

    def test_snapshot_and_delta(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.histogram("h").observe(10.0)
        snap = r.snapshot()
        assert snap == {"c": 2, "h.count": 1, "h.sum": 10.0}
        r.counter("c").inc(3)
        r.histogram("h").observe(5.0)
        delta = r.delta_since(snap)
        assert delta == {"c": 3, "h.count": 1, "h.sum": 5.0}

    def test_delta_skips_unchanged(self):
        r = MetricsRegistry()
        r.counter("same").inc(1)
        r.counter("moves").inc(1)
        snap = r.snapshot()
        r.counter("moves").inc(1)
        assert r.delta_since(snap) == {"moves": 1}

    def test_gauges_excluded_from_snapshot(self):
        r = MetricsRegistry()
        r.gauge("g").set(9)
        assert r.snapshot() == {}

    def test_as_dict_shape(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.gauge("g").set(2.0)
        r.histogram("h").observe(1.0)
        dump = r.as_dict()
        assert dump["counters"] == {"c": 1}
        assert dump["gauges"] == {"g": 2.0}
        assert dump["histograms"]["h"]["count"] == 1

    def test_reset_keeps_names(self):
        r = MetricsRegistry()
        r.counter("c").inc(7)
        r.reset()
        assert r.counter("c").value == 0


class TestGatedHelpers:
    def test_disabled_helpers_do_nothing(self):
        obs.count("gated.off.c", 5)
        obs.observe("gated.off.h", 1.0)
        obs.set_gauge("gated.off.g", 2.0)
        snap = obs.snapshot()
        # Disabled helpers never even register the metric.
        assert "gated.off.c" not in snap
        assert "gated.off.h.count" not in snap

    def test_enabled_helpers_feed_global_registry(self):
        with obs.enabled():
            obs.count("gated.c", 5)
            obs.observe("gated.h", 1.0)
        snap = obs.snapshot()
        assert snap["gated.c"] == 5
        assert snap["gated.h.count"] == 1

    def test_reset_metrics_zeroes(self):
        with obs.enabled():
            obs.count("gated.c")
        obs.reset_metrics()
        assert obs.snapshot().get("gated.c", 0) == 0
