"""Tests for the live telemetry bus and sliding-window aggregation."""

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import capture as obs_capture
from repro.obs import live
from repro.obs.capture import WireCapture
from repro.obs.live import (
    LiveAggregator,
    LiveBus,
    SlidingWindow,
    bound_margin,
)
from repro.obs.metrics import Histogram
from repro.obs.sink import ListSink


class TestLiveBus:
    def test_publish_reaches_subscriber(self):
        bus = LiveBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish({"event": "span", "wall_s": 1.0})
        assert seen == [{"event": "span", "wall_s": 1.0}]
        assert bus.published == 1

    def test_subscribers_called_in_subscription_order(self):
        bus = LiveBus()
        order = []
        bus.subscribe(lambda r: order.append("a"))
        bus.subscribe(lambda r: order.append("b"))
        bus.publish({"event": "x"})
        assert order == ["a", "b"]

    def test_kinds_filter_restricts_delivery(self):
        bus = LiveBus()
        seen = []
        bus.subscribe(seen.append, kinds=["span"])
        bus.publish({"event": "metric"})
        bus.publish({"event": "span"})
        assert [r["event"] for r in seen] == ["span"]

    def test_duplicate_subscribe_raises(self):
        bus = LiveBus()
        fn = lambda r: None  # noqa: E731
        bus.subscribe(fn)
        with pytest.raises(ObsError, match="already registered"):
            bus.subscribe(fn)

    def test_unsubscribe_stops_delivery(self):
        bus = LiveBus()
        seen = []
        fn = bus.subscribe(seen.append)
        bus.publish({"event": "a"})
        bus.unsubscribe(fn)
        bus.publish({"event": "b"})
        assert [r["event"] for r in seen] == ["a"]
        assert bus.subscriber_count == 0

    def test_unsubscribe_absent_is_noop(self):
        LiveBus().unsubscribe(lambda r: None)

    def test_raising_subscriber_is_contained(self):
        bus = LiveBus()
        seen = []

        def bad(record):
            raise RuntimeError("boom")

        bus.subscribe(bad)
        bus.subscribe(seen.append)
        bus.publish({"event": "x"})
        # The record still reached the healthy subscriber and the error
        # was recorded rather than raised into the experiment.
        assert len(seen) == 1
        assert len(bus.errors) == 1
        assert isinstance(bus.errors[0][1], RuntimeError)


class TestModuleBus:
    def test_install_uninstall_roundtrip(self):
        bus = LiveBus()
        assert live.active() is None
        live.install(bus)
        assert live.active() is bus
        live.uninstall(bus)
        assert live.active() is None

    def test_double_install_raises(self):
        with live.publishing():
            with pytest.raises(ObsError, match="already installed"):
                live.install(LiveBus())

    def test_uninstall_mismatched_is_noop(self):
        with live.publishing() as bus:
            live.uninstall(LiveBus())
            assert live.active() is bus

    def test_publish_without_bus_is_noop(self):
        live.publish({"event": "x"})  # must not raise

    def test_publishing_scopes_the_bus(self):
        with live.publishing() as bus:
            live.publish({"event": "x"})
            assert bus.published == 1
        assert live.active() is None

    def test_clear_for_worker_drops_bus(self):
        live.install(LiveBus())
        live.clear_for_worker()
        assert live.active() is None

    def test_tick_publishes_clock_pulse(self):
        with live.publishing() as bus:
            seen = []
            bus.subscribe(seen.append)
            live.tick(ts=123.0)
        assert seen == [{"event": "live.tick", "ts": 123.0}]


class TestSinkTee:
    def test_emit_tees_onto_bus_when_enabled(self):
        sink = ListSink()
        obs.enable(sink)
        with live.publishing() as bus:
            seen = []
            bus.subscribe(seen.append)
            obs.event("tee_check", value=1)
        assert len(sink.records) == 1
        assert len(seen) == 1
        assert seen[0]["event"] == "tee_check"
        assert "seq" in seen[0] and "ts" in seen[0]

    def test_emit_publishes_even_without_a_sink(self):
        # --slo --no-telemetry: the bus sees records the sink never will.
        obs.STATE.enabled = True
        obs.STATE.sink = None
        with live.publishing() as bus:
            obs.event("sinkless")
        assert bus.published == 1

    def test_disabled_emit_never_reaches_bus(self):
        with live.publishing() as bus:
            obs.event("dropped")
        assert bus.published == 0

    def test_wire_capture_tees_onto_bus(self):
        capture = WireCapture()
        obs.enable(ListSink())
        obs_capture.install(capture)
        try:
            with live.publishing() as bus:
                seen = []
                bus.subscribe(seen.append, kinds=["wire"])
                obs_capture.record("alice", "bob", "sketch", bits=64)
        finally:
            obs_capture.uninstall(capture)
        assert len(seen) == 1
        assert seen[0]["sender"] == "alice"


class TestSlidingWindow:
    def test_count_and_values_in_arrival_order(self):
        window = SlidingWindow(window_s=10.0)
        for i, value in enumerate([3.0, 1.0, 2.0]):
            window.add(value, ts=100.0 + i)
        assert window.values(now=103.0) == [3.0, 1.0, 2.0]
        assert window.count(now=103.0) == 3
        assert len(window) == 3

    def test_samples_age_out_of_the_window(self):
        window = SlidingWindow(window_s=5.0)
        window.add(1.0, ts=100.0)
        window.add(2.0, ts=104.0)
        # At t=106 the cutoff is 101: the first sample is gone, and a
        # sample exactly at the cutoff is still live (>= comparison).
        assert window.values(now=106.0) == [2.0]
        window.add(3.0, ts=101.0)
        assert window.values(now=106.0) == [2.0, 3.0]

    def test_capacity_evicts_oldest_first(self):
        window = SlidingWindow(window_s=100.0, capacity=3)
        for i in range(5):
            window.add(float(i), ts=100.0 + i)
        assert window.values(now=105.0) == [2.0, 3.0, 4.0]

    def test_quantiles_match_histogram_nearest_rank(self):
        samples = [5.0, 1.0, 4.0, 2.0, 3.0, 9.0, 7.0]
        window = SlidingWindow(window_s=1e6)
        histogram = Histogram("w")
        for i, value in enumerate(samples):
            window.add(value, ts=float(i))
            histogram.observe(value)
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert window.quantile(q, now=float(len(samples))) == (
                histogram.quantile(q)
            )

    def test_quantile_on_empty_window_raises(self):
        with pytest.raises(ObsError, match="no live samples"):
            SlidingWindow().quantile(0.5)

    def test_quantile_out_of_range_raises(self):
        window = SlidingWindow()
        window.add(1.0)
        with pytest.raises(ObsError, match="quantile"):
            window.quantile(1.5)

    def test_rate_is_count_over_horizon(self):
        window = SlidingWindow(window_s=4.0)
        for i in range(8):
            window.add(1.0, ts=100.0 + i * 0.25)
        assert window.rate(now=101.75) == pytest.approx(2.0)

    def test_summary_empty_and_populated(self):
        window = SlidingWindow(window_s=10.0)
        assert window.summary(now=0.0) == {"count": 0, "empty": True}
        for value in (2.0, 1.0, 3.0):
            window.add(value, ts=100.0)
        summary = window.summary(now=100.0)
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["p50"] == 2.0
        assert summary["max"] == 3.0
        assert summary["sum"] == pytest.approx(6.0)

    def test_invalid_construction_raises(self):
        with pytest.raises(ObsError):
            SlidingWindow(window_s=0)
        with pytest.raises(ObsError):
            SlidingWindow(capacity=0)

    def test_sample_exactly_at_cutoff_is_retained(self):
        # cutoff = now - window_s; retention is ts >= cutoff, so a
        # sample stamped exactly on the cutoff is still live and one
        # epsilon older is not.  Pins the closed/open boundary choice
        # the rss: SLO rules inherit.
        window = SlidingWindow(window_s=5.0)
        window.add(1.0, ts=95.0)
        assert window.values(now=100.0) == [1.0]  # ts == cutoff exactly
        assert window.count(now=100.0) == 1
        window.add(2.0, ts=95.0 - 1e-9)
        assert window.values(now=100.0) == [1.0]
        assert window.summary(now=100.0)["count"] == 1


class TestBoundMargin:
    def test_lower_bound_margin(self):
        record = {"event": "bound_check", "kind": "row", "direction": "lower",
                  "measured": 120.0, "predicted": 100.0, "slack": 1.0}
        assert bound_margin(record) == pytest.approx(1.2)

    def test_upper_bound_margin(self):
        record = {"event": "bound_check", "kind": "row", "direction": "upper",
                  "measured": 80.0, "predicted": 100.0, "slack": 1.0}
        assert bound_margin(record) == pytest.approx(1.25)

    def test_band_is_min_of_both(self):
        record = {"event": "bound_check", "kind": "row", "direction": "band",
                  "measured": 120.0, "predicted": 100.0, "slack": 1.0}
        assert bound_margin(record) == pytest.approx(100.0 / 120.0 * 1.0)

    def test_non_row_and_degenerate_records_are_none(self):
        assert bound_margin({"kind": "fit"}) is None
        assert bound_margin({"kind": "row", "direction": "lower",
                             "measured": 0.0, "predicted": 1.0,
                             "slack": 1.0}) is None
        assert bound_margin({"kind": "row"}) is None


class TestLiveAggregator:
    def test_span_records_fold_into_windows(self):
        aggregator = LiveAggregator()
        for wall in (0.1, 0.2, 0.3):
            aggregator.on_record(
                {"event": "span", "path": "experiment.e3", "wall_s": wall,
                 "ts": 100.0}
            )
        assert aggregator.span_quantile("experiment.e3", 0.5, now=100.0) == 0.2
        assert aggregator.events["span"] == 3

    def test_span_quantile_pools_prefix_and_leaf_matches(self):
        aggregator = LiveAggregator()
        aggregator.on_record({"event": "span", "path": "a/b", "wall_s": 1.0,
                              "ts": 100.0})
        aggregator.on_record({"event": "span", "path": "a/c", "wall_s": 3.0,
                              "ts": 100.0})
        assert aggregator.span_quantile("a", 1.0, now=100.0) == 3.0
        assert aggregator.span_quantile("b", 0.5, now=100.0) == 1.0
        assert aggregator.span_quantile("missing", 0.5, now=100.0) is None

    def test_bound_checks_fold_into_margin_windows(self):
        aggregator = LiveAggregator()
        aggregator.on_record(
            {"event": "bound_check", "kind": "row", "spec": "thm13.queries",
             "direction": "lower", "measured": 110.0, "predicted": 100.0,
             "slack": 1.0, "ts": 100.0}
        )
        assert aggregator.bound_min_margin(
            "thm13.queries", now=100.0
        ) == pytest.approx(1.1)
        assert aggregator.bound_min_margin("unseen") is None

    def test_heartbeats_track_worker_liveness(self):
        aggregator = LiveAggregator()
        aggregator.on_record({"event": "heartbeat", "worker": 41,
                              "phase": "begin", "ts": 100.0})
        aggregator.on_record({"event": "heartbeat", "worker": 41,
                              "phase": "progress", "trial": 3, "done": 3,
                              "ts": 101.0})
        assert 41 in aggregator.workers
        assert aggregator.workers[41]["done"] == 3
        assert aggregator.stalled_workers(5.0, now=102.0) == []
        assert len(aggregator.stalled_workers(5.0, now=110.0)) == 1
        aggregator.on_record({"event": "heartbeat", "worker": 41,
                              "phase": "end", "ts": 103.0})
        assert aggregator.workers == {}

    def test_tick_computes_counter_rates(self):
        aggregator = LiveAggregator()
        obs.STATE.enabled = True
        obs.count("live.rate.test", 10)
        aggregator.on_record({"event": "live.tick", "ts": 100.0})
        obs.count("live.rate.test", 30)
        aggregator.on_record({"event": "live.tick", "ts": 102.0})
        assert aggregator.rates["live.rate.test"] == pytest.approx(15.0)

    def test_snapshot_shape(self):
        aggregator = LiveAggregator()
        aggregator.on_record({"event": "span", "path": "p", "wall_s": 0.5,
                              "ts": 100.0})
        aggregator.on_record({"event": "heartbeat", "worker": 7,
                              "phase": "begin", "chunk": 0, "ts": 100.0})
        aggregator.on_record({"event": "slo.violation", "rule": "r",
                              "subject": "s", "ts": 100.0})
        snapshot = aggregator.snapshot(now=101.0)
        assert snapshot["spans"]["p"]["count"] == 1
        assert snapshot["workers"]["7"]["age_s"] == pytest.approx(1.0)
        assert snapshot["violations"] == 1
        assert snapshot["events"]["span"] == 1

    def test_attach_detach_roundtrip(self):
        bus = LiveBus()
        aggregator = LiveAggregator().attach(bus)
        bus.publish({"event": "span", "path": "p", "wall_s": 1.0,
                     "ts": 100.0})
        aggregator.detach(bus)
        bus.publish({"event": "span", "path": "p", "wall_s": 2.0,
                     "ts": 100.0})
        assert aggregator.spans["p"].count(now=100.0) == 1


class TestLiveAggregatorMemoryEvents:
    def test_rss_records_fold_into_window_and_peak(self):
        aggregator = LiveAggregator()
        aggregator.on_record(
            {"event": "memory", "kind": "rss", "rss_bytes": 1_000.0,
             "rss_peak_bytes": 4_000.0, "ts": 100.0}
        )
        aggregator.on_record(
            {"event": "memory", "kind": "rss", "rss_bytes": 2_000.0,
             "rss_peak_bytes": 2_000.0, "ts": 101.0}
        )
        assert aggregator.memory_rss.values(now=101.0) == [1_000.0, 2_000.0]
        assert aggregator.max_rss(now=101.0) == pytest.approx(4_000.0)

    def test_span_records_last_write_wins(self):
        aggregator = LiveAggregator()
        for peak in (100.0, 700.0):
            aggregator.on_record(
                {"event": "memory", "kind": "span", "span": "a/b",
                 "boundaries": 1, "net_bytes": 5, "peak_bytes": peak,
                 "ts": 100.0}
            )
        assert aggregator.memory_spans["a/b"]["peak_bytes"] == 700.0
        assert aggregator.span_alloc_peaks("a/b") == [("a/b", 700.0)]
        assert aggregator.span_alloc_peaks("b") == [("a/b", 700.0)]
        assert aggregator.span_alloc_peaks("*") == [("a/b", 700.0)]
        assert aggregator.span_alloc_peaks("missing") == []

    def test_footprint_records_accumulate_per_structure(self):
        aggregator = LiveAggregator()
        for measured in (100.0, 300.0):
            aggregator.on_record(
                {"event": "memory", "kind": "footprint",
                 "structure": "sketch", "type": "ExactCutSketch",
                 "measured_bytes": measured, "bytes_per_bit": 3.0,
                 "ts": 100.0}
            )
        entry = aggregator.memory_footprints["sketch:ExactCutSketch"]
        assert entry["count"] == 2
        assert entry["total_bytes"] == pytest.approx(400.0)
        assert entry["last_bytes"] == pytest.approx(300.0)

    def test_heartbeat_rss_feeds_peak_and_snapshot(self):
        aggregator = LiveAggregator()
        aggregator.on_record(
            {"event": "heartbeat", "worker": 9, "phase": "chunk",
             "rss": 8_192.0, "ts": 100.0}
        )
        assert aggregator.max_rss(now=100.0) == pytest.approx(8_192.0)
        snapshot = aggregator.snapshot(now=100.0)
        assert snapshot["workers"]["9"]["rss"] == pytest.approx(8_192.0)
        assert snapshot["memory"]["rss_peak_bytes"] == pytest.approx(8_192.0)

    def test_folding_identical_serial_vs_jobs(self, tmp_path):
        # The aggregator's memory state is a pure fold of the event
        # stream, and the stream itself is the serial == parallel
        # telemetry contract: e1 at jobs 1 / 2 / 4 must fold to the
        # same spans and footprints (rss samples are wall-clock-bound,
        # so only their event kinds are compared).
        import json

        from repro.experiments.run_all import main as run_all_main
        from repro.parallel import fork_available

        if not fork_available():
            pytest.skip("platform lacks the fork start method")

        def folded(jobs):
            path = tmp_path / f"mem-{jobs}.jsonl"
            assert run_all_main(
                ["e1", "--memory", "--jobs", str(jobs),
                 "--telemetry", str(path)]
            ) == 0
            aggregator = LiveAggregator()
            kinds = []
            for line in path.read_text().splitlines():
                record = json.loads(line)
                if record.get("event") != "memory":
                    continue
                kinds.append(record.get("kind"))
                record = dict(record, ts=100.0)  # fold wall-clock out
                aggregator.on_record(record)
            footprints = {
                key: {k: v for k, v in entry.items() if k != "ts"}
                for key, entry in aggregator.memory_footprints.items()
            }
            return aggregator.memory_spans, footprints, sorted(kinds)

        serial = folded(1)
        for jobs in (2, 4):
            assert folded(jobs) == serial
