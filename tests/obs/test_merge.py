"""Merge semantics of the parallel telemetry shipping layer.

The parallel engine's reconciliation guarantee rests on three merge
primitives: ``MetricsRegistry.dump_state``/``merge_state``,
``WireCapture.append``/``merge_records``, and
``BoundMonitor.dump_state``/``absorb``.  These tests pin down exactly
what is order-independent (counter totals, histogram multisets, bit
sums) and what is ordering-contracted (histogram sample sequences, wire
transcripts, gauge last-write) — the documented ordering is "merge in
chunk start-index order".
"""

import math

import pytest

from repro import obs
from repro.obs import capture as obs_capture
from repro.obs.bounds import BoundMonitor
from repro.obs.capture import WireCapture, WireMessage, payload_digest
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import ListSink


def _registry_with(counters=(), samples=(), gauges=()):
    reg = MetricsRegistry()
    for name, value in counters:
        reg.counter(name).inc(value)
    for name, value in samples:
        reg.histogram(name).observe(value)
    for name, value in gauges:
        reg.gauge(name).set(value)
    return reg


class TestMetricsMerge:
    def test_counters_add_commutatively(self):
        a = _registry_with(counters=[("x", 3), ("y", 1)]).dump_state()
        b = _registry_with(counters=[("x", 4), ("z", 2)]).dump_state()
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge_state(a)
        ab.merge_state(b)
        ba.merge_state(b)
        ba.merge_state(a)
        for reg in (ab, ba):
            assert reg.counter("x").value == 7
            assert reg.counter("y").value == 1
            assert reg.counter("z").value == 2

    def test_histogram_bit_totals_exact(self):
        # Exact totals: sum/count of the merged histogram equal the
        # arithmetic union of the parts — no aggregation-by-summary.
        a = _registry_with(samples=[("h", 1.5), ("h", 2.5)]).dump_state()
        b = _registry_with(samples=[("h", 4.0)]).dump_state()
        merged = MetricsRegistry()
        merged.merge_state(a)
        merged.merge_state(b)
        hist = merged.histogram("h")
        assert hist.count == 3
        assert hist.sum == pytest.approx(8.0)

    def test_histogram_quantile_inputs_preserved(self):
        # Quantiles of the merged histogram are computed from the exact
        # union multiset, indistinguishable from a serial registry that
        # observed every sample itself.
        parts = [
            [0.1, 0.9, 0.5],
            [0.3],
            [0.7, 0.2],
        ]
        serial = MetricsRegistry()
        merged = MetricsRegistry()
        for part in parts:
            worker = MetricsRegistry()
            for sample in part:
                serial.histogram("h").observe(sample)
                worker.histogram("h").observe(sample)
            merged.merge_state(worker.dump_state())
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert merged.histogram("h").quantile(q) == serial.histogram(
                "h"
            ).quantile(q)

    def test_histogram_sample_order_follows_merge_order(self):
        # The *sequence* is ordering-contracted, not order-independent:
        # merging in chunk order reproduces the serial insertion order.
        a = _registry_with(samples=[("h", 1.0), ("h", 2.0)]).dump_state()
        b = _registry_with(samples=[("h", 3.0)]).dump_state()
        merged = MetricsRegistry()
        merged.merge_state(a)
        merged.merge_state(b)
        assert merged.histogram("h").samples() == [1.0, 2.0, 3.0]

    def test_gauges_last_write_wins_in_merge_order(self):
        a = _registry_with(gauges=[("g", 1.0)]).dump_state()
        b = _registry_with(gauges=[("g", 2.0)]).dump_state()
        merged = MetricsRegistry()
        merged.merge_state(a)
        merged.merge_state(b)
        assert merged.gauge("g").value == 2.0

    def test_dump_state_excludes_empty_metrics(self):
        reg = _registry_with(counters=[("x", 1)])
        reg.counter("zero")  # registered, never incremented
        reg.histogram("empty")
        state = reg.dump_state()
        assert state["counters"] == {"x": 1}
        assert state["histograms"] == {}

    def test_dump_state_is_a_snapshot(self):
        reg = _registry_with(samples=[("h", 1.0)])
        state = reg.dump_state()
        reg.histogram("h").observe(9.0)
        assert state["histograms"]["h"] == [1.0]


def _message(seq, bits, payload):
    return WireMessage(
        seq=seq,
        sender="alice",
        receiver="bob",
        kind="test",
        bits=bits,
        digest=payload_digest(payload),
    )


class TestWireMerge:
    def test_append_resequences_and_keeps_bits(self):
        capture = WireCapture()
        capture.append(_message(seq=17, bits=5, payload="a"))
        capture.append(_message(seq=3, bits=7, payload="b"))
        assert [m.seq for m in capture.messages] == [0, 1]
        assert capture.total_bits == 12

    def test_append_does_not_mirror_wire_counters(self):
        # Worker registries already counted their messages; appending
        # them again in the parent must not double the wire.* meters.
        obs.enable(ListSink())
        from repro.obs.metrics import REGISTRY

        capture = WireCapture()
        capture.append(_message(seq=0, bits=64, payload="x"))
        assert REGISTRY.counter("wire.bits").value == 0
        assert REGISTRY.counter("wire.messages").value == 0

    def test_merge_records_preserves_shipped_order(self):
        capture = WireCapture()
        obs_capture.install(capture)
        records = [
            _message(seq=0, bits=2, payload="m0").as_record(),
            _message(seq=1, bits=3, payload="m1").as_record(),
        ]
        assert obs_capture.merge_records(records) == 2
        assert [m.digest for m in capture.messages] == [
            payload_digest("m0"),
            payload_digest("m1"),
        ]
        assert capture.total_bits == 5

    def test_merge_records_noop_without_capture(self):
        assert obs_capture.merge_records(
            [_message(seq=0, bits=2, payload="x").as_record()]
        ) == 0

    def test_two_transcripts_merge_bit_exact(self):
        # A serial capture that recorded all messages equals two worker
        # transcripts merged in chunk order, field for field.
        serial = WireCapture()
        for i in range(5):
            serial.append(_message(seq=i, bits=i + 1, payload=f"m{i}"))
        merged = WireCapture()
        obs_capture.install(merged)
        part_a = [m.as_record() for m in serial.messages[:2]]
        part_b = [m.as_record() for m in serial.messages[2:]]
        obs_capture.merge_records(part_a)
        obs_capture.merge_records(part_b)
        assert obs_capture.first_divergence(serial, merged) is None
        assert merged.total_bits == serial.total_bits


class TestBoundMerge:
    def test_absorb_extends_checks_without_reemitting(self):
        sink = ListSink()
        obs.enable(sink)
        worker = BoundMonitor(emit_events=True)
        worker.record("thm13.queries", 5000.0, m=100, k=5, eps=0.3)
        emitted_in_worker = len(sink.of_kind("bound_check"))
        parent = BoundMonitor(emit_events=True)
        parent.absorb(**{
            "checks": worker.dump_state()["checks"],
            "sweeps": worker.dump_state()["sweeps"],
        })
        assert len(parent.checks) == 1
        assert parent.checks[0].spec == "thm13.queries"
        # absorb must not emit again: the worker's events ship in its
        # telemetry delta and re-emit there exactly once.
        assert len(sink.of_kind("bound_check")) == emitted_in_worker

    def test_absorbed_sweep_points_feed_the_fit(self):
        worker_a = BoundMonitor(emit_events=False)
        worker_b = BoundMonitor(emit_events=False)
        for monitor, eps in ((worker_a, 0.6), (worker_a, 0.45),
                             (worker_b, 0.3), (worker_b, 0.2)):
            monitor.record(
                "thm13.queries",
                min(200.0, 100.0 / (eps * eps * 5.0)),
                m=100,
                k=5,
                eps=eps,
            )
        parent = BoundMonitor(emit_events=False)
        for worker in (worker_a, worker_b):
            state = worker.dump_state()
            parent.absorb(state["checks"], state["sweeps"])
        serial = BoundMonitor(emit_events=False)
        for eps in (0.6, 0.45, 0.3, 0.2):
            serial.record(
                "thm13.queries",
                min(200.0, 100.0 / (eps * eps * 5.0)),
                m=100,
                k=5,
                eps=eps,
            )
        parent_fits = [c for c in parent.finish() if c.kind == "fit"]
        serial_fits = [c for c in serial.finish() if c.kind == "fit"]
        assert len(parent_fits) == len(serial_fits) == 1
        assert parent_fits[0].status == serial_fits[0].status
        assert math.isclose(
            parent_fits[0].detail["empirical_exponent"],
            serial_fits[0].detail["empirical_exponent"],
        )

    def test_dump_state_roundtrips_sweep_keys(self):
        worker = BoundMonitor(emit_events=False)
        worker.record("thm13.queries", 500.0, m=100, k=5, eps=0.3)
        state = worker.dump_state()
        parent = BoundMonitor(emit_events=False)
        parent.absorb(state["checks"], state["sweeps"])
        assert set(parent._sweeps) == set(worker._sweeps)
        assert list(parent._sweeps.values()) == list(worker._sweeps.values())
