"""Tests for repro.obs.report aggregation and the trace-report tables."""

import json

import pytest

from repro.errors import ObsError
from repro.obs.report import (
    aggregate_profile,
    aggregate_spans,
    bound_check_table,
    diff_table,
    is_partial,
    load_events,
    metric_table,
    metric_totals,
    profile_table,
    render_report,
    span_table,
)


def _write_jsonl(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


SPANS = [
    {"event": "span", "path": "a", "depth": 0, "wall_s": 0.2, "status": "ok",
     "metrics": {"c": 2}},
    {"event": "span", "path": "a", "depth": 0, "wall_s": 0.4, "status": "error",
     "metrics": {"c": 1}},
    {"event": "span", "path": "a/b", "depth": 1, "wall_s": 0.1, "status": "ok",
     "metrics": {"c": 1}},
]


class TestLoadEvents:
    def test_loads_and_tolerates_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "span"}\n\n{"event": "summary"}\n')
        events = load_events(path)
        assert [e["event"] for e in events] == ["span", "summary"]

    def test_bad_json_midfile_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('not json\n{"event": "summary"}\n')
        with pytest.raises(ObsError):
            load_events(path)

    def test_non_object_midfile_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('[1, 2]\n{"event": "summary"}\n')
        with pytest.raises(ObsError):
            load_events(path)

    def test_truncated_final_line_is_dropped(self, tmp_path):
        # A killed run leaves its block-buffered last record cut short;
        # the earlier events must still load (partial-run reconstruction).
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "span", "path": "a"}\n{"event": "ro')
        events = load_events(path)
        assert [e["event"] for e in events] == ["span"]


class TestAggregateSpans:
    def test_stats_per_path(self):
        spans = aggregate_spans(SPANS)
        assert spans["a"]["count"] == 2
        assert spans["a"]["errors"] == 1
        assert spans["a"]["total_s"] == pytest.approx(0.6)
        assert spans["a"]["max_s"] == pytest.approx(0.4)
        assert spans["a"]["mean_s"] == pytest.approx(0.3)
        assert spans["a/b"]["count"] == 1

    def test_non_span_events_ignored(self):
        assert aggregate_spans([{"event": "summary"}]) == {}


class TestMetricTotals:
    def test_summary_event_is_authoritative(self):
        events = SPANS + [
            {
                "event": "summary",
                "metrics": {
                    "counters": {"c": 99},
                    "gauges": {"g": 2.5},
                    "histograms": {"h": {"count": 3, "sum": 12.0}},
                },
            }
        ]
        totals = metric_totals(events)
        assert totals["c"] == 99
        assert totals["g.gauge"] == 2.5
        assert totals["h.count"] == 3
        assert totals["h.sum"] == 12.0

    def test_empty_histogram_summary_does_not_crash_totals(self):
        # End to end: an instrument that is registered but never fires
        # must flow through summary() -> metric_totals without raising.
        from repro import obs

        obs.REGISTRY.histogram("never.observed")
        events = [
            {"event": "summary", "metrics": obs.REGISTRY.as_dict()}
        ]
        totals = metric_totals(events)
        assert totals["never.observed.count"] == 0
        assert totals["never.observed.sum"] == 0.0

    def test_fallback_sums_only_depth_zero(self):
        # Without a summary, a/b's delta is already inside a's; only
        # depth-0 spans count, so c totals 3, not 4.
        assert metric_totals(SPANS) == {"c": 3}

    def test_fallback_includes_unscoped_rows(self):
        events = SPANS + [
            {"event": "row", "metrics": {"r": 5}, "span_path": ""},
            {"event": "row", "metrics": {"r": 7}, "span_path": "a"},
        ]
        totals = metric_totals(events)
        assert totals["r"] == 5  # the in-span row is inside a's delta


class TestPartialRuns:
    """A crashed run has no summary event and maybe unclosed spans."""

    # experiment.e1 completed (depth-0 span emitted); experiment.e2's
    # rows were recorded but the run died before its span closed.
    CRASHED = [
        {"event": "span", "path": "experiment.e1", "depth": 0, "wall_s": 1.0,
         "status": "ok", "metrics": {"q": 10}},
        {"event": "row", "table": "T1", "span_path": "experiment.e1",
         "metrics": {"q": 10}},
        {"event": "row", "table": "T2", "span_path": "experiment.e2",
         "metrics": {"q": 7}},
        {"event": "row", "table": "T2", "span_path": "experiment.e2/inner",
         "metrics": {"q": 5}},
    ]

    def test_is_partial(self):
        assert is_partial(self.CRASHED)
        assert not is_partial(self.CRASHED + [{"event": "summary"}])

    def test_totals_reconstructed_from_orphan_rows(self):
        # e1's row is inside its completed span (not double-counted);
        # e2's rows have no completed root span, so they are the only
        # record of that work and must be summed.
        assert metric_totals(self.CRASHED) == {"q": 22}

    def test_render_flags_partial_run(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        _write_jsonl(path, self.CRASHED)
        out = render_report(path)
        assert "PARTIAL" in out
        assert "reconstructed" in out

    def test_complete_run_not_flagged(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        _write_jsonl(path, SPANS + [{"event": "summary", "metrics": {}}])
        assert "PARTIAL" not in render_report(path)


PROFILE_EVENTS = [
    {"event": "profile", "mode": "deterministic", "span": "experiment.e1",
     "func": "a.py:f", "calls": 3, "total_s": 0.5},
    {"event": "profile", "mode": "deterministic", "span": "experiment.e1",
     "func": "a.py:g", "calls": 1, "total_s": 0.1},
    {"event": "profile", "mode": "deterministic", "span": "",
     "func": "a.py:f", "calls": 2, "total_s": 0.2},
]


class TestProfileAggregation:
    def test_merges_by_span_and_func(self):
        records = aggregate_profile(PROFILE_EVENTS + PROFILE_EVENTS)
        assert len(records) == 3
        hottest = records[0]
        assert (hottest["span"], hottest["func"]) == ("experiment.e1", "a.py:f")
        assert hottest["calls"] == 6
        assert hottest["total_s"] == pytest.approx(1.0)

    def test_profile_table_caps_per_span(self):
        table = profile_table(aggregate_profile(PROFILE_EVENTS), top_per_span=1)
        spans = [row["span"] for row in table.rows]
        assert spans == ["experiment.e1", "(no span)"]

    def test_render_report_includes_profile_section(self, tmp_path):
        path = tmp_path / "p.jsonl"
        _write_jsonl(path, SPANS + PROFILE_EVENTS)
        assert "profile" in render_report(path)


class TestBoundCheckTable:
    def test_rows_from_bound_check_events(self):
        events = [
            {"event": "bound_check", "spec": "thm13.queries", "kind": "row",
             "status": "pass", "measured": 10.0, "predicted": 5.0,
             "ratio": 2.0},
            {"event": "span", "path": "x", "depth": 0, "wall_s": 0.1},
        ]
        table = bound_check_table(events)
        (row,) = table.rows
        assert row["spec"] == "thm13.queries"
        assert row["status"] == "pass"


class TestTables:
    def test_span_table_sorted_by_total(self):
        table = span_table(aggregate_spans(SPANS))
        assert [row["span"] for row in table.rows] == ["a", "a/b"]

    def test_metric_table_rows(self):
        table = metric_table({"b": 2, "a": 1})
        assert [row["metric"] for row in table.rows] == ["a", "b"]

    def test_diff_table_skips_equal(self):
        table = diff_table({"same": 1, "moved": 2}, {"same": 1, "moved": 5})
        (row,) = table.rows
        assert row["metric"] == "moved"
        assert row["delta"] == 3

    def test_diff_table_handles_missing_keys(self):
        table = diff_table({"only_base": 2}, {"only_other": 3})
        deltas = {row["metric"]: row["delta"] for row in table.rows}
        assert deltas == {"only_base": -2, "only_other": 3}


class TestRenderReport:
    def test_single_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_jsonl(path, SPANS)
        out = render_report(path)
        assert "spans" in out and "metrics" in out
        assert "a/b" in out

    def test_diff_mode(self, tmp_path):
        base = tmp_path / "base.jsonl"
        other = tmp_path / "other.jsonl"
        _write_jsonl(base, SPANS)
        _write_jsonl(
            other,
            [{"event": "span", "path": "a", "depth": 0, "wall_s": 0.1,
              "status": "ok", "metrics": {"c": 10}}],
        )
        out = render_report(base, diff_path=other)
        assert "metric diff" in out
