"""WireCapture retain mode: bounded memory, unbounded accounting."""

import pytest

from repro.errors import ObsError
from repro.obs.capture import WireCapture


def _record_n(cap, n, bits=8):
    for i in range(n):
        cap.record("a", "b", f"msg-{i}", bits)


class TestRetain:
    def test_retain_must_be_positive(self):
        with pytest.raises(ObsError):
            WireCapture(retain=0)

    def test_default_keeps_everything(self):
        cap = WireCapture()
        _record_n(cap, 50)
        assert len(cap.messages) == 50
        assert cap.recorded == 50

    def test_ring_bounds_memory_but_not_totals(self):
        cap = WireCapture(retain=10)
        _record_n(cap, 35, bits=16)
        assert len(cap.messages) == 10
        assert cap.recorded == 35
        assert cap.total_bits == 35 * 16

    def test_seq_numbering_survives_drops(self):
        cap = WireCapture(retain=5)
        _record_n(cap, 12)
        seqs = [m.seq for m in cap.messages]
        assert seqs == list(range(7, 12))  # oldest dropped, seq monotone

    def test_dropped_messages_already_streamed_to_sink(self):
        written = []

        class Sink:
            def write(self, record):
                written.append(record)

        cap = WireCapture(retain=3, sink=Sink())
        _record_n(cap, 9)
        # Header + every message, including the six dropped from memory.
        kinds = [r.get("kind") for r in written if r.get("event") == "wire"]
        assert len(kinds) == 9
        assert len(cap.messages) == 3
