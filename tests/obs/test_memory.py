"""Tests for measured-space observability (:mod:`repro.obs.memory`)."""

import time

import numpy as np
import pytest

from repro import obs
from repro.errors import ObsError
from repro.graphs.digraph import DiGraph
from repro.obs import bounds as obs_bounds
from repro.obs import memory
from repro.obs.bounds import BoundMonitor, SpaceBoundSpec
from repro.obs.exporters import prometheus_text
from repro.obs.live import LiveAggregator
from repro.obs.memory import (
    MemoryProfiler,
    deep_footprint,
    deep_sizeof,
    observe_footprint,
    profiling,
    read_rss,
    rss_bytes,
)
from repro.obs.sink import ListSink
from repro.obs.slo import SloEngine, SloError, parse_spec


@pytest.fixture(autouse=True)
def clean_memory_state():
    yield
    active = memory.active()
    if active is not None:
        active.stop()
    memory.unregister_space_bounds()


def _digraph(n=6):
    g = DiGraph(nodes=range(n))
    for i in range(n):
        g.add_edge(i, (i + 1) % n, 1.0)
        g.add_edge(i, (i + 2) % n, 0.5)
    return g


class TestRssReaders:
    def test_rss_bytes_positive(self):
        assert rss_bytes() > 0

    def test_read_rss_record_shape(self):
        info = read_rss()
        assert info["rss_bytes"] > 0
        assert info["hwm_bytes"] >= info["rss_bytes"] or info["hwm_bytes"] > 0
        assert info["source"] in ("procfs", "getrusage")


class TestDeepSizeof:
    def test_containers_recurse(self):
        flat = deep_sizeof([])
        nested = deep_sizeof([list(range(100)), {"a": "b" * 64}])
        assert nested > flat + 100 * 28  # at least the int payloads

    def test_shared_references_counted_once(self):
        shared = list(range(200))
        assert deep_sizeof([shared, shared]) < deep_sizeof(
            [shared, list(shared)]
        )

    def test_numpy_counts_data_payload(self):
        assert deep_sizeof(np.zeros(1000)) >= 8000

    def test_slots_objects_walk_attributes(self):
        class Slotted:
            __slots__ = ("payload",)

            def __init__(self):
                self.payload = list(range(500))

        assert deep_sizeof(Slotted()) > deep_sizeof(list(range(500)))


class TestDeepFootprint:
    def test_sketch_carries_bytes_per_bit(self):
        from repro.sketch.exact import ExactCutSketch

        sketch = ExactCutSketch(_digraph())
        record = deep_footprint(sketch)
        assert record["structure"] == "sketch"
        assert record["theoretical_bits"] == sketch.size_bits()
        assert record["bytes_per_bit"] == pytest.approx(
            record["measured_bytes"] / sketch.size_bits()
        )
        assert record["measured_bytes"] > 0

    def test_csr_snapshot_reports_array_bytes(self):
        csr = _digraph().freeze()
        record = deep_footprint(csr)
        assert record["structure"] == "csr_graph"
        assert record["array_bytes"] > 0
        assert record["measured_bytes"] >= record["array_bytes"]

    def test_arena_reports_shared_segment_size(self):
        shmipc = pytest.importorskip("repro.parallel.shmipc")
        arena = shmipc.ResultArena(slots=2, slot_size=4096)
        try:
            record = deep_footprint(arena)
            assert record["structure"] == "arena"
            assert record["measured_bytes"] == arena._shm.size
            assert record["slot_size"] == 4096
        finally:
            arena.close()

    def test_plain_object_is_generic(self):
        record = deep_footprint(object(), label="x")
        assert record["structure"] == "object"
        assert record["label"] == "x"


class TestMemoryProfiler:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ObsError, match="mode"):
            MemoryProfiler(mode="deep")

    def test_invalid_interval_rejected(self):
        with pytest.raises(ObsError, match="interval"):
            MemoryProfiler(interval=0)

    def test_double_start_rejected(self):
        with profiling() as profiler:
            with pytest.raises(ObsError, match="already running"):
                profiler.start()

    def test_second_active_profiler_rejected(self):
        with profiling():
            with pytest.raises(ObsError, match="already active"):
                MemoryProfiler().start()

    def test_stop_is_idempotent(self):
        profiler = MemoryProfiler().start()
        profiler.stop()
        profiler.stop()
        assert memory.active() is None

    def test_rss_sampler_accumulates(self):
        profiler = MemoryProfiler(interval=0.01).start()
        time.sleep(0.08)
        profiler.stop()
        assert profiler.rss_samples >= 3
        assert profiler.rss_peak >= profiler.rss_current > 0

    def test_trace_mode_attributes_allocation_to_span(self):
        obs.enable()
        with profiling(mode=memory.TRACE, interval=5.0) as profiler:
            with obs.span("outer"):
                with obs.span("inner"):
                    blob = bytearray(4_000_000)
                del blob
        by_span = {row["span"]: row for row in profiler.records()}
        assert by_span["outer/inner"]["peak_bytes"] >= 4_000_000
        assert by_span["outer/inner"]["net_bytes"] >= 4_000_000
        # The free after "inner" closed lands on the parent interval.
        assert by_span["outer"]["net_bytes"] < 0

    def test_records_sorted_by_peak(self):
        profiler = MemoryProfiler(mode=memory.TRACE)
        profiler._spans = {
            "a": [1, 10, 100],
            "b": [1, 10, 900],
            "c": [1, 10, 500],
        }
        assert [r["span"] for r in profiler.records()] == ["b", "c", "a"]

    def test_emit_events_writes_span_and_rss_records(self):
        obs.enable()
        sink = ListSink()
        obs.STATE.sink = sink
        with profiling(mode=memory.TRACE, interval=5.0) as profiler:
            with obs.span("work"):
                pass
        emitted = profiler.emit_events()
        kinds = [
            r.get("kind") for r in sink.records if r.get("event") == "memory"
        ]
        assert kinds.count("rss") == 1
        assert kinds.count("span") == emitted - 1
        assert obs.REGISTRY.gauge("memory.rss_bytes").value > 0


class TestObserveFootprint:
    def test_noop_without_active_profiler(self):
        assert observe_footprint(_digraph().freeze()) is None

    def test_dedup_measures_each_object_once(self):
        from repro.sketch.exact import ExactCutSketch

        sketch = ExactCutSketch(_digraph())
        with profiling() as profiler:
            assert observe_footprint(sketch) is not None
            assert observe_footprint(sketch) is None
            assert len(profiler.footprints) == 1

    def test_non_weakrefable_objects_measured_every_time(self):
        # CSR snapshots use __slots__ without __weakref__: the dedup set
        # cannot hold them, so each call measures afresh (construction
        # hooks only fire once per object, so no double counting).
        csr = _digraph().freeze()
        with profiling() as profiler:
            assert observe_footprint(csr) is not None
            assert observe_footprint(csr) is not None
            assert len(profiler.footprints) == 2

    def test_metric_defaults_by_structure(self):
        from repro.sketch.exact import ExactCutSketch

        sketch = ExactCutSketch(_digraph())
        with profiling():
            record = observe_footprint(sketch)
            graph_record = observe_footprint(
                _digraph().freeze(), metric="memory.graph_bytes"
            )
        assert record["metric"] == "memory.sketch_bytes"
        assert graph_record["metric"] == "memory.graph_bytes"

    def test_csr_construction_hook_fires(self):
        obs.enable()
        with profiling() as profiler:
            _digraph().freeze()
        assert any(
            f["structure"] == "csr_graph" for f in profiler.footprints
        )

    def test_sketch_size_bits_hook_carries_ratio(self):
        from repro.sketch.exact import ExactCutSketch

        obs.enable()
        with profiling() as profiler:
            sketch = ExactCutSketch(_digraph())
            bits = sketch.size_bits()
        rows = [f for f in profiler.footprints if f["structure"] == "sketch"]
        assert rows and rows[0]["theoretical_bits"] == bits
        assert rows[0]["bytes_per_bit"] > 0


class TestSpaceBounds:
    def test_space_spec_scales_bytes_to_bits(self):
        spec = SpaceBoundSpec(
            name="tmp.space_bytes",
            theorem="T",
            quantity="value:bytes",
            direction="upper",
            predicted=lambda p: 10_000.0,
            formula="const",
            slack=1.0,
            sweep=None,
        )
        obs_bounds.register(spec, replace=True)
        try:
            monitor = BoundMonitor()
            check = monitor.record("tmp.space_bytes", 100.0, bytes=100.0)
            assert check.measured == pytest.approx(800.0)  # bytes * 8
            assert check.detail["measured_raw"] == pytest.approx(100.0)
            assert check.detail["scale"] == pytest.approx(8.0)
            assert check.status == "pass"
        finally:
            obs_bounds.unregister("tmp.space_bytes")

    def test_register_space_bounds_is_idempotent(self):
        memory.register_space_bounds()
        memory.register_space_bounds()
        names = [s.name for s in obs_bounds.registered_specs()]
        for _, spec in memory.SPACE_SPECS:
            assert names.count(spec.name) == 1
        assert (
            obs_bounds.companions_of("thm11.sketch_bits")
            == ("thm11.space_bytes",)
        )
        memory.unregister_space_bounds()
        assert obs_bounds.companions_of("thm11.sketch_bits") == ()
        assert "thm11.space_bytes" not in [
            s.name for s in obs_bounds.registered_specs()
        ]

    def test_companion_checks_ride_the_base_row(self):
        memory.register_space_bounds()
        monitor = BoundMonitor()
        checks = monitor.observe_row(
            ["thm11.sketch_bits"],
            {"n": 8, "beta": 1.0, "eps": 0.25},
            metrics={
                "sketch.size_bits.sum": 4096.0,
                "sketch.size_bits.count": 4,
                "memory.sketch_bytes.sum": 40_000.0,
                "memory.sketch_bytes.count": 4,
            },
        )
        by_spec = {c.spec: c for c in checks}
        assert by_spec["thm11.sketch_bits"].status == "pass"
        space = by_spec["thm11.space_bytes"]
        assert space.status == "pass"
        assert space.measured == pytest.approx(10_000.0 * 8)

    def test_thm13_envelope_grows_with_edges(self):
        small = memory._thm13_space_envelope({"n": 16, "m": 40})
        large = memory._thm13_space_envelope({"n": 16, "m": 80})
        assert large == pytest.approx(2 * small)


class TestSloMemoryRules:
    def test_parse_rss_clause_default_op(self):
        (rule,) = parse_spec("rss:1000000")
        assert rule.kind == "rss"
        assert rule.target == "*"
        assert rule.op == "<=" and rule.threshold == 1_000_000.0

    def test_parse_rss_clause_explicit_op(self):
        (rule,) = parse_spec("rss:>=5")
        assert rule.op == ">=" and rule.threshold == 5.0

    def test_parse_mem_clause_with_span_target(self):
        (rule,) = parse_spec("mem:experiment.e1<=4096")
        assert rule.kind == "mem"
        assert rule.target == "experiment.e1"
        assert rule.threshold == 4096.0

    def test_parse_mem_clause_bare_bytes(self):
        (rule,) = parse_spec("mem:2048")
        assert rule.target == "*" and rule.threshold == 2048.0

    def test_parse_mem_garbage_raises(self):
        with pytest.raises(SloError):
            parse_spec("mem:")

    def test_rss_rule_breaches_on_peak(self):
        aggregator = LiveAggregator()
        engine = SloEngine(parse_spec("rss:<=1000"), aggregator=aggregator)
        aggregator.on_record(
            {"event": "memory", "kind": "rss", "rss_bytes": 5_000.0,
             "rss_peak_bytes": 9_000.0, "ts": 100.0}
        )
        breaches = engine.evaluate(now=100.0)
        assert len(breaches) == 1
        assert breaches[0]["subject"] == "process"
        assert breaches[0]["value"] == pytest.approx(9_000.0)

    def test_rss_rule_sees_worker_heartbeats(self):
        aggregator = LiveAggregator()
        engine = SloEngine(parse_spec("rss:<=1000"), aggregator=aggregator)
        aggregator.on_record(
            {"event": "heartbeat", "worker": 7, "phase": "chunk",
             "rss": 123_456.0, "ts": 100.0}
        )
        (breach,) = engine.evaluate(now=100.0)
        assert breach["value"] == pytest.approx(123_456.0)

    def test_mem_rule_matches_span_target(self):
        aggregator = LiveAggregator()
        engine = SloEngine(
            parse_spec("mem:experiment.e1<=1000"), aggregator=aggregator
        )
        aggregator.on_record(
            {"event": "memory", "kind": "span", "span": "experiment.e1",
             "boundaries": 2, "net_bytes": 10, "peak_bytes": 4_000.0,
             "ts": 100.0}
        )
        (breach,) = engine.evaluate(now=100.0)
        assert breach["subject"] == "span:experiment.e1"
        assert breach["value"] == pytest.approx(4_000.0)

    def test_mem_rule_under_ceiling_is_quiet(self):
        aggregator = LiveAggregator()
        engine = SloEngine(parse_spec("mem:1000000"), aggregator=aggregator)
        aggregator.on_record(
            {"event": "memory", "kind": "span", "span": "a",
             "boundaries": 1, "net_bytes": 1, "peak_bytes": 10.0,
             "ts": 100.0}
        )
        assert engine.evaluate(now=100.0) == []


class TestPrometheusMemoryGauges:
    def test_exposition_carries_memory_gauges(self):
        aggregator = LiveAggregator()
        aggregator.on_record(
            {"event": "memory", "kind": "rss", "rss_bytes": 1_000.0,
             "rss_peak_bytes": 2_000.0, "ts": 100.0}
        )
        aggregator.on_record(
            {"event": "heartbeat", "worker": 11, "phase": "chunk",
             "rss": 1_500.0, "ts": 100.0}
        )
        aggregator.on_record(
            {"event": "memory", "kind": "span", "span": "experiment.e1",
             "boundaries": 1, "net_bytes": 5, "peak_bytes": 640.0,
             "ts": 100.0}
        )
        aggregator.on_record(
            {"event": "memory", "kind": "footprint", "structure": "sketch",
             "type": "ExactCutSketch", "measured_bytes": 4_096.0,
             "ts": 100.0}
        )
        text = prometheus_text(aggregator=aggregator)
        assert "repro_memory_max_rss_bytes 2000" in text
        assert 'repro_memory_worker_rss_bytes{pid="11"} 1500' in text
        # Label values ride the metric-name sanitizer (the spec= label
        # precedent): dots and slashes become underscores.
        assert 'repro_memory_span_peak_bytes{span="experiment_e1"} 640' in text
        assert (
            'repro_memory_footprint_bytes'
            '{structure="sketch",type="ExactCutSketch"} 4096' in text
        )
