"""Tests for repro.obs.bounds: specs, registry, monitor, exponent fits."""

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import bounds
from repro.obs.bounds import (
    BoundMonitor,
    BoundSpec,
    fit_loglog_slope,
    get_spec,
    register,
    registered_specs,
)
from repro.obs.sink import ListSink


def _spec(**overrides):
    base = dict(
        name="test.spec",
        theorem="Thm T",
        quantity="value:queries",
        direction="upper",
        predicted=lambda p: p["m"] / p["eps"],
        formula="m/eps",
        slack=2.0,
        requires=("m", "eps"),
    )
    base.update(overrides)
    return BoundSpec(**base)


@pytest.fixture
def scratch_registry():
    """Register into the real registry, restore it afterwards."""
    before = dict(bounds._REGISTRY)
    yield bounds._REGISTRY
    bounds._REGISTRY.clear()
    bounds._REGISTRY.update(before)


class TestBoundSpec:
    def test_direction_validated(self):
        with pytest.raises(ObsError):
            _spec(direction="sideways")

    def test_slack_below_one_rejected(self):
        with pytest.raises(ObsError):
            _spec(slack=0.5)

    def test_quantity_prefix_validated(self):
        with pytest.raises(ObsError):
            _spec(quantity="queries")

    def test_lower_semantics(self):
        spec = _spec(direction="lower")
        assert spec.check(measured=50.0, predicted=100.0)  # 50*2 >= 100
        assert not spec.check(measured=49.0, predicted=100.0)

    def test_upper_semantics(self):
        spec = _spec(direction="upper")
        assert spec.check(measured=200.0, predicted=100.0)  # <= 100*2
        assert not spec.check(measured=201.0, predicted=100.0)

    def test_band_semantics(self):
        spec = _spec(direction="band")
        assert spec.check(measured=50.0, predicted=100.0)
        assert spec.check(measured=200.0, predicted=100.0)
        assert not spec.check(measured=49.0, predicted=100.0)
        assert not spec.check(measured=201.0, predicted=100.0)


class TestRegistry:
    def test_default_paper_specs_registered(self):
        names = {spec.name for spec in registered_specs()}
        assert {
            "thm11.sketch_bits",
            "thm12.sketch_bits",
            "thm13.queries",
            "thm57.search_queries",
        } <= names

    def test_duplicate_name_raises(self, scratch_registry):
        register(_spec(name="test.dup"))
        with pytest.raises(ObsError):
            register(_spec(name="test.dup"))

    def test_replace_allows_overwrite(self, scratch_registry):
        register(_spec(name="test.dup", slack=2.0))
        register(_spec(name="test.dup", slack=4.0), replace=True)
        assert get_spec("test.dup").slack == 4.0

    def test_unknown_name_raises(self):
        with pytest.raises(ObsError):
            get_spec("no.such.spec")

    def test_envelope_formulas(self):
        p = {"n": 10.0, "beta": 4.0, "eps": 0.5, "m": 100.0, "k": 2.0}
        assert get_spec("thm11.sketch_bits").predicted(p) == pytest.approx(40.0)
        assert get_spec("thm12.sketch_bits").predicted(p) == pytest.approx(160.0)
        # min(2m, m/(eps^2 k)) = min(200, 200) = 200
        assert get_spec("thm13.queries").predicted(p) == pytest.approx(200.0)


class TestFitLoglogSlope:
    def test_recovers_exponent(self):
        points = [(x, 3.0 * x**-2.0) for x in (0.1, 0.2, 0.4)]
        assert fit_loglog_slope(points) == pytest.approx(-2.0)

    def test_positive_exponent(self):
        points = [(x, 0.5 * x**1.5) for x in (1.0, 2.0, 8.0)]
        assert fit_loglog_slope(points) == pytest.approx(1.5)

    def test_single_x_raises(self):
        with pytest.raises(ObsError):
            fit_loglog_slope([(2.0, 1.0), (2.0, 3.0)])

    def test_nonpositive_points_ignored(self):
        points = [(x, 2.0 * x) for x in (1.0, 2.0)] + [(4.0, 0.0)]
        assert fit_loglog_slope(points) == pytest.approx(1.0)


class TestBoundMonitor:
    def test_record_pass_and_violation(self, scratch_registry):
        register(_spec(name="test.upper", direction="upper"))
        monitor = BoundMonitor(emit_events=False)
        ok = monitor.record("test.upper", measured=150.0, m=100.0, eps=1.0)
        bad = monitor.record("test.upper", measured=500.0, m=100.0, eps=1.0)
        assert ok.status == "pass" and bad.status == "violation"
        assert bad.ratio == pytest.approx(5.0)
        assert monitor.violations == [bad]

    def test_missing_required_params_skips(self, scratch_registry):
        register(_spec(name="test.req"))
        monitor = BoundMonitor(emit_events=False)
        check = monitor.record("test.req", measured=1.0, m=100.0)  # no eps
        assert check.status == "skipped"
        assert "eps" in check.detail["reason"]

    def test_observe_row_value_quantity(self, scratch_registry):
        register(_spec(name="test.val"))
        monitor = BoundMonitor(emit_events=False)
        checks = monitor.observe_row(
            ["test.val"], {"queries": 120.0, "m": 100.0, "eps": 1.0},
            table="T",
        )
        (check,) = checks
        assert check.status == "pass"
        assert check.table == "T"
        assert check.measured == 120.0

    def test_observe_row_metric_quantities(self, scratch_registry):
        register(
            _spec(name="test.counter", quantity="metric:oracle.calls")
        )
        register(
            _spec(name="test.hist", quantity="metric:sketch.bits.mean")
        )
        monitor = BoundMonitor(emit_events=False)
        params = {"m": 1000.0, "eps": 1.0}
        metrics = {
            "oracle.calls": 40.0,
            "sketch.bits.count": 4,
            "sketch.bits.sum": 200.0,
        }
        c1, c2 = monitor.observe_row(
            ["test.counter", "test.hist"], params, metrics=metrics
        )
        assert c1.measured == 40.0
        assert c2.measured == 50.0

    def test_metric_quantity_without_metrics_skips(self, scratch_registry):
        register(_spec(name="test.nom", quantity="metric:absent"))
        monitor = BoundMonitor(emit_events=False)
        (check,) = monitor.observe_row(
            ["test.nom"], {"m": 1.0, "eps": 1.0}, metrics=None
        )
        assert check.status == "skipped"

    def test_finish_fits_sweep_exponent(self, scratch_registry):
        register(
            _spec(
                name="test.sweep",
                direction="upper",
                predicted=lambda p: p["m"] / (p["eps"] ** 2),
                sweep="eps",
                exponent_tol=0.25,
            )
        )
        monitor = BoundMonitor(emit_events=False)
        for eps in (0.2, 0.4, 0.8):
            monitor.record(
                "test.sweep", measured=2.0 * eps**-2, m=1.0, eps=eps
            )
        monitor.finish()
        fits = [c for c in monitor.checks if c.kind == "fit"]
        (fit,) = fits
        assert fit.status == "pass"
        assert fit.detail["empirical_exponent"] == pytest.approx(-2.0)
        assert fit.detail["envelope_exponent"] == pytest.approx(-2.0)

    def test_finish_flags_wrong_exponent(self, scratch_registry):
        register(
            _spec(
                name="test.flat",
                direction="upper",
                predicted=lambda p: p["m"] / (p["eps"] ** 2),
                sweep="eps",
                exponent_tol=0.5,
                slack=1e9,
            )
        )
        monitor = BoundMonitor(emit_events=False)
        for eps in (0.2, 0.4, 0.8):
            monitor.record("test.flat", measured=100.0, m=1.0, eps=eps)
        monitor.finish()
        (fit,) = [c for c in monitor.checks if c.kind == "fit"]
        assert fit.status == "violation"
        assert fit.detail["exponent_gap"] == pytest.approx(2.0)

    def test_finish_skips_degenerate_sweep(self, scratch_registry):
        register(_spec(name="test.deg", sweep="eps", slack=1e9))
        monitor = BoundMonitor(emit_events=False)
        monitor.record("test.deg", measured=1.0, m=1.0, eps=0.5)
        monitor.finish()
        (fit,) = [c for c in monitor.checks if c.kind == "fit"]
        assert fit.status == "skipped"

    def test_sweep_override_groups_by_other_variable(self, scratch_registry):
        register(
            _spec(
                name="test.k",
                direction="upper",
                predicted=lambda p: p["m"] / p["k"],
                requires=("m", "k"),
                sweep="eps",
            )
        )
        monitor = BoundMonitor(emit_events=False)
        for k in (2.0, 4.0, 8.0):
            monitor.observe_row(
                [("test.k", {"sweep": "k"})],
                {"queries": 10.0 / k, "m": 10.0, "k": k},
                table="T",
            )
        monitor.finish()
        (fit,) = [c for c in monitor.checks if c.kind == "fit"]
        assert fit.status == "pass"
        assert fit.detail["sweep"] == "k"

    def test_summary_lines_cover_all_checks(self, scratch_registry):
        register(_spec(name="test.sum"))
        monitor = BoundMonitor(emit_events=False)
        monitor.record("test.sum", measured=50.0, m=100.0, eps=1.0)
        monitor.finish()
        lines = monitor.summary_lines()
        assert len(lines) == len(monitor.checks)
        assert any("test.sum" in line for line in lines)

    def test_emits_bound_check_events(self, scratch_registry):
        register(_spec(name="test.emit"))
        with obs.enabled(ListSink()) as sink:
            monitor = BoundMonitor()
            monitor.record("test.emit", measured=1.0, m=100.0, eps=1.0)
            monitor.finish()
        checks = sink.of_kind("bound_check")
        assert len(checks) == len(monitor.checks)
        row = checks[0]
        assert row["spec"] == "test.emit"
        assert row["kind"] == "row"
        assert row["status"] == "pass"
        assert row["direction"] == "upper"


class TestInstallation:
    def test_install_uninstall_active(self):
        monitor = BoundMonitor(emit_events=False)
        assert not bounds.active()
        bounds.install(monitor)
        try:
            assert bounds.active()
        finally:
            bounds.uninstall(monitor)
        assert not bounds.active()
        bounds.uninstall(monitor)  # absent is a no-op

    def test_monitoring_context(self, scratch_registry):
        register(_spec(name="test.ctx"))
        with bounds.monitoring() as monitor:
            bounds.observe_row(
                ["test.ctx"], {"queries": 1.0, "m": 100.0, "eps": 1.0}
            )
        assert not bounds.active()
        assert monitor.checks[0].status == "pass"

    def test_harness_table_reports_rows(self, scratch_registry):
        from repro.experiments.harness import Table

        register(_spec(name="test.table"))
        with bounds.monitoring() as monitor:
            table = Table(
                title="T",
                columns=["eps", "queries"],
                meta={"m": 100.0},
                bounds=["test.table"],
            )
            table.add_row(eps=1.0, queries=120.0)
            table.add_row(eps=1.0, queries=999.0)
        statuses = [c.status for c in monitor.checks]
        assert statuses == ["pass", "violation"]
        # meta merged with the row's printed values
        assert monitor.checks[0].params["m"] == 100.0
        assert monitor.checks[0].table == "T"

    def test_harness_without_monitor_is_silent(self, scratch_registry):
        from repro.experiments.harness import Table

        register(_spec(name="test.quiet"))
        table = Table(
            title="T", columns=["queries"], meta={"m": 1.0, "eps": 1.0},
            bounds=["test.quiet"],
        )
        table.add_row(queries=5.0)  # no monitor installed: no error, no checks
