"""Tests for repro.obs.trace spans and the enable/disable switch."""

import pytest

from repro import obs
from repro.obs import trace
from repro.obs.sink import ListSink


class TestSwitch:
    def test_default_off(self):
        assert not obs.is_enabled()

    def test_enable_disable(self):
        obs.enable()
        assert obs.is_enabled()
        obs.disable()
        assert not obs.is_enabled()

    def test_enabled_context_restores(self):
        sink = ListSink()
        with obs.enabled(sink) as active:
            assert active is sink
            assert obs.is_enabled()
        assert not obs.is_enabled()

    def test_enabled_context_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with obs.enabled(ListSink()):
                raise RuntimeError("boom")
        assert not obs.is_enabled()

    def test_enable_keeps_prior_sink(self):
        sink = ListSink()
        obs.enable(sink)
        obs.disable()
        obs.enable()  # no sink argument: the old one stays installed
        assert obs.STATE.sink is sink


class TestSpans:
    def test_disabled_span_is_shared_null(self):
        a = obs.span("x")
        b = obs.span("y")
        assert a is b
        with a:
            pass  # no-op, no record anywhere

    def test_span_records_wall_and_name(self):
        with obs.enabled(ListSink()) as sink:
            with obs.span("outer", n=3):
                pass
        (record,) = sink.of_kind("span")
        assert record["name"] == "outer"
        assert record["path"] == "outer"
        assert record["depth"] == 0
        assert record["status"] == "ok"
        assert record["wall_s"] >= 0.0
        assert record["attrs"] == {"n": 3}

    def test_nesting_paths_and_depths(self):
        with obs.enabled(ListSink()) as sink:
            with obs.span("outer"):
                with obs.span("inner"):
                    assert trace.current_path() == "outer/inner"
        inner, outer = sink.of_kind("span")  # inner closes first
        assert inner["path"] == "outer/inner" and inner["depth"] == 1
        assert outer["path"] == "outer" and outer["depth"] == 0

    def test_exception_unwinds_and_records_error(self):
        with obs.enabled(ListSink()) as sink:
            with pytest.raises(ValueError):
                with obs.span("outer"):
                    with obs.span("inner"):
                        raise ValueError("boom")
        inner, outer = sink.of_kind("span")
        assert inner["status"] == "error" and inner["error"] == "ValueError"
        assert outer["status"] == "error"
        assert trace.current_path() == ""

    def test_span_captures_metric_delta(self):
        with obs.enabled(ListSink()) as sink:
            with obs.span("work"):
                obs.count("work.items", 4)
        (record,) = sink.of_kind("span")
        assert record["metrics"] == {"work.items": 4}

    def test_inner_delta_included_in_outer(self):
        with obs.enabled(ListSink()) as sink:
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.count("c", 1)
                obs.count("c", 2)
        inner, outer = sink.of_kind("span")
        assert inner["metrics"] == {"c": 1}
        assert outer["metrics"] == {"c": 3}

    def test_annotate(self):
        with obs.enabled(ListSink()) as sink:
            with obs.span("s") as sp:
                sp.annotate(found=7)
        (record,) = sink.of_kind("span")
        assert record["attrs"] == {"found": 7}

    def test_stale_stack_entries_unwound(self):
        # A span abandoned without __exit__ (e.g. a never-resumed
        # generator) must not wedge the stack for its parent.
        with obs.enabled(ListSink()):
            parent = obs.span("parent")
            parent.__enter__()
            obs.span("abandoned").__enter__()
            parent.__exit__(None, None, None)
            assert trace.current_path() == ""

    def test_events_have_seq_and_ts(self):
        with obs.enabled(ListSink()) as sink:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        first, second = sink.of_kind("span")
        assert first["seq"] < second["seq"]
        assert first["ts"] > 0


class TestEvents:
    def test_event_disabled_is_noop(self):
        sink = ListSink()
        obs.STATE.sink = sink
        obs.event("row", table="t")
        assert sink.records == []

    def test_event_without_sink_is_noop(self):
        obs.enable()
        obs.event("row", table="t")  # must not raise

    def test_event_enabled(self):
        with obs.enabled(ListSink()) as sink:
            obs.event("row", table="t", values={"x": 1})
        (record,) = sink.records
        assert record["event"] == "row"
        assert record["values"] == {"x": 1}


class TestJsonlSink:
    def test_roundtrip(self, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        from repro.obs.sink import JsonlSink

        sink = JsonlSink(path)
        with obs.enabled(sink):
            obs.event("custom", payload={"side": frozenset({1, 2})})
        sink.close()
        lines = path.read_text().strip().splitlines()
        (record,) = [json.loads(line) for line in lines]
        assert record["event"] == "custom"
        assert sorted(record["payload"]["side"]) == [1, 2]

    def test_closed_sink_drops_silently(self, tmp_path):
        from repro.obs.sink import JsonlSink

        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.write({"event": "late"})  # no raise
        sink.close()  # idempotent
