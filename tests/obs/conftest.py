"""Shared obs-test hygiene: leave the global switch and registry clean."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    obs.disable()
    obs.reset_metrics()
    yield
    obs.disable()
    obs.STATE.sink = None
    obs.reset_metrics()
