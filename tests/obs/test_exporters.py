"""Tests for the Prometheus and JSONL live exporters."""

import json
import time
import urllib.request

import pytest

from repro.errors import ObsError
from repro.obs.exporters import (
    PROMETHEUS_CONTENT_TYPE,
    JsonlExporter,
    MetricsServer,
    prometheus_text,
    sanitize_metric_name,
)
from repro.obs.live import LiveAggregator, LiveBus
from repro.obs.metrics import MetricsRegistry


class TestSanitizeMetricName:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("oracle.query.neighbor") == (
            "oracle_query_neighbor"
        )

    def test_allowed_characters_pass_through(self):
        assert sanitize_metric_name("a_b:c9") == "a_b:c9"

    def test_leading_digit_gains_prefix(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_exotic_characters_collapse(self):
        assert sanitize_metric_name("span/e3 (ms)") == "span_e3__ms_"

    def test_empty_name_is_underscore(self):
        assert sanitize_metric_name("") == "_"


def seeded_registry():
    registry = MetricsRegistry()
    registry.counter("oracle.query.neighbor").inc(42)
    registry.gauge("pool.workers").set(4)
    for value in (1.0, 2.0, 3.0, 4.0):
        registry.histogram("sketch.size_bits").observe(value)
    return registry


GOLDEN_EXPOSITION = """\
# TYPE repro_oracle_query_neighbor_total counter
repro_oracle_query_neighbor_total 42
# TYPE repro_pool_workers gauge
repro_pool_workers 4
# TYPE repro_sketch_size_bits summary
repro_sketch_size_bits{quantile="0.5"} 2
repro_sketch_size_bits{quantile="0.95"} 4
repro_sketch_size_bits{quantile="0.99"} 4
repro_sketch_size_bits_count 4
repro_sketch_size_bits_sum 10
"""


class TestPrometheusText:
    def test_golden_exposition(self):
        # The exposition of a fixed registry is a fixed string: sorted
        # names, deterministic value formatting.  A rendering change
        # must show up here.
        assert prometheus_text(seeded_registry()) == GOLDEN_EXPOSITION

    def test_rendering_is_deterministic(self):
        registry = seeded_registry()
        assert prometheus_text(registry) == prometheus_text(registry)

    def test_unset_gauges_are_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("never.set")
        assert "never_set" not in prometheus_text(registry)

    def test_empty_histogram_renders_nan_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("empty.hist")
        text = prometheus_text(registry)
        assert 'repro_empty_hist{quantile="0.5"} NaN' in text
        assert "repro_empty_hist_count 0" in text

    def test_aggregator_adds_live_gauges(self):
        # Real timestamps: prometheus_text reads the margin window at
        # wall-clock now, so synthetic epochs would have aged out.
        now = time.time()
        aggregator = LiveAggregator()
        aggregator.on_record({"event": "heartbeat", "worker": 7,
                              "phase": "begin", "ts": now})
        aggregator.on_record({"event": "slo.violation", "rule": "r",
                              "subject": "s", "ts": now})
        aggregator.on_record(
            {"event": "bound_check", "kind": "row", "spec": "thm13.queries",
             "direction": "lower", "measured": 150.0, "predicted": 100.0,
             "slack": 1.0, "ts": now}
        )
        text = prometheus_text(MetricsRegistry(), aggregator)
        assert "repro_live_workers 1" in text
        assert "repro_live_slo_violations_total 1" in text
        assert 'repro_live_bound_margin{spec="thm13_queries"}' in text


class TestMetricsServer:
    def test_serves_metrics_and_snapshot(self):
        aggregator = LiveAggregator()
        aggregator.on_record({"event": "span", "path": "p", "wall_s": 0.5,
                              "ts": 100.0})
        with MetricsServer(
            aggregator=aggregator, registry=seeded_registry()
        ) as server:
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                assert resp.headers["Content-Type"] == (
                    PROMETHEUS_CONTENT_TYPE
                )
                body = resp.read().decode()
            assert body == GOLDEN_EXPOSITION + (
                "# TYPE repro_live_workers gauge\n"
                "repro_live_workers 0\n"
                "# TYPE repro_live_slo_violations_total counter\n"
                "repro_live_slo_violations_total 0\n"
            )
            base = server.url.rsplit("/", 1)[0]
            with urllib.request.urlopen(
                base + "/snapshot", timeout=5
            ) as resp:
                snapshot = json.loads(resp.read().decode())
            assert "p" in snapshot["spans"]

    def test_unknown_route_is_404(self):
        with MetricsServer(registry=MetricsRegistry()) as server:
            base = server.url.rsplit("/", 1)[0]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/nope", timeout=5)
            assert excinfo.value.code == 404

    def test_snapshot_without_aggregator_is_404(self):
        with MetricsServer(registry=MetricsRegistry()) as server:
            base = server.url.rsplit("/", 1)[0]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/snapshot", timeout=5)
            assert excinfo.value.code == 404

    def test_port_before_start_raises(self):
        with pytest.raises(ObsError, match="not running"):
            MetricsServer().port

    def test_double_start_raises(self):
        with MetricsServer(registry=MetricsRegistry()) as server:
            with pytest.raises(ObsError, match="already running"):
                server.start()

    def test_stop_is_idempotent(self):
        server = MetricsServer(registry=MetricsRegistry()).start()
        server.stop()
        server.stop()


class TestJsonlExporter:
    def test_streams_bus_records(self, tmp_path):
        path = tmp_path / "live.jsonl"
        bus = LiveBus()
        exporter = JsonlExporter(str(path)).attach(bus)
        bus.publish({"event": "span", "path": "p", "wall_s": 0.5})
        bus.publish({"event": "metric", "name": "m", "value": 1})
        exporter.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["span", "metric"]

    def test_tick_writes_snapshot_frame(self, tmp_path):
        path = tmp_path / "live.jsonl"
        bus = LiveBus()
        aggregator = LiveAggregator().attach(bus)
        exporter = JsonlExporter(str(path), aggregator=aggregator).attach(bus)
        bus.publish({"event": "span", "path": "p", "wall_s": 0.5,
                     "ts": 100.0})
        bus.publish({"event": "live.tick", "ts": 101.0})
        exporter.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        frames = [r for r in records if r["event"] == "live.snapshot"]
        assert len(frames) == 1
        assert frames[0]["spans"]["p"]["count"] == 1
        assert frames[0]["ts"] == 101.0

    def test_flushed_per_record_by_default(self, tmp_path):
        path = tmp_path / "live.jsonl"
        bus = LiveBus()
        exporter = JsonlExporter(str(path)).attach(bus)
        bus.publish({"event": "one"})
        # Readable before close: a live tail must never lag the run.
        assert json.loads(path.read_text())["event"] == "one"
        exporter.close()

    def test_detach_stops_streaming(self, tmp_path):
        path = tmp_path / "live.jsonl"
        bus = LiveBus()
        exporter = JsonlExporter(str(path)).attach(bus)
        bus.publish({"event": "kept"})
        exporter.detach(bus)
        bus.publish({"event": "dropped"})
        exporter.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["kept"]

    def test_error_surfaces_write_failures(self, tmp_path):
        path = tmp_path / "live.jsonl"
        exporter = JsonlExporter(str(path))
        assert exporter.error is None
        exporter._sink._fail(OSError(28, "No space left on device"))
        exporter.on_record({"event": "x"})  # dropped silently, like the sink
        assert isinstance(exporter.error, OSError)
        exporter.close()
