"""JsonlSink edge cases: file modes, failure capture, seq monotonicity."""

import json

from repro import obs
from repro.obs.sink import JsonlSink, event


def _lines(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestFileModes:
    def test_default_mode_truncates_existing_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "stale"}\n')
        with JsonlSink(path) as sink:
            sink.write({"event": "fresh"})
        records = _lines(path)
        assert [r["event"] for r in records] == ["fresh"]

    def test_append_mode_keeps_existing_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "old"}\n')
        with JsonlSink(path, mode="a") as sink:
            sink.write({"event": "new"})
        assert [r["event"] for r in _lines(path)] == ["old", "new"]


class TestFlushEvery:
    def test_flushed_records_visible_before_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=2)
        sink.write({"event": "a"})
        assert _lines(path) == []  # under the threshold: still buffered
        sink.write({"event": "b"})
        assert [r["event"] for r in _lines(path)] == ["a", "b"]
        sink.write({"event": "c"})
        assert len(_lines(path)) == 2  # counter reset after the flush
        sink.close()

    def test_explicit_flush_resets_the_counter(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=3)
        sink.write({"event": "a"})
        sink.flush()
        assert len(_lines(path)) == 1
        sink.write({"event": "b"})
        sink.write({"event": "c"})
        assert len(_lines(path)) == 1  # two fresh unflushed, threshold 3
        sink.close()

    def test_non_positive_flush_every_rejected(self, tmp_path):
        for bad in (0, -1):
            try:
                JsonlSink(tmp_path / "t.jsonl", flush_every=bad)
            except ValueError:
                continue
            raise AssertionError(f"flush_every={bad} must be rejected")

    def test_default_leaves_buffering_to_the_interpreter(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        assert sink.flush_every is None
        sink.write({"event": "a"})
        sink.close()
        assert len(_lines(path)) == 1


class TestAfterClose:
    def test_write_after_close_is_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.write({"event": "kept"})
        sink.close()
        sink.write({"event": "lost"})  # must not raise nor resurrect the fh
        sink.flush()
        sink.close()  # idempotent
        assert [r["event"] for r in _lines(path)] == ["kept"]
        assert sink.error is None


class _ExplodingFile:
    """File stub whose writes fail like a full disk."""

    def __init__(self, exc):
        self.exc = exc
        self.closed = False

    def write(self, text):
        raise self.exc

    def flush(self):
        raise self.exc

    def close(self):
        self.closed = True


class TestFailureCapture:
    def test_first_oserror_is_remembered_and_writes_stop(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        boom = OSError(28, "No space left on device")
        sink._fh = _ExplodingFile(boom)
        sink.write({"event": "a"})
        assert sink.error is boom
        assert sink._fh is None
        sink.write({"event": "b"})  # silently dropped
        sink.flush()
        assert sink.error is boom  # first error wins

    def test_flush_failure_recorded(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        boom = OSError(5, "I/O error")
        sink._fh = _ExplodingFile(boom)
        sink.flush()
        assert sink.error is boom
        assert sink._fh is None

    def test_open_failure_propagates(self, tmp_path):
        try:
            JsonlSink(tmp_path / "missing_dir" / "t.jsonl")
        except OSError:
            return
        raise AssertionError("expected OSError for unwritable path")


class TestSeqMonotonicity:
    def test_seq_increases_across_reenable_cycles(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        with obs.enabled(JsonlSink(first)) as sink_a:
            event("tick", phase=1)
            event("tick", phase=2)
        sink_a.close()
        with obs.enabled(JsonlSink(second)) as sink_b:
            event("tick", phase=3)
        sink_b.close()
        seqs = [r["seq"] for r in _lines(first)] + [
            r["seq"] for r in _lines(second)
        ]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)  # strictly increasing, no reuse

    def test_records_stamped_with_seq_and_ts(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.enabled(JsonlSink(path)) as sink:
            event("tick")
        sink.close()
        (record,) = _lines(path)
        assert "seq" in record and "ts" in record
