"""Tests for repro.obs.export: Chrome traces and collapsed stacks."""

import json

from repro import obs
from repro.obs.capture import capturing
from repro.obs.export import (
    chrome_trace,
    collapsed_stacks,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.sink import ListSink


def _recorded_events():
    """Spans + wire messages from one real instrumented region."""
    sink = ListSink()
    with obs.enabled(sink):
        with capturing() as cap:
            with obs.span("game"):
                from repro.obs import capture

                capture.record("alice", "bob", "sketch", 128, payload=b"g")
                capture.record("bob", "referee", "answer", 0)
    return sink.records + [m.as_record() for m in cap.messages]


class TestChromeTrace:
    def test_empty_events_give_empty_valid_trace(self):
        trace = chrome_trace([])
        assert trace["traceEvents"] == []
        assert validate_chrome_trace(trace) == []

    def test_real_run_exports_valid_trace(self):
        trace = chrome_trace(_recorded_events())
        assert validate_chrome_trace(trace) == []
        phases = [e["ph"] for e in trace["traceEvents"]]
        assert "X" in phases  # the span as a duration event
        assert "s" in phases and "f" in phases  # flow arrows
        assert "i" in phases  # per-lane instants

    def test_party_lanes_are_named(self):
        trace = chrome_trace(_recorded_events())
        lane_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"spans", "alice", "bob", "referee"} <= lane_names

    def test_flow_ids_pair_start_and_finish(self):
        trace = chrome_trace(_recorded_events())
        starts = {e["id"] for e in trace["traceEvents"] if e["ph"] == "s"}
        ends = {e["id"] for e in trace["traceEvents"] if e["ph"] == "f"}
        assert starts == ends
        assert len(starts) == 2  # one flow per wire message

    def test_timestamps_non_negative_microseconds(self):
        trace = chrome_trace(_recorded_events())
        assert all(e["ts"] >= 0 for e in trace["traceEvents"])

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_recorded_events(), path)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []


class TestValidator:
    def test_rejects_non_document(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": 3}) != []

    def test_flags_missing_fields_and_bad_phase(self):
        doc = {"traceEvents": [{"name": "x", "ph": "Z", "ts": -1.0}]}
        problems = validate_chrome_trace(doc)
        assert any("missing required field" in p for p in problems)
        assert any("unknown phase" in p for p in problems)
        assert any("non-negative" in p for p in problems)

    def test_flags_unmatched_flow(self):
        doc = {
            "traceEvents": [
                {"name": "m", "ph": "s", "pid": 1, "tid": 1, "ts": 0, "id": 9}
            ]
        }
        assert any(
            "never finishes" in p for p in validate_chrome_trace(doc)
        )


class TestCollapsedStacks:
    def test_profile_events_become_stack_lines(self):
        events = [
            {"event": "profile", "span": "run/game", "func": "encode",
             "total_s": 0.25, "calls": 3},
            {"event": "profile", "span": "run/game", "func": "decode",
             "total_s": 0.5, "calls": 3},
        ]
        text = collapsed_stacks(events)
        lines = dict(
            line.rsplit(" ", 1) for line in text.strip().splitlines()
        )
        assert lines["run;game;encode"] == "250000"
        assert lines["run;game;decode"] == "500000"

    def test_duplicate_aggregates_merge(self):
        events = [
            {"event": "profile", "span": "s", "func": "f", "total_s": 0.1},
            {"event": "profile", "span": "s", "func": "f", "total_s": 0.2},
        ]
        text = collapsed_stacks(events)
        assert text.strip() == f"s;f {round(0.3 * 1e6)}"

    def test_zero_weight_frames_dropped_and_empty_ok(self):
        assert collapsed_stacks([]) == ""
        events = [
            {"event": "profile", "span": "s", "func": "f", "total_s": 0.0}
        ]
        assert collapsed_stacks(events) == ""
