"""Tests for repro.obs.profile: span-attributed profiling."""

import sys
import time

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs.profile import DETERMINISTIC, SAMPLING, SpanProfiler, _func_key
from repro.obs.sink import ListSink


def _busy(n=4000):
    total = 0
    for i in range(n):
        total += i * i
    return total


def _other_work(n=4000):
    return sum(i for i in range(n))


class TestFuncKey:
    def test_last_two_path_components(self):
        assert _func_key("/a/b/c/mod.py", "f") == "c/mod.py:f"

    def test_bare_filename(self):
        assert _func_key("mod.py", "f") == "mod.py:f"


class TestLifecycle:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ObsError):
            SpanProfiler(mode="guess")

    def test_bad_interval_rejected(self):
        with pytest.raises(ObsError):
            SpanProfiler(mode=SAMPLING, interval=0.0)

    def test_start_twice_raises(self):
        profiler = SpanProfiler()
        profiler.start()
        try:
            with pytest.raises(ObsError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_idle_is_noop(self):
        SpanProfiler().stop()

    def test_construction_installs_nothing(self):
        SpanProfiler()
        assert sys.getprofile() is None

    def test_context_manager_uninstalls_hook(self):
        with SpanProfiler():
            assert sys.getprofile() is not None
        assert sys.getprofile() is None

    def test_reset_clears_aggregates(self):
        profiler = SpanProfiler()
        with profiler:
            _busy()
        assert profiler.records()
        profiler.reset()
        assert profiler.records() == []


class TestDeterministicAttribution:
    def test_counts_calls_and_time(self):
        profiler = SpanProfiler(mode=DETERMINISTIC)
        with profiler:
            for _ in range(3):
                _busy()
        records = profiler.records(top=None)
        busy = [r for r in records if r["func"].endswith(":_busy")]
        assert busy
        assert busy[0]["calls"] == 3
        assert busy[0]["total_s"] > 0

    def test_attributes_to_enclosing_span(self):
        profiler = SpanProfiler()
        with obs.enabled(ListSink()):
            with profiler:
                with obs.span("outer"):
                    _busy()
                    with obs.span("inner"):
                        _other_work()
        spans = {
            record["span"]
            for record in profiler.records(top=None)
            if record["func"].endswith((":_busy", ":_other_work"))
        }
        busy_spans = {
            r["span"]
            for r in profiler.records(top=None)
            if r["func"].endswith(":_busy")
        }
        other_spans = {
            r["span"]
            for r in profiler.records(top=None)
            if r["func"].endswith(":_other_work")
        }
        assert "outer" in busy_spans
        assert "outer/inner" in other_spans
        assert spans >= {"outer", "outer/inner"}

    def test_code_outside_spans_lands_on_empty_path(self):
        profiler = SpanProfiler()
        with profiler:
            _busy()
        assert any(
            r["span"] == "" and r["func"].endswith(":_busy")
            for r in profiler.records(top=None)
        )

    def test_records_sorted_and_capped(self):
        profiler = SpanProfiler()
        with profiler:
            _busy()
            _other_work()
        records = profiler.records(top=2)
        assert len(records) == 2
        assert records[0]["total_s"] >= records[1]["total_s"]


class TestSampling:
    def test_collects_samples_from_main_thread(self):
        profiler = SpanProfiler(mode=SAMPLING, interval=0.002)
        deadline = time.perf_counter() + 0.15
        with profiler:
            while time.perf_counter() < deadline:
                _busy(500)
        records = profiler.records(top=None)
        assert records  # a 150ms busy loop at 2ms interval must sample
        assert all(r["calls"] >= 1 for r in records)
        assert profiler._thread is None  # joined on stop


class TestEmitEvents:
    def test_profile_events_reach_sink(self):
        profiler = SpanProfiler()
        with obs.enabled(ListSink()) as sink:
            with profiler:
                _busy()
            emitted = profiler.emit_events(top=5)
        events = sink.of_kind("profile")
        assert emitted == len(events) > 0
        record = events[0]
        assert record["mode"] == DETERMINISTIC
        assert {"span", "func", "calls", "total_s"} <= set(record)

    def test_emit_disabled_returns_count_but_drops(self):
        profiler = SpanProfiler()
        with profiler:
            _busy()
        assert profiler.emit_events(top=1) == 1  # nothing listening, no error
