"""Tests for the declarative SLO rule registry and live engine."""

import json

import pytest

from repro import obs
from repro.obs import bounds as obs_bounds
from repro.obs import live
from repro.obs.bounds import BoundSpec
from repro.obs.live import LiveAggregator, LiveBus
from repro.obs.sink import ListSink
from repro.obs.slo import (
    DEFAULT_STALL_S,
    SloEngine,
    SloError,
    SloRule,
    default_rules,
    parse_spec,
)
from repro.obs.store import ExperimentStore


class TestParseSpec:
    def test_metric_clause(self):
        (rule,) = parse_spec("metric:oracle.query.neighbor<=50000")
        assert rule.kind == "metric"
        assert rule.target == "oracle.query.neighbor"
        assert rule.op == "<=" and rule.threshold == 50000.0

    def test_span_clause_with_quantile(self):
        (rule,) = parse_spec("span:experiment.e3:p95<=2.5")
        assert rule.kind == "span"
        assert rule.target == "experiment.e3"
        assert rule.quantile == pytest.approx(0.95)
        assert rule.threshold == 2.5

    def test_bound_clause(self):
        (rule,) = parse_spec("bound:thm13.queries>=1.1")
        assert rule.kind == "bound"
        assert rule.target == "thm13.queries"
        assert rule.op == ">=" and rule.threshold == 1.1

    def test_baseline_clause(self):
        (rule,) = parse_spec("baseline:metric:comm.wire_bits<=1.10x@HEAD")
        assert rule.kind == "baseline"
        assert rule.target == "comm.wire_bits"
        assert rule.factor == pytest.approx(1.10)
        assert rule.rev == "HEAD"
        assert rule.threshold != rule.threshold  # NaN until resolved

    def test_stall_clause(self):
        (rule,) = parse_spec("stall:5")
        assert rule.kind == "stall" and rule.threshold == 5.0

    def test_multiple_clauses_semicolon_separated(self):
        rules = parse_spec("metric:a<=1;stall:9;span:b:p99<=0.5")
        assert [r.kind for r in rules] == ["metric", "stall", "span"]

    def test_empty_spec_is_default_rules(self):
        rules = parse_spec("")
        assert [r.describe() for r in rules] == [
            r.describe() for r in default_rules()
        ]

    def test_default_rules_cover_every_registered_bound(self):
        rules = default_rules()
        bound_targets = {r.target for r in rules if r.kind == "bound"}
        assert bound_targets == {
            spec.name for spec in obs_bounds.registered_specs()
        }
        stall = [r for r in rules if r.kind == "stall"]
        assert len(stall) == 1 and stall[0].threshold == DEFAULT_STALL_S

    def test_bound_wildcard_expands(self):
        rules = parse_spec("bound:*>=1.25")
        assert rules
        assert all(r.kind == "bound" and r.threshold == 1.25 for r in rules)
        assert all(r.target != "*" for r in rules)

    def test_json_rule_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([
            {"kind": "metric", "target": "a.b", "op": "<=", "threshold": 7},
            {"name": "lat", "kind": "span", "target": "e1", "op": "<=",
             "threshold": 1.0, "quantile": 0.5},
        ]))
        rules = parse_spec(str(path))
        assert rules[0].name == "rule0" and rules[0].threshold == 7
        assert rules[1].name == "lat" and rules[1].quantile == 0.5

    def test_json_rule_file_rejects_non_list(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("{}")
        with pytest.raises(SloError, match="JSON list"):
            parse_spec(str(path))

    @pytest.mark.parametrize("bad", [
        "nonsense",
        "widget:a<=1",
        "metric:a<1",
        "metric:a<=not_a_number",
        "span:e1<=1.0",  # no quantile
        "baseline:metric:a<=1.1x",  # no revision
    ])
    def test_malformed_clause_raises(self, bad):
        with pytest.raises(SloError):
            parse_spec(bad)

    def test_rule_validation(self):
        with pytest.raises(SloError, match="kind"):
            SloRule(name="r", kind="widget", target="t", op="<=", threshold=1)
        with pytest.raises(SloError, match="op"):
            SloRule(name="r", kind="metric", target="t", op="<", threshold=1)
        with pytest.raises(SloError, match="quantile"):
            SloRule(name="r", kind="span", target="t", op="<=", threshold=1,
                    quantile=1.5)
        with pytest.raises(SloError, match="baseline"):
            SloRule(name="r", kind="baseline", target="t", op="<=",
                    threshold=1)


def _engine_on_bus(rules, **kwargs):
    bus = LiveBus()
    engine = SloEngine(rules, **kwargs).attach(bus)
    return bus, engine


class TestSloEngine:
    def test_metric_breach_on_tick(self):
        obs.STATE.enabled = True
        obs.count("slo.metric.test", 100)
        bus, engine = _engine_on_bus(parse_spec("metric:slo.metric.test<=10"))
        bus.publish({"event": "live.tick", "ts": 100.0})
        assert engine.breached
        ((key, record),) = engine.breaches.items()
        assert key[1] == "slo.metric.test"
        assert record["value"] == 100.0

    def test_metric_within_threshold_does_not_breach(self):
        obs.STATE.enabled = True
        obs.count("slo.metric.test", 5)
        bus, engine = _engine_on_bus(parse_spec("metric:slo.metric.test<=10"))
        bus.publish({"event": "live.tick", "ts": 100.0})
        assert not engine.breached

    def test_unobserved_metric_never_breaches(self):
        bus, engine = _engine_on_bus(parse_spec("metric:never.recorded<=0"))
        bus.publish({"event": "live.tick", "ts": 100.0})
        assert not engine.breached

    def test_span_quantile_ceiling(self):
        bus, engine = _engine_on_bus(parse_spec("span:slow.path:p50<=0.1"))
        for wall in (0.5, 0.6, 0.7):
            bus.publish({"event": "span", "path": "slow.path",
                         "wall_s": wall, "ts": 100.0})
        bus.publish({"event": "live.tick", "ts": 100.0})
        assert engine.breached
        (record,) = engine.breaches.values()
        assert record["value"] == pytest.approx(0.6)

    def test_bound_margin_floor(self):
        bus, engine = _engine_on_bus(parse_spec("bound:thm13.queries>=1.5"))
        bus.publish({"event": "bound_check", "kind": "row",
                     "spec": "thm13.queries", "direction": "lower",
                     "status": "ok", "measured": 120.0, "predicted": 100.0,
                     "slack": 1.0, "ts": 100.0})
        bus.publish({"event": "live.tick", "ts": 100.0})
        assert engine.breached  # margin 1.2 under the 1.5 floor

    def test_bound_check_violation_breaches_immediately(self):
        # No tick needed: an actual certified-bound violation alerts on
        # the bound_check record itself.
        bus, engine = _engine_on_bus(parse_spec("bound:thm13.queries>=1.0"))
        bus.publish({"event": "bound_check", "kind": "row",
                     "spec": "thm13.queries", "status": "violation",
                     "ratio": 0.8, "ts": 100.0})
        assert engine.breached
        (record,) = engine.breaches.values()
        assert record["reason"] == "bound_check violation"

    def test_stall_rule_flags_quiet_worker(self):
        bus, engine = _engine_on_bus(parse_spec("stall:5"))
        bus.publish({"event": "heartbeat", "worker": 77, "phase": "begin",
                     "chunk": 0, "ts": 100.0})
        bus.publish({"event": "live.tick", "ts": 102.0})
        assert not engine.breached
        bus.publish({"event": "live.tick", "ts": 110.0})
        assert engine.breached
        (record,) = engine.breaches.values()
        assert record["subject"] == "worker:77"
        assert record["reason"] == "heartbeat stalled"

    def test_breach_deduplicated_per_rule_and_subject(self):
        obs.STATE.enabled = True
        obs.count("slo.metric.test", 100)
        bus, engine = _engine_on_bus(parse_spec("metric:slo.metric.test<=10"))
        for ts in (100.0, 101.0, 102.0):
            bus.publish({"event": "live.tick", "ts": ts})
        assert len(engine.breaches) == 1

    def test_breach_emitted_as_slo_violation_event(self):
        sink = ListSink()
        obs.enable(sink)
        obs.count("slo.metric.test", 100)
        with live.publishing() as bus:
            engine = SloEngine(
                parse_spec("metric:slo.metric.test<=10")
            ).attach(bus)
            live.tick(ts=100.0)
            violations = [
                r for r in sink.records if r.get("event") == "slo.violation"
            ]
        assert len(violations) == 1
        assert violations[0]["rule"] == "metric:slo.metric.test<=10"
        assert not bus.errors  # the re-entrant tee must not explode
        assert engine.breached

    def test_event_time_gated_evaluation_without_ticks(self):
        obs.STATE.enabled = True
        obs.count("slo.metric.test", 100)
        bus, engine = _engine_on_bus(
            parse_spec("metric:slo.metric.test<=10"), eval_interval_s=0.5
        )
        bus.publish({"event": "span", "path": "p", "wall_s": 0.1, "ts": 100.0})
        assert not engine.breached  # first record only arms the clock
        bus.publish({"event": "span", "path": "p", "wall_s": 0.1, "ts": 100.9})
        assert engine.breached

    def test_finish_returns_all_breaches(self):
        obs.STATE.enabled = True
        obs.count("slo.metric.test", 100)
        bus, engine = _engine_on_bus(parse_spec("metric:slo.metric.test<=10"))
        breaches = engine.finish(now=100.0)
        assert len(breaches) == 1

    def test_summary_lines_mark_breaches(self):
        obs.STATE.enabled = True
        obs.count("slo.metric.test", 100)
        _, engine = _engine_on_bus(
            parse_spec("metric:slo.metric.test<=10;stall:30")
        )
        engine.finish(now=100.0)
        lines = engine.summary_lines()
        assert any(line.startswith("slo BREACH:") for line in lines)
        assert any(line.startswith("slo ok:") for line in lines)
        assert any(line.startswith("slo.violation") for line in lines)

    def test_detach_stops_evaluation(self):
        obs.STATE.enabled = True
        obs.count("slo.metric.test", 100)
        bus, engine = _engine_on_bus(parse_spec("metric:slo.metric.test<=10"))
        engine.detach(bus)
        bus.publish({"event": "live.tick", "ts": 100.0})
        assert not engine.breached
        assert bus.subscriber_count == 0

    def test_shared_aggregator_is_not_detached(self):
        bus = LiveBus()
        aggregator = LiveAggregator().attach(bus)
        engine = SloEngine(parse_spec("stall:30"), aggregator=aggregator)
        engine.attach(bus)
        engine.detach(bus)
        bus.publish({"event": "span", "path": "p", "wall_s": 1.0,
                     "ts": 100.0})
        assert aggregator.spans["p"].count(now=100.0) == 1


def _telemetry_blob(counters):
    events = [
        {"event": "summary",
         "metrics": {"counters": counters, "gauges": {}, "histograms": {}}},
    ]
    return "".join(json.dumps(e) + "\n" for e in events).encode()


@pytest.fixture
def baseline_store(tmp_path):
    """A synthetic store with one commit recording comm.wire_bits=1000."""
    store = ExperimentStore.init(tmp_path / "store")
    store.commit_artifacts(
        {"telemetry.jsonl": (_telemetry_blob({"comm.wire_bits": 1000.0}),
                             "telemetry")},
        message="baseline run",
    )
    return store


class TestBaselineRules:
    def test_resolution_sets_threshold_from_commit(self, baseline_store):
        engine = SloEngine(
            parse_spec("baseline:metric:comm.wire_bits<=1.10x@HEAD"),
            store_root=str(baseline_store.root),
        )
        engine.resolve_baselines()
        (rule,) = engine.rules
        assert rule.threshold == pytest.approx(1100.0)
        assert rule.resolved["reference"] == pytest.approx(1000.0)
        assert rule.resolved["rev"] == "HEAD"

    def test_resolved_rule_breaches_relative_to_baseline(self, baseline_store):
        obs.STATE.enabled = True
        obs.count("comm.wire_bits", 2000)
        bus = LiveBus()
        engine = SloEngine(
            parse_spec("baseline:metric:comm.wire_bits<=1.10x@HEAD"),
            store_root=str(baseline_store.root),
        )
        engine.resolve_baselines()
        engine.attach(bus)
        bus.publish({"event": "live.tick", "ts": 100.0})
        assert engine.breached
        (record,) = engine.breaches.values()
        assert record["value"] == 2000.0
        assert record["reference"] == pytest.approx(1000.0)

    def test_within_baseline_factor_does_not_breach(self, baseline_store):
        obs.STATE.enabled = True
        obs.count("comm.wire_bits", 1050)
        bus = LiveBus()
        engine = SloEngine(
            parse_spec("baseline:metric:comm.wire_bits<=1.10x@HEAD"),
            store_root=str(baseline_store.root),
        )
        engine.resolve_baselines()
        engine.attach(bus)
        bus.publish({"event": "live.tick", "ts": 100.0})
        assert not engine.breached

    def test_unresolved_baseline_rule_is_skipped(self):
        # NaN threshold (never resolved) must not breach — run_all treats
        # resolve_baselines failure as its own exit code instead.
        obs.STATE.enabled = True
        obs.count("comm.wire_bits", 99999)
        bus, engine = _engine_on_bus(
            parse_spec("baseline:metric:comm.wire_bits<=1.10x@HEAD")
        )
        bus.publish({"event": "live.tick", "ts": 100.0})
        assert not engine.breached

    def test_missing_store_raises(self, tmp_path):
        engine = SloEngine(
            parse_spec("baseline:metric:comm.wire_bits<=1.10x@HEAD"),
            store_root=str(tmp_path / "nowhere"),
        )
        with pytest.raises(SloError, match="experiment store"):
            engine.resolve_baselines()

    def test_unknown_revision_raises(self, baseline_store):
        engine = SloEngine(
            parse_spec("baseline:metric:comm.wire_bits<=1.10x@no-such-branch"),
            store_root=str(baseline_store.root),
        )
        with pytest.raises(SloError, match="revision"):
            engine.resolve_baselines()

    def test_commit_without_the_metric_raises(self, baseline_store):
        engine = SloEngine(
            parse_spec("baseline:metric:never.recorded<=1.10x@HEAD"),
            store_root=str(baseline_store.root),
        )
        with pytest.raises(SloError, match="no metric"):
            engine.resolve_baselines()


@pytest.fixture
def scratch_bound_registry():
    before = dict(obs_bounds._REGISTRY)
    yield
    obs_bounds._REGISTRY.clear()
    obs_bounds._REGISTRY.update(before)


class TestWildcardAgainstScratchRegistry:
    def test_expansion_follows_the_registry(self, scratch_bound_registry):
        obs_bounds._REGISTRY.clear()
        obs_bounds.register(BoundSpec(
            name="test.spec", theorem="Thm T", quantity="value:q",
            direction="lower", predicted=lambda **kw: 1.0,
            formula="1", slack=1.0,
        ))
        rules = parse_spec("bound:*>=1.0")
        assert [r.target for r in rules] == ["test.spec"]
