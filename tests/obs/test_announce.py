"""Announcement lines: format, parse, and port-race-free discovery."""

import io

import pytest

from repro.errors import ObsError
from repro.obs.announce import (
    announce,
    format_announcement,
    parse_announcements,
    read_announcement,
)


class TestFormat:
    def test_canonical_line(self):
        line = format_announcement("serving", "tcp://127.0.0.1:9000")
        assert line == "serving: tcp://127.0.0.1:9000"

    def test_label_may_not_contain_separator(self):
        with pytest.raises(ObsError, match="label"):
            format_announcement("bad: label", "tcp://h:1")

    def test_url_must_carry_scheme(self):
        with pytest.raises(ObsError, match="scheme"):
            format_announcement("serving", "127.0.0.1:9000")

    def test_announce_writes_flushed_line_to_stream(self):
        stream = io.StringIO()
        line = announce("live metrics", "http://127.0.0.1:8/metrics", stream)
        assert stream.getvalue() == line + "\n"


class TestParse:
    def test_ignores_non_announcement_chatter(self):
        text = (
            "Traceback (most recent call last):\n"
            "  note: something: odd but no scheme\n"
            "serving: tcp://127.0.0.1:41000\n"
            "progress 3/10\n"
        )
        assert parse_announcements(text) == {
            "serving": "tcp://127.0.0.1:41000"
        }

    def test_multiple_labels(self):
        text = (
            "serving: tcp://127.0.0.1:41000\n"
            "serving metrics: http://127.0.0.1:41001/metrics\n"
        )
        urls = parse_announcements(text)
        assert urls["serving"] == "tcp://127.0.0.1:41000"
        assert urls["serving metrics"] == "http://127.0.0.1:41001/metrics"

    def test_relabelled_endpoint_keeps_last_url(self):
        text = "serving: tcp://h:1\nserving: tcp://h:2\n"
        assert parse_announcements(text)["serving"] == "tcp://h:2"


class TestReadAnnouncement:
    def test_reads_label_from_log_file(self, tmp_path):
        log = tmp_path / "server.log"
        log.write_text("boot...\nserving: tcp://127.0.0.1:5555\n")
        assert (
            read_announcement(log, "serving", timeout_s=2.0)
            == "tcp://127.0.0.1:5555"
        )

    def test_timeout_message_carries_log_tail(self, tmp_path):
        log = tmp_path / "server.log"
        log.write_text("RuntimeError: bind failed\n")
        with pytest.raises(ObsError, match="bind failed"):
            read_announcement(log, "serving", timeout_s=0.2, poll_s=0.05)

    def test_missing_file_times_out_cleanly(self, tmp_path):
        with pytest.raises(ObsError, match="no 'serving' announcement"):
            read_announcement(
                tmp_path / "never.log", "serving", timeout_s=0.2, poll_s=0.05
            )

    def test_metrics_server_announces_bound_ephemeral_port(self):
        from repro.obs.exporters import MetricsServer

        stream = io.StringIO()
        server = MetricsServer(port=0).start()
        try:
            bound_url = server.url
            server.announce("live metrics", stream=stream)
        finally:
            server.stop()
        urls = parse_announcements(stream.getvalue())
        assert urls["live metrics"] == bound_url
        assert ":0/" not in bound_url  # a real kernel-assigned port
