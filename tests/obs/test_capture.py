"""Tests for repro.obs.capture: recording, digests, diffing, persistence."""

import json

import numpy as np
import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import capture
from repro.obs.capture import (
    WireCapture,
    WireMessage,
    capturing,
    first_divergence,
    payload_digest,
)
from repro.obs.sink import ListSink


class TestPayloadDigest:
    def test_none_and_bytes_and_str(self):
        assert payload_digest(None) == payload_digest(b"")
        assert payload_digest(b"abc") == payload_digest("abc")
        assert payload_digest(b"abc") != payload_digest(b"abd")

    def test_numpy_scalars_normalise(self):
        assert payload_digest(np.int64(7)) == payload_digest(7)
        assert payload_digest(np.float64(1.5)) == payload_digest(1.5)

    def test_container_order_is_canonical(self):
        assert payload_digest({1, 2, 3}) == payload_digest({3, 1, 2})
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )
        # Lists are ordered: different orders are different payloads.
        assert payload_digest([1, 2]) != payload_digest([2, 1])

    def test_graph_digest_is_edge_set_equality(self):
        from repro.graphs.digraph import DiGraph

        a = DiGraph(edges=[(0, 1, 1.0), (1, 2, 2.0)])
        b = DiGraph(edges=[(1, 2, 2.0), (0, 1, 1.0)])
        c = DiGraph(edges=[(0, 1, 1.0), (1, 2, 3.0)])
        assert payload_digest(a) == payload_digest(b)
        assert payload_digest(a) != payload_digest(c)


class TestWireCapture:
    def test_record_sequences_and_totals(self):
        cap = WireCapture()
        cap.record("alice", "bob", "k1", 8, payload=b"x")
        cap.record("bob", "alice", "k2", 2)
        assert [m.seq for m in cap.messages] == [0, 1]
        assert cap.total_bits == 10
        assert cap.parties() == ["alice", "bob"]
        assert cap.bits_by_party()["alice"] == {"sent": 8, "received": 2}
        assert cap.bits_by_kind() == {"k1": 8, "k2": 2}

    def test_negative_bits_rejected(self):
        with pytest.raises(ObsError):
            WireCapture().record("a", "b", "k", -1)

    def test_span_path_stamped(self):
        cap = WireCapture()
        with obs.enabled():
            with obs.span("outer"):
                with obs.span("inner"):
                    cap.record("a", "b", "k", 1)
        assert cap.messages[0].span == "outer/inner"

    def test_streaming_sink_gets_header_then_messages(self):
        sink = ListSink()
        cap = WireCapture(meta={"family": "t"}, sink=sink)
        cap.record("a", "b", "k", 4)
        kinds = [r.get("event") for r in sink.records]
        assert kinds == ["wire_capture", "wire"]
        assert sink.records[0]["meta"]["family"] == "t"

    def test_save_load_round_trip(self, tmp_path):
        cap = WireCapture(meta={"family": "t", "seed": 3})
        cap.record("a", "b", "k", 4, payload=b"zz")
        path = tmp_path / "c.jsonl"
        cap.save(path)
        loaded = WireCapture.load(path)
        assert loaded.meta["family"] == "t"
        assert loaded.meta["seed"] == 3
        assert len(loaded) == 1
        assert loaded.messages[0] == cap.messages[0]

    def test_load_tolerates_foreign_events(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        records = [
            {"event": "wire_capture", "meta": {"run": "x"}},
            {"event": "span", "name": "noise"},
            WireMessage(0, "a", "b", "k", 4, "d").as_record(),
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        loaded = WireCapture.load(path)
        assert len(loaded) == 1
        assert loaded.meta == {"run": "x", "capture_version": 1}

    def test_load_rejects_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ObsError):
            WireCapture.load(path)


class TestModuleHook:
    def test_record_noop_without_install_or_switch(self):
        cap = WireCapture()
        capture.record("a", "b", "k", 1)  # nothing installed
        capture.install(cap)
        try:
            capture.record("a", "b", "k", 1)  # obs disabled
        finally:
            capture.uninstall(cap)
        assert len(cap) == 0

    def test_record_reaches_all_installed_captures(self):
        first, second = WireCapture(), WireCapture()
        with obs.enabled():
            with capturing(first):
                with capturing(second):
                    capture.record("a", "b", "k", 3, payload=b"p")
        assert len(first) == len(second) == 1
        assert first.messages[0].digest == second.messages[0].digest

    def test_capturing_installs_the_passed_empty_capture(self):
        # Regression: an empty WireCapture is falsy (len 0); capturing()
        # must still install the object it was handed, not a fresh one.
        cap = WireCapture(meta={"family": "t"})
        with obs.enabled():
            with capturing(cap) as yielded:
                assert yielded is cap
                assert capture.active() is cap
                capture.record("a", "b", "k", 1)
        assert len(cap) == 1

    def test_wire_counters_mirrored(self):
        with obs.enabled():
            with capturing() as cap:
                capture.record("a", "b", "k", 5)
                capture.record("a", "b", "k", 7)
        assert len(cap) == 2
        assert obs.REGISTRY.counter("wire.messages").value == 2
        assert obs.REGISTRY.counter("wire.bits").value == 12


class TestFirstDivergence:
    def _pair(self):
        a, b = WireCapture(), WireCapture()
        for cap in (a, b):
            cap.record("alice", "bob", "k", 4, payload=b"one")
            cap.record("bob", "alice", "r", 2, payload=b"two")
        return a, b

    def test_identical_transcripts_match(self):
        a, b = self._pair()
        assert first_divergence(a, b) is None

    def test_field_divergence_pinpointed(self):
        a, b = self._pair()
        b.messages[1] = WireMessage(1, "bob", "alice", "r", 3, "odd")
        d = first_divergence(a, b)
        assert d["index"] == 1
        assert d["field"] == "bits"
        assert d["expected"] == 2
        assert d["actual"] == 3

    def test_length_divergence(self):
        a, b = self._pair()
        b.record("alice", "bob", "extra", 1)
        d = first_divergence(a, b)
        assert d == {
            "index": 2, "field": "length", "expected": 2, "actual": 3
        }
