# Convenience targets for the reproduction repository.

.PHONY: install test bench tables api all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

tables:
	python -m repro.experiments.run_all

api:
	python scripts/gen_api_reference.py

all: test bench
