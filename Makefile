# Convenience targets for the reproduction repository.

.PHONY: install test bench bench-report tables trace-report api all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-report:
	PYTHONPATH=src python scripts/bench_report.py

tables:
	python -m repro.experiments.run_all

trace-report:
	PYTHONPATH=src python scripts/trace_report.py telemetry.jsonl

api:
	python scripts/gen_api_reference.py

all: test bench
