# Convenience targets for the reproduction repository.

.PHONY: install test bench bench-report tables trace-report api all \
	bounds-check dashboard

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-report:
	PYTHONPATH=src python scripts/bench_report.py

tables:
	python -m repro.experiments.run_all

trace-report:
	PYTHONPATH=src python scripts/trace_report.py telemetry.jsonl

bounds-check:
	PYTHONPATH=src python -m repro.experiments.run_all --strict-bounds

dashboard:
	PYTHONPATH=src python scripts/obs_db.py ingest --telemetry telemetry.jsonl
	PYTHONPATH=src python scripts/obs_dashboard.py

api:
	python scripts/gen_api_reference.py

all: test bench
