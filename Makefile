# Convenience targets for the reproduction repository.

.PHONY: install test bench bench-report bench-parallel bench-kernels \
	bench-live bench-memory bench-serving tables trace-report api all \
	bounds-check dashboard wire-check obs-commit obs-diff obs-fsck \
	obs-watch slo-check memory-check serve

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-report:
	PYTHONPATH=src python scripts/bench_report.py

bench-parallel:
	PYTHONPATH=src python scripts/bench_report.py --pr5-only

bench-kernels:
	PYTHONPATH=src python scripts/bench_report.py --pr6-only

bench-live:
	PYTHONPATH=src python scripts/bench_report.py --pr8-only

bench-memory:
	PYTHONPATH=src python scripts/bench_report.py --pr9-only

bench-serving:
	PYTHONPATH=src python scripts/cut_bench.py

serve:
	PYTHONPATH=src python -m repro.serving.server --port 0 \
		--metrics-port 0 --slo

tables:
	python -m repro.experiments.run_all

trace-report:
	PYTHONPATH=src python scripts/trace_report.py telemetry.jsonl

bounds-check:
	PYTHONPATH=src python -m repro.experiments.run_all --strict-bounds

wire-check:
	PYTHONPATH=src python scripts/wire_replay.py record foreach --seed 7 \
		--out wire-check.capture.jsonl
	PYTHONPATH=src python scripts/wire_replay.py verify wire-check.capture.jsonl
	rm -f wire-check.capture.jsonl

dashboard:
	PYTHONPATH=src python scripts/obs_db.py ingest --telemetry telemetry.jsonl
	PYTHONPATH=src python scripts/obs_dashboard.py

obs-commit:
	PYTHONPATH=src python -m repro.experiments.run_all \
		--telemetry telemetry.jsonl --capture-wire --commit-run

obs-diff:
	PYTHONPATH=src python scripts/obs_store.py diff HEAD~1 HEAD

obs-fsck:
	PYTHONPATH=src python scripts/obs_store.py fsck

obs-watch:
	PYTHONPATH=src python scripts/obs_watch.py --follow live.jsonl

slo-check:
	PYTHONPATH=src python -m repro.experiments.run_all --slo \
		--telemetry telemetry.jsonl

memory-check:
	PYTHONPATH=src python -m repro.experiments.run_all --memory \
		--strict-bounds --telemetry telemetry.jsonl

api:
	python scripts/gen_api_reference.py

all: test bench
