"""E6 — Figure 2 + Lemma 5.5: ``MINCUT(G_{x,y}) = 2 INT(x, y)``.

Across random ``(x, y)`` with planted intersection counts, three
independent min-cut algorithms (Stoer–Wagner, Karger, Gomory–Hu) must
all return exactly ``2 INT(x, y)`` whenever ``sqrt(N) >= 3 INT`` — the
identity the whole Theorem 1.3 reduction rests on.  The witness cut
``(A u A', B u B')`` (Figure 2's red/green split) is also checked.
"""

import numpy as np

from repro.experiments.harness import Table
from repro.graphs.gomory_hu import gomory_hu_tree
from repro.graphs.mincut import karger_min_cut, stoer_wagner
from repro.localquery.gxy import build_gxy
from repro.utils.rng import ensure_rng


def _planted(side, gamma, seed):
    gen = ensure_rng(seed)
    n = side * side
    x = gen.integers(0, 2, size=n).astype(np.int8)
    y = np.zeros(n, dtype=np.int8)
    planted = gen.choice(n, size=gamma, replace=False)
    x[planted] = 1
    y[planted] = 1
    return build_gxy(x, y)


def test_lemma55_identity(benchmark, emit_table):
    table = Table(
        title="Figure 2 / Lemma 5.5 - MINCUT(G_{x,y}) = 2*INT(x,y) "
        "(3 algorithms agree)",
        columns=[
            "sqrt_N", "INT", "2INT", "stoer_wagner", "karger",
            "gomory_hu", "witness_cut", "hypothesis",
        ],
    )
    for side, gamma, seed in (
        (6, 1, 0), (6, 2, 1), (9, 2, 2), (9, 3, 3), (12, 4, 4), (12, 2, 5),
    ):
        gxy = _planted(side, gamma, seed)
        sw, _ = stoer_wagner(gxy.graph)
        kg, _ = karger_min_cut(gxy.graph, trials=300, rng=seed)
        gh = gomory_hu_tree(gxy.graph).global_min_cut_value()
        table.add_row(
            sqrt_N=side,
            INT=gxy.intersection(),
            **{"2INT": 2 * gxy.intersection()},
            stoer_wagner=sw,
            karger=kg,
            gomory_hu=gh,
            witness_cut=gxy.part_cut_value(),
            hypothesis=gxy.lemma_55_applicable(),
        )
    table.add_note(
        "all columns agree at 2*INT whenever sqrt(N) >= 3*INT; the witness "
        "cut (A u A', B u B') achieves the minimum by construction"
    )
    emit_table(table)
    gxy = _planted(9, 2, 6)
    benchmark.pedantic(
        lambda: stoer_wagner(gxy.graph), rounds=1, iterations=1
    )


def test_hypothesis_boundary(benchmark, emit_table):
    """Below the sqrt(N) >= 3 INT threshold the identity can fail —
    the lemma's hypothesis is not vacuous."""
    table = Table(
        title="Lemma 5.5 hypothesis boundary - identity vs planted INT",
        columns=["sqrt_N", "INT", "hypothesis_holds", "mincut", "2INT",
                 "identity_holds"],
    )
    side = 6
    for gamma in (1, 2, 3, 4, 5):
        gxy = _planted(side, gamma, seed=10 + gamma)
        value, _ = stoer_wagner(gxy.graph)
        table.add_row(
            sqrt_N=side,
            INT=gxy.intersection(),
            hypothesis_holds=gxy.lemma_55_applicable(),
            mincut=value,
            **{"2INT": 2 * gxy.intersection()},
            identity_holds=bool(abs(value - 2 * gxy.intersection()) < 1e-9),
        )
    table.add_note(
        "whenever hypothesis_holds the identity holds; beyond it the min "
        "cut may fall below 2*INT (vertex cuts of size sqrt(N) take over)"
    )
    emit_table(table)
    gxy = _planted(side, 2, 20)
    benchmark.pedantic(lambda: stoer_wagner(gxy.graph), rounds=1, iterations=1)
