"""E7 — Figures 3–6: the 2*gamma edge-disjoint path systems.

The Lemma 5.5 proof exhibits, for every vertex pair (u, v), at least
``2 gamma`` edge-disjoint paths, case by case: Figure 3 (u, v in the
same part), Figure 4 (u in A, v in A'), Figures 5–6 (the two path sets
for u in A, v in B'), and the symmetric Case 4 (u in A, v in B).  By
Menger's theorem the path count equals the unit-capacity max flow, so
each case is certified here by a flow computation over *every* pair of
that case (not just the figures' representatives).
"""

import numpy as np

from repro.experiments.harness import Table
from repro.graphs.connectivity import edge_disjoint_path_count
from repro.localquery.gxy import (
    PART_A,
    PART_A_PRIME,
    PART_B,
    PART_B_PRIME,
    build_gxy,
)
from repro.utils.rng import ensure_rng

CASES = (
    ("figure3: u,v in A", PART_A, PART_A),
    ("figure4: u in A, v in A'", PART_A, PART_A_PRIME),
    ("figures5-6: u in A, v in B'", PART_A, PART_B_PRIME),
    ("case4: u in A, v in B", PART_A, PART_B),
)


def _planted(side, gamma, seed):
    gen = ensure_rng(seed)
    n = side * side
    x = gen.integers(0, 2, size=n).astype(np.int8)
    y = np.zeros(n, dtype=np.int8)
    planted = gen.choice(n, size=gamma, replace=False)
    x[planted] = 1
    y[planted] = 1
    return build_gxy(x, y)


def _case_minimum(gxy, part_u, part_v):
    """Min edge-disjoint path count over all pairs of the given case."""
    best = None
    for u in gxy.part(part_u):
        for v in gxy.part(part_v):
            if u == v:
                continue
            count = edge_disjoint_path_count(gxy.graph, u, v)
            best = count if best is None else min(best, count)
    return best


def test_all_four_cases(benchmark, emit_table):
    table = Table(
        title="Figures 3-6 - minimum edge-disjoint paths per case vs 2*gamma",
        columns=["case", "sqrt_N", "gamma", "min_paths", "2gamma", "certified"],
    )
    for side, gamma, seed in ((6, 1, 0), (6, 2, 1), (9, 3, 2)):
        gxy = _planted(side, gamma, seed)
        for label, part_u, part_v in CASES:
            minimum = _case_minimum(gxy, part_u, part_v)
            table.add_row(
                case=label,
                sqrt_N=side,
                gamma=gamma,
                min_paths=minimum,
                **{"2gamma": 2 * gamma},
                certified=bool(minimum >= 2 * gamma),
            )
    table.add_note(
        "every pair in every case admits >= 2*gamma edge-disjoint paths "
        "(Menger = unit-capacity max flow), certifying 2*gamma-connectivity"
    )
    emit_table(table)
    gxy = _planted(6, 2, 3)
    benchmark.pedantic(
        lambda: _case_minimum(gxy, PART_A, PART_B_PRIME),
        rounds=1,
        iterations=1,
    )
