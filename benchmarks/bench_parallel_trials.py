"""PR5 — the parallel trial-execution engine.

Two claims, each a table:

1. **Determinism.**  The engine's contract is bit-identity: a for-each
   Index game and a for-all Gap-Hamming game produce byte-identical
   result digests at every worker count.  Parallelism is a pure
   wall-clock optimisation — no statistical caveats, no seed drift.
2. **Fan-out throughput.**  A blocking workload (trials dominated by
   waiting, the distributed-experiment shape) completes ~jobs times
   faster under the pool; a CPU-bound workload scales with physical
   cores.  The acceptance gate (>= 3x on 4 workers) lives in
   ``scripts/bench_report.py --pr5-only`` -> ``BENCH_PR5.json``.
"""

import hashlib
import time

import numpy as np

from repro.experiments.harness import Table
from repro.foreach_lb.game import run_index_game
from repro.foreach_lb.params import ForEachParams
from repro.parallel import TrialPool, fork_available, run_trials
from repro.sketch.noisy import NoisyForEachSketch

SLEEP_TRIALS = 12
SLEEP_S = 0.15


def _digest(obj):
    return hashlib.sha256(repr(obj).encode()).hexdigest()[:16]


def _foreach_digest(jobs):
    params = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2)
    result = run_index_game(
        params,
        lambda g, r: NoisyForEachSketch(g, epsilon=0.1, rng=r),
        rounds=10,
        rng=33,
        jobs=jobs,
    )
    return _digest(
        (result.summary, result.mean_sketch_bits, result.encoding_failure_rate)
    )


def _blocking_trial(rng):
    time.sleep(SLEEP_S)
    return float(rng.random())


def _run_blocking(jobs):
    start = time.perf_counter()
    results = run_trials(
        _blocking_trial, SLEEP_TRIALS, np.random.default_rng(1), jobs=jobs
    )
    return time.perf_counter() - start, results


def test_digest_identical_across_worker_counts(benchmark, emit_table):
    table = Table(
        title="PR5 - for-each game result digest vs worker count (10 rounds)",
        columns=["jobs", "digest", "matches_serial"],
    )
    serial = _foreach_digest(jobs=1)
    table.add_row(jobs=1, digest=serial, matches_serial=True)
    worker_counts = (2, 4) if fork_available() else ()
    for jobs in worker_counts:
        digest = _foreach_digest(jobs=jobs)
        assert digest == serial
        table.add_row(jobs=jobs, digest=digest, matches_serial=True)
    table.add_note(
        "bit-identical digests: the pool changes wall time, never results"
    )
    emit_table(table)
    benchmark.pedantic(lambda: _foreach_digest(jobs=1), rounds=1, iterations=1)


def test_blocking_fanout_speedup(benchmark, emit_table):
    table = Table(
        title="PR5 - blocking workload (%d trials x %.2fs) vs worker count"
        % (SLEEP_TRIALS, SLEEP_S),
        columns=["jobs", "wall_s", "speedup", "digest"],
    )
    serial_s, serial_results = _run_blocking(jobs=1)
    table.add_row(
        jobs=1, wall_s=serial_s, speedup=1.0, digest=_digest(serial_results)
    )
    worker_counts = (2, 4) if fork_available() else ()
    for jobs in worker_counts:
        wall_s, results = _run_blocking(jobs=jobs)
        assert results == serial_results
        table.add_row(
            jobs=jobs,
            wall_s=wall_s,
            speedup=serial_s / wall_s,
            digest=_digest(results),
        )
    table.add_note(
        "blocking trials fan out ~jobs-fold; digests stay equal to serial"
    )
    emit_table(table)
    benchmark.pedantic(
        lambda: _run_blocking(jobs=4 if fork_available() else 1),
        rounds=1,
        iterations=1,
    )


def test_pool_overhead_small_items(benchmark, emit_table):
    # The other side of the ledger: chunking amortises per-task overhead,
    # so tiny items should not be catastrophically slower than inline.
    items = list(range(512))

    def fanned():
        return TrialPool(jobs=2).map(lambda x: x * x, items)

    start = time.perf_counter()
    inline = [x * x for x in items]
    inline_s = time.perf_counter() - start
    start = time.perf_counter()
    assert fanned() == inline
    pool_s = time.perf_counter() - start
    table = Table(
        title="PR5 - pool overhead on 512 trivial items",
        columns=["path", "wall_s"],
    )
    table.add_row(path="inline", wall_s=inline_s)
    table.add_row(path="pool_jobs2", wall_s=pool_s)
    table.add_note(
        "chunked dispatch: overhead is per-chunk (jobs*factor), not per-item"
    )
    emit_table(table)
    benchmark.pedantic(fanned, rounds=1, iterations=1)
