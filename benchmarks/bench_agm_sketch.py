"""E10 (supplementary) — the [AGM12] linear-sketch substrate.

The paper's introduction anchors its database relevance on [AGM12]:
``O~(n)`` linear measurements suffice to sketch a graph's cut structure.
This bench exercises our from-scratch implementation:

1. **Sub-linear footprint.**  Sketch size (machine words) versus edge
   count across increasingly dense graphs on fixed n — the sketch does
   not grow with m (linearity absorbs the stream), while the raw edge
   list does.
2. **Functionality.**  Spanning-forest recovery success and the
   min(k, mincut) connectivity certificate against ground truth.
"""

from repro.experiments.harness import Table
from repro.graphs.connectivity import edge_connectivity
from repro.graphs.generators import random_regularish_ugraph
from repro.graphs.ugraph import UGraph
from repro.sketch.agm import (
    AGMSketch,
    certify_k_connectivity,
    sketch_spanning_forest,
)
from repro.sketch.serialization import graph_size_bits


def _dense(n, degree, seed):
    return random_regularish_ugraph(n, degree, rng=seed)


def test_footprint_vs_edge_count(benchmark, emit_table):
    table = Table(
        title="E10a / [AGM12] - sketch words vs edge count (n=24 fixed)",
        columns=["m", "sketch_words", "edgelist_bits", "forest_ok"],
    )
    for degree in (4, 8, 16, 22):
        g = _dense(24, degree, seed=degree)
        sketch = AGMSketch.of_graph(g, seed=degree)
        forest = sketch_spanning_forest(sketch)
        table.add_row(
            m=g.num_edges,
            sketch_words=sketch.size_words(),
            edgelist_bits=graph_size_bits(g),
            forest_ok=bool(
                forest.is_connected() and forest.num_edges == g.num_nodes - 1
            ),
        )
    table.add_note(
        "sketch_words is constant in m (O~(n) linear measurements); the "
        "edge list grows with m — AGM's point, and why sketches matter "
        "for distributed/streaming graph databases"
    )
    emit_table(table)
    g = _dense(24, 8, seed=0)
    benchmark.pedantic(
        lambda: sketch_spanning_forest(AGMSketch.of_graph(g, seed=1)),
        rounds=1,
        iterations=1,
    )


def test_connectivity_certificate(benchmark, emit_table):
    table = Table(
        title="E10b / [AGM12] - forest-peeling connectivity certificate",
        columns=["n", "degree", "true_conn", "k", "certified", "exact"],
    )
    for n, degree, k, seed in ((10, 6, 6, 0), (12, 6, 3, 1), (14, 8, 8, 2)):
        g = _dense(n, degree, seed=seed)
        true_conn = edge_connectivity(g)
        certified = certify_k_connectivity(g, k=k, seed=seed)
        table.add_row(
            n=n,
            degree=degree,
            true_conn=true_conn,
            k=k,
            certified=certified,
            exact=bool(certified == min(k, true_conn)),
        )
    table.add_note(
        "peeling k maximal forests from k independent sketch groups "
        "yields min(k, edge connectivity) — decode misses can only "
        "under-report"
    )
    emit_table(table)
    g = _dense(10, 6, seed=3)
    benchmark.pedantic(
        lambda: certify_k_connectivity(g, k=4, seed=4), rounds=1, iterations=1
    )
