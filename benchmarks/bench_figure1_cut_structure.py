"""E5 — Figure 1: the cut structure of the for-each lower bound.

Figure 1 shows the decoder's query cut ``S = A u (R \\ B)``: the edges
leaving ``S`` are the forward edges ``A -> B`` (weight
``Theta(log 1/eps)`` each) and the backward edges ``(R\\B) -> (L\\A)``
(weight ``1/beta`` each).  We regenerate the figure as an accounting
table: for each parameterization, decompose the actual cut value of an
encoded graph into those classes and check the totals the proof relies
on — forward ``Theta(log(1/eps)/eps^2)``, backward exactly
``(sqrt(beta)/eps - 1/(2 eps))^2 / beta``, total
``Theta(log(1/eps)/eps^2)``.
"""

import math

from repro.experiments.harness import Table
from repro.foreach_lb.decoder import ForEachDecoder
from repro.foreach_lb.encoder import ForEachEncoder
from repro.foreach_lb.params import ForEachParams
from repro.utils.bitstrings import random_signstring


def _decompose(params, seed):
    encoder = ForEachEncoder(params)
    s = random_signstring(params.string_length, rng=seed)
    encoded = encoder.encode(s)
    decoder = ForEachDecoder(params)
    plan = decoder.query_plans(0)[0]  # the (A, B) query of bit 0
    total = encoded.graph.cut_weight(plan.side)
    backward = plan.fixed_backward
    forward = total - backward
    return encoded, forward, backward, total


def test_figure1_cut_decomposition(benchmark, emit_table):
    table = Table(
        title="Figure 1 - decomposition of the decoder cut S = A u (R\\B)",
        columns=[
            "inv_eps", "sqrt_beta", "forward_w", "backward_w", "cut_value",
            "backward_exact", "fwd/log(1/eps)eps^-2",
        ],
    )
    for inv_eps, sqrt_beta in ((4, 1), (4, 2), (8, 1), (8, 2), (16, 1)):
        params = ForEachParams(inv_eps=inv_eps, sqrt_beta=sqrt_beta, num_groups=2)
        _, forward, backward, total = _decompose(params, seed=inv_eps + sqrt_beta)
        k = params.group_size
        half = inv_eps // 2
        backward_exact = (k - half) ** 2 / params.beta
        scale = math.log(inv_eps) * inv_eps**2
        table.add_row(
            inv_eps=inv_eps,
            sqrt_beta=sqrt_beta,
            forward_w=forward,
            backward_w=backward,
            cut_value=total,
            backward_exact=backward_exact,
            **{"fwd/log(1/eps)eps^-2": forward / scale},
        )
    table.add_note(
        "backward_w matches the closed form (sqrt(beta)/eps - 1/(2eps))^2/beta;"
        " forward_w / (log(1/eps)/eps^2) is Theta(1) - Figure 1's accounting"
    )
    emit_table(table)
    params = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2)
    benchmark.pedantic(lambda: _decompose(params, 0), rounds=1, iterations=1)


def test_figure1_balance_certificate(benchmark, emit_table):
    from repro.graphs.balance import edgewise_balance_bound
    from repro.graphs.connectivity import is_strongly_connected

    table = Table(
        title="Figure 1 graphs are O(beta log(1/eps))-balanced",
        columns=["inv_eps", "sqrt_beta", "beta", "edgewise_bound",
                 "bound/(beta*3c1*ln(1/eps))", "strongly_connected"],
    )
    for inv_eps, sqrt_beta in ((4, 1), (4, 2), (8, 1)):
        params = ForEachParams(inv_eps=inv_eps, sqrt_beta=sqrt_beta, num_groups=2)
        encoded, _, _, _ = _decompose(params, seed=99)
        bound = edgewise_balance_bound(encoded.graph)
        ceiling = params.beta * encoded.weight_ceiling
        table.add_row(
            inv_eps=inv_eps,
            sqrt_beta=sqrt_beta,
            beta=params.beta,
            edgewise_bound=bound,
            **{"bound/(beta*3c1*ln(1/eps))": bound / ceiling},
            strongly_connected=is_strongly_connected(encoded.graph),
        )
    table.add_note("ratio <= 1: the construction meets its declared balance")
    emit_table(table)
    params = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2)
    benchmark.pedantic(lambda: _decompose(params, 1), rounds=1, iterations=1)
