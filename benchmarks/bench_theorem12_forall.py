"""E2 — Theorem 1.2: the for-all cut-sketch lower bound.

Two sweeps mirroring E1:

1. **Decoder validity.**  Gap-Hamming game success for exact and
   (1 +- c2 eps) for-all sketches — the reduction's guarantee is a
   success rate >= 2/3, which (via Lemma 4.1) prices the sketch at
   ``Omega(n beta / eps^2)`` bits.
2. **Bit-count scaling.**  The encoded-information column against the
   ``n beta / eps^2`` prediction as n, beta, 1/eps^2 vary.
"""

from repro.experiments.harness import Table
from repro.forall_lb.game import run_gap_hamming_game
from repro.forall_lb.params import ForAllParams
from repro.sketch.exact import ExactCutSketch
from repro.sketch.noisy import NoisyForAllSketch

ROUNDS = 20


def _game(params, sketch_eps, rng, rounds=ROUNDS):
    if sketch_eps == 0.0:
        factory = lambda g, r: ExactCutSketch(g)
    else:
        factory = lambda g, r: NoisyForAllSketch(
            g, epsilon=sketch_eps, seed=int(r.integers(1 << 30))
        )
    return run_gap_hamming_game(params, factory, rounds=rounds, rng=rng)


def test_decoder_validity(benchmark, emit_table):
    params = ForAllParams(inv_eps_sq=8, beta=1, num_groups=2)
    table = Table(
        title="Theorem 1.2 - Gap-Hamming game success vs for-all sketch error "
        "(n=%d, beta=%d, eps=%.3f)"
        % (params.num_nodes, params.beta, params.epsilon),
        columns=["sketch_error", "success_rate", "fano_bits", "subset_queries"],
    )
    for sketch_eps in (0.0, 0.25 * params.epsilon, params.epsilon):
        result = _game(params, sketch_eps, rng=int(sketch_eps * 1000) + 1)
        table.add_row(
            sketch_error=sketch_eps,
            success_rate=result.success_rate,
            fano_bits=result.fano_bits(),
            subset_queries=result.mean_queries,
        )
    table.add_note(
        "Bob exploits the for-all guarantee by ranking all half-size "
        "subsets Q of L (Lemma 4.4); success >= 2/3 certifies the "
        "Omega(n beta/eps^2) size"
    )
    emit_table(table)
    benchmark.pedantic(
        lambda: _game(params, 0.0, rng=0, rounds=5), rounds=1, iterations=1
    )


def test_bit_count_scaling(benchmark, emit_table):
    table = Table(
        title="Theorem 1.2 - encoded bits vs n*beta/eps^2",
        columns=[
            "n", "beta", "inv_eps_sq", "total_bits", "success_rate",
            "fano_bits", "predicted", "fano/predicted",
        ],
    )
    configs = [
        ForAllParams(inv_eps_sq=4, beta=1, num_groups=2),
        ForAllParams(inv_eps_sq=4, beta=1, num_groups=3),
        ForAllParams(inv_eps_sq=4, beta=2, num_groups=2),
        ForAllParams(inv_eps_sq=8, beta=1, num_groups=2),
    ]
    for params in configs:
        result = _game(params, 0.1 * params.epsilon, rng=params.num_nodes)
        predicted = params.num_nodes * params.beta * params.inv_eps_sq
        table.add_row(
            n=params.num_nodes,
            beta=params.beta,
            inv_eps_sq=params.inv_eps_sq,
            total_bits=params.total_bits,
            success_rate=result.success_rate,
            fano_bits=result.fano_bits(),
            predicted=predicted,
            **{"fano/predicted": result.fano_bits() / predicted},
        )
    table.add_note(
        "total_bits tracks n*beta/eps^2 exactly by construction; the fano "
        "column shows how much of it the decoder certifies at finite size"
    )
    emit_table(table)
    params = configs[0]
    benchmark.pedantic(
        lambda: _game(params, 0.0, rng=2, rounds=5), rounds=1, iterations=1
    )
