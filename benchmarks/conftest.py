"""Shared benchmark configuration.

Every benchmark prints a fixed-width experiment table (the artifact the
paper comparison in EXPERIMENTS.md quotes) and registers one timed
kernel with pytest-benchmark.  ``-s`` is not required: tables are
printed via the ``emit_table`` fixture, which writes to the terminal
reporter so output survives capture.
"""

import pytest


@pytest.fixture
def emit_table(request):
    """Return a function that prints a harness Table past pytest capture."""
    def _emit(table):
        capman = request.config.pluginmanager.getplugin("capturemanager")
        text = "\n" + table.render() + "\n"
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(text)
        else:
            print(text)
    return _emit
