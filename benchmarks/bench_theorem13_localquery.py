"""E3 — Theorem 1.3: the local-query min-cut lower bound.

The theorem: ``Omega(min{m, m/(eps^2 k)})`` queries are necessary, and
(Theorem 5.7) sufficient.  Regenerated from the constructive side:

1. **The min{m, m/(eps^2 k)} curve.**  Queries of a single
   VERIFY-GUESS(k, eps) call — the step every correct algorithm must in
   effect perform — as eps sweeps: ``1/eps^2`` growth until the
   sampling probability clamps at 1 and the count saturates at
   ``Theta(m)``.  The same sweep over k shows the ``1/k`` factor.
2. **The communication transfer (Lemma 5.6).**  Running the estimator
   through the G_{x,y} CommOracle: total bits <= 2 * queries — the
   bridge that converts the 2-SUM bound into the query bound.
"""

from repro.comm.twosum import sample_twosum_instance
from repro.experiments.harness import Table
from repro.graphs.generators import planted_min_cut_ugraph
from repro.localquery.mincut_query import estimate_min_cut
from repro.localquery.oracle import GraphOracle
from repro.localquery.reduction import solve_twosum_via_mincut
from repro.localquery.verify_guess import verify_guess_trials

#: A small oversampling constant keeps the un-clamped regime reachable
#: at simulator scale (the default is tuned for estimator reliability).
BENCH_CONSTANT = 0.5


def _verify_queries(graph, k, eps, seeds=(0, 1, 2), jobs=None):
    results = verify_guess_trials(
        lambda: GraphOracle(graph),
        t=float(k),
        eps=eps,
        seeds=seeds,
        constant=BENCH_CONSTANT,
        jobs=jobs,
    )
    return sum(float(r.neighbor_queries) for r in results) / len(results)


def test_query_scaling_in_eps_and_k(benchmark, emit_table):
    table = Table(
        title="Theorem 1.3 - VERIFY-GUESS(k, eps) queries vs "
        "min{2m, c*m*ln(n)/(eps^2 k)}",
        columns=["m", "k", "eps", "queries", "bound", "queries/bound"],
    )
    workloads = [
        (40, 20),  # cluster size, planted k
        (40, 10),
        (32, 8),
    ]
    for cluster, k in workloads:
        graph, _ = planted_min_cut_ugraph(cluster, k, rng=k)
        m = graph.num_edges
        for eps in (0.6, 0.45, 0.3, 0.2, 0.12):
            queries = _verify_queries(graph, k, eps)
            bound = min(2 * m, m / (eps * eps * k))
            table.add_row(
                m=m, k=k, eps=eps, queries=queries, bound=bound,
                **{"queries/bound": queries / bound},
            )
    table.add_note(
        "queries grow ~1/eps^2 until the p=1 clamp, then saturate at "
        "Theta(m): the min{m, m/(eps^2 k)} shape of Theorem 1.3"
    )
    emit_table(table)
    graph, _ = planted_min_cut_ugraph(40, 20, rng=20)
    benchmark.pedantic(
        lambda: _verify_queries(graph, 20, 0.3, seeds=(0,)),
        rounds=1,
        iterations=1,
    )


def test_communication_transfer(benchmark, emit_table):
    table = Table(
        title="Lemma 5.6 - query-to-communication transfer on G_{x,y}",
        columns=[
            "pairs", "length", "queries", "bits", "bits<=2q",
            "disj_est", "disj_true", "within_budget",
        ],
    )

    def algorithm(oracle, gen):
        return estimate_min_cut(oracle, eps=0.25, rng=gen).value

    for pairs, length, seed in ((16, 16, 0), (25, 25, 1), (36, 36, 2)):
        inst = sample_twosum_instance(
            pairs, length, intersecting_fraction=0.15, rng=seed
        )
        result = solve_twosum_via_mincut(inst, algorithm, rng=seed + 10)
        table.add_row(
            pairs=pairs,
            length=length,
            queries=result.queries,
            bits=result.bits_exchanged,
            **{"bits<=2q": result.bits_exchanged <= 2 * result.queries},
            disj_est=result.disj_estimate,
            disj_true=result.true_disj,
            within_budget=result.within_budget,
        )
    table.add_note(
        "every local query costs <= 2 bits, so the Omega(tL/alpha) 2-SUM "
        "bound (Thm 5.4) transfers to Omega(min{m, m/(eps^2 k)}) queries"
    )
    emit_table(table)
    inst = sample_twosum_instance(16, 16, intersecting_fraction=0.15, rng=3)
    benchmark.pedantic(
        lambda: solve_twosum_via_mincut(inst, algorithm, rng=4),
        rounds=1,
        iterations=1,
    )
