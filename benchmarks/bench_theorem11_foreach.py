"""E1 — Theorem 1.1: the for-each cut-sketch lower bound.

Regenerates the theorem's content as two sweeps:

1. **Accuracy phase transition.**  Bob's Index-game success rate as the
   sketch's multiplicative error grows.  Valid sketches (error at most
   ``c2 eps / ln(1/eps)``) must clear 2/3; far beyond the threshold the
   rate collapses toward 1/2.  The surviving success at threshold error
   is exactly what forces any for-each sketch to carry
   ``Omega(n sqrt(beta)/eps)`` bits (via Lemma 3.1 + Fano).
2. **Bit-count scaling.**  The recoverable information (string length x
   Fano factor) as a function of n, beta, and 1/eps, against the
   ``n sqrt(beta)/eps`` prediction: the ratio column should be flat.
"""

import math

from repro.experiments.harness import Table
from repro.foreach_lb.game import run_index_game
from repro.foreach_lb.params import ForEachParams
from repro.sketch.noisy import NoisyForEachSketch

ROUNDS = 25


def _game(params, sketch_eps, rng):
    return run_index_game(
        params,
        lambda g, r: NoisyForEachSketch(g, epsilon=sketch_eps, rng=r),
        rounds=ROUNDS,
        rng=rng,
    )


def test_accuracy_phase_transition(benchmark, emit_table):
    params = ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2)
    tolerance = params.epsilon / math.log(params.inv_eps)
    table = Table(
        title="Theorem 1.1 - Index game success vs sketch error "
        "(n=%d, beta=%d, eps=%.2f)" % (params.num_nodes, params.beta, params.epsilon),
        columns=["sketch_error", "rel_to_threshold", "success_rate", "fano_bits"],
    )
    for factor in (0.02, 0.2, 1.0, 4.0, 16.0):
        sketch_eps = min(0.95, factor * tolerance * 0.25)
        result = _game(params, sketch_eps, rng=int(factor * 100))
        table.add_row(
            sketch_error=sketch_eps,
            rel_to_threshold=factor,
            success_rate=result.success_rate,
            fano_bits=result.fano_bits(),
        )
    table.add_note(
        "success >= 2/3 while error <= c2*eps/ln(1/eps); decays toward 1/2 beyond"
    )
    emit_table(table)
    benchmark.pedantic(
        lambda: _game(params, 0.02, rng=0), rounds=1, iterations=1
    )


def test_bit_count_scaling(benchmark, emit_table):
    table = Table(
        title="Theorem 1.1 - recoverable bits vs n*sqrt(beta)/eps",
        columns=[
            "n", "beta", "inv_eps", "string_bits", "success_rate",
            "fano_bits", "predicted", "fano/predicted",
        ],
    )
    configs = [
        ForEachParams(inv_eps=2, sqrt_beta=1, num_groups=2),
        ForEachParams(inv_eps=2, sqrt_beta=1, num_groups=4),
        ForEachParams(inv_eps=2, sqrt_beta=2, num_groups=2),
        ForEachParams(inv_eps=4, sqrt_beta=1, num_groups=2),
        ForEachParams(inv_eps=4, sqrt_beta=2, num_groups=2),
        ForEachParams(inv_eps=8, sqrt_beta=1, num_groups=2),
    ]
    for params in configs:
        tolerance = 0.1 * params.epsilon / max(1.0, math.log(params.inv_eps))
        result = _game(params, tolerance, rng=params.num_nodes)
        predicted = params.num_nodes * params.sqrt_beta * params.inv_eps
        table.add_row(
            n=params.num_nodes,
            beta=params.beta,
            inv_eps=params.inv_eps,
            string_bits=params.string_length,
            success_rate=result.success_rate,
            fano_bits=result.fano_bits(),
            predicted=predicted,
            **{"fano/predicted": result.fano_bits() / predicted},
        )
    table.add_note(
        "fano/predicted stays Theta(1): the construction packs "
        "Omega(n sqrt(beta)/eps) recoverable bits into the sketch"
    )
    emit_table(table)
    params = configs[0]
    benchmark.pedantic(
        lambda: _game(params, 0.01, rng=1), rounds=1, iterations=1
    )
