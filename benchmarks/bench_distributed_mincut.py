"""E9 — distributed min-cut: the application motivating Section 1.

Compare the two coordinator strategies as the target accuracy tightens:

* ``forall_only`` ships eps-accurate sparsifiers — shipped bits grow
  like ``1/eps^2`` (and Theorem 1.2 says no for-all scheme can avoid
  it);
* ``hybrid`` ships constant-accuracy sparsifiers and refines candidate
  cuts with per-cut queries costing ``O(log 1/eps)`` bits — total
  communication is essentially flat in eps.

Accuracy is reported against the true min cut of the union graph.
"""

from repro.distributed.coordinator import distributed_min_cut
from repro.distributed.server import partition_edges
from repro.experiments.harness import Table
from repro.graphs.mincut import stoer_wagner
from repro.graphs.ugraph import UGraph


def _workload():
    g = UGraph(nodes=range(36))
    for u in range(36):
        for v in range(u + 1, 36):
            g.add_edge(u, v, 1.0)
    servers = partition_edges(g, 2, rng=1)
    true_value, _ = stoer_wagner(g)
    return g, servers, true_value


def test_communication_vs_eps(benchmark, emit_table):
    g, servers, true_value = _workload()
    table = Table(
        title="E9 - distributed min-cut communication vs eps "
        "(K36, 2 servers, true k=%d)" % int(true_value),
        columns=[
            "eps", "strategy", "total_bits", "sketch_bits", "query_bits",
            "estimate", "rel_err",
        ],
    )
    for eps in (0.4, 0.3, 0.2):
        for strategy in ("forall_only", "hybrid"):
            result = distributed_min_cut(
                servers, epsilon=eps, strategy=strategy, rng=7,
                sampling_constant=0.3,
            )
            table.add_row(
                eps=eps,
                strategy=strategy,
                total_bits=result.total_bits,
                sketch_bits=result.sketch_bits,
                query_bits=result.query_bits,
                estimate=result.value,
                rel_err=abs(result.value - true_value) / true_value,
            )
    table.add_note(
        "forall_only bits grow ~1/eps^2 (the Theorem 1.2 floor); hybrid "
        "bits are ~flat: candidate-cut queries pay only log(1/eps)"
    )
    emit_table(table)
    benchmark.pedantic(
        lambda: distributed_min_cut(
            servers, epsilon=0.3, strategy="hybrid", rng=8,
            sampling_constant=0.3,
        ),
        rounds=1,
        iterations=1,
    )


def test_hybrid_accuracy_holds_at_tiny_eps(benchmark, emit_table):
    g, servers, true_value = _workload()
    table = Table(
        title="E9 - hybrid strategy accuracy at small eps",
        columns=["eps", "estimate", "true", "rel_err", "candidates"],
    )
    for eps in (0.1, 0.05, 0.02):
        result = distributed_min_cut(
            servers, epsilon=eps, strategy="hybrid", rng=9,
            sampling_constant=0.3,
        )
        table.add_row(
            eps=eps,
            estimate=result.value,
            true=true_value,
            rel_err=abs(result.value - true_value) / true_value,
            candidates=result.candidates_scored,
        )
    table.add_note(
        "accuracy tightens with eps at near-constant shipped bits: the "
        "for-each refinement carries the entire eps dependence"
    )
    emit_table(table)
    benchmark.pedantic(
        lambda: distributed_min_cut(
            servers, epsilon=0.05, strategy="hybrid", rng=10,
            sampling_constant=0.3,
        ),
        rounds=1,
        iterations=1,
    )
