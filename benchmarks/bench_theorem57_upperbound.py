"""E4 — Theorem 5.7: the modified VERIFY-GUESS search (§5.4 ablation).

The paper's observation: the *binary-search* phase does not need
accuracy ``eps`` — a constant ``beta_0`` suffices, and only one refined
call pays ``eps``.  We split query counts into search phase and refined
phase:

* the naive variant's search queries grow like ``1/eps^2`` (each guess
  pays eps) — the source of its ``1/eps^4`` worst-case total;
* the modified variant's search cost is flat in eps;
* both pay the same refined call, so the total ratio opens up as eps
  shrinks until the sampling clamp flattens everything at Theta(m).

The worst-case ``kappa(eps)``-driven blow-up (a late acceptance at
``t ~ kappa * k``) needs adversarial instances beyond simulator scale;
EXPERIMENTS.md records this as the one asymptotic effect observed only
through its search-phase component.
"""

from repro.experiments.harness import Table
from repro.graphs.generators import planted_min_cut_ugraph
from repro.localquery.mincut_query import estimate_min_cut
from repro.localquery.oracle import GraphOracle

BENCH_CONSTANT = 0.5


def _run(graph, eps, variant, seeds=(0, 1, 2)):
    search = refined = 0.0
    value = 0.0
    for seed in seeds:
        oracle = GraphOracle(graph)
        estimate = estimate_min_cut(
            oracle, eps=eps, rng=seed, variant=variant,
            constant=BENCH_CONSTANT, search_accuracy=0.5,
        )
        search += estimate.search_queries
        refined += estimate.refined_queries
        value = estimate.value
    n = len(seeds)
    return search / n, refined / n, value


def test_search_phase_ablation(benchmark, emit_table):
    graph, k = planted_min_cut_ugraph(40, 20, rng=0)
    table = Table(
        title="Theorem 5.7 / Section 5.4 - search accuracy ablation "
        "(m=%d, k=%d)" % (graph.num_edges, k),
        columns=[
            "eps", "naive_search_q", "modified_search_q", "search_ratio",
            "refined_q", "naive_est", "modified_est",
        ],
    )
    for eps in (0.6, 0.45, 0.3, 0.2):
        naive_s, naive_r, naive_v = _run(graph, eps, "naive")
        mod_s, mod_r, mod_v = _run(graph, eps, "modified")
        table.add_row(
            eps=eps,
            naive_search_q=naive_s,
            modified_search_q=mod_s,
            search_ratio=naive_s / max(1.0, mod_s),
            refined_q=mod_r,
            naive_est=naive_v,
            modified_est=mod_v,
        )
    table.add_note(
        "naive search queries grow ~1/eps^2 (until the p=1 clamp); the "
        "modified search is flat: only the single refined call pays eps"
    )
    emit_table(table)
    benchmark.pedantic(
        lambda: _run(graph, 0.3, "modified", seeds=(0,)),
        rounds=1,
        iterations=1,
    )


def test_accuracy_preserved_by_modification(benchmark, emit_table):
    """The modification must not cost accuracy: both variants return a
    (1 +- eps)-quality estimate on planted instances."""
    table = Table(
        title="Theorem 5.7 - estimate quality, naive vs modified",
        columns=["k", "eps", "naive_rel_err", "modified_rel_err"],
    )
    for cluster, k in ((32, 8), (40, 20)):
        graph, _ = planted_min_cut_ugraph(cluster, k, rng=k)
        for eps in (0.4, 0.2):
            errs = {}
            for variant in ("naive", "modified"):
                _, _, value = _run(graph, eps, variant, seeds=(5, 6, 7))
                errs[variant] = abs(value - k) / k
            table.add_row(
                k=k, eps=eps,
                naive_rel_err=errs["naive"],
                modified_rel_err=errs["modified"],
            )
    table.add_note("both variants stay within the eps band on planted k")
    emit_table(table)
    graph, _ = planted_min_cut_ugraph(32, 8, rng=8)
    benchmark.pedantic(
        lambda: _run(graph, 0.4, "naive", seeds=(0,)), rounds=1, iterations=1
    )
