"""E8 — the upper-bound side: sparsifier size versus accuracy.

Context for the lower bounds (Section 1's table of knowns): a for-all
cut sparsifier needs ``~1/eps^2`` edges per node, and the balanced
directed reduction multiplies the budget by ``poly(beta)``.  Two sweeps:

1. **Size vs eps** on a dense undirected graph: kept-edge count grows
   ~``1/eps^2`` until every edge is kept (the trivial cap), while the
   typical (mean over all 2^15 cuts) error tracks the design eps.
2. **Directed balance tax**: for beta-balanced digraphs, the directed
   sparsifier designs for undirected error ``eps/(1+beta)``, so kept
   size grows with beta at fixed eps — the ``poly(beta)/eps^2`` shape
   whose optimality Theorem 1.2 certifies.
"""

import numpy as np

from repro.experiments.harness import Table
from repro.graphs.cuts import (
    all_directed_cut_values,
    all_undirected_cut_values,
    max_cut_error,
    max_directed_cut_error,
)
from repro.graphs.generators import random_balanced_digraph
from repro.graphs.ugraph import UGraph
from repro.sketch.directed import BalancedDigraphSparsifier
from repro.sketch.sparsifier import SparsifierSketch
from repro.sketch.spectral import SpectralSketch


def _dense(n):
    g = UGraph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v, 1.0)
    return g


def test_undirected_size_vs_eps(benchmark, emit_table):
    g = _dense(16)
    table = Table(
        title="E8a - undirected sparsifier: kept edges and worst cut error "
        "vs eps (K16, m=%d)" % g.num_edges,
        columns=["eps", "kept_edges", "kept/m", "bits",
                 "mean_cut_error", "worst_cut_error"],
    )
    for eps in (0.9, 0.6, 0.4, 0.25):
        sketch = SparsifierSketch.from_undirected(
            g, epsilon=eps, rng=17, constant=0.4, connectivity="exact"
        )
        sparse = sketch.sparse_graph
        kept = sparse.num_edges // 2  # stored once per direction
        worst = max_cut_error(g, sketch.query)
        errors = [
            abs(sketch.query(set(side)) - value) / value
            for side, value in all_undirected_cut_values(g)
            if value > 0
        ]
        table.add_row(
            eps=eps,
            kept_edges=kept,
            **{"kept/m": kept / g.num_edges},
            bits=sketch.size_bits(),
            mean_cut_error=float(np.mean(errors)),
            worst_cut_error=worst,
        )
    table.add_note(
        "kept edges grow ~1/eps^2 until the all-edges cap; the typical "
        "(mean) cut error tracks the design eps, while the worst single "
        "cut can exceed it at this deliberately small oversampling constant"
    )
    emit_table(table)
    benchmark.pedantic(
        lambda: SparsifierSketch.from_undirected(
            g, epsilon=0.5, rng=1, constant=0.4
        ),
        rounds=1,
        iterations=1,
    )


def test_directed_balance_tax(benchmark, emit_table):
    table = Table(
        title="E8b - balanced digraph sparsifier: size vs beta at fixed eps",
        columns=["beta", "eps", "kept_pairs", "m_pairs", "kept/m",
                 "mean_dir_error", "worst_dir_error"],
    )
    eps = 0.8
    for beta in (1.0, 2.0, 4.0):
        g = random_balanced_digraph(14, beta=beta, density=0.9, rng=int(beta))
        sketch = BalancedDigraphSparsifier(
            g, epsilon=eps, beta=beta, rng=int(beta), constant=0.4
        )
        sparse = sketch.sparse_graph
        kept_pairs = len(
            {frozenset((u, v)) for u, v, _ in sparse.edges()}
        )
        m_pairs = len({frozenset((u, v)) for u, v, _ in g.edges()})
        worst = max_directed_cut_error(g, sketch.query)
        errors = [
            abs(sketch.query(set(side)) - value) / value
            for side, value in all_directed_cut_values(g)
            if value > 0
        ]
        table.add_row(
            beta=beta,
            eps=eps,
            kept_pairs=kept_pairs,
            m_pairs=m_pairs,
            **{"kept/m": kept_pairs / m_pairs},
            mean_dir_error=float(np.mean(errors)),
            worst_dir_error=worst,
        )
    table.add_note(
        "the directed design pays eps/(1+beta) undirected accuracy, so "
        "kept size rises with beta - the poly(beta)/eps^2 upper-bound "
        "shape that Theorems 1.1/1.2 prove tight in eps"
    )
    emit_table(table)
    g = random_balanced_digraph(12, beta=2.0, density=0.8, rng=2)
    benchmark.pedantic(
        lambda: BalancedDigraphSparsifier(
            g, epsilon=0.8, beta=2.0, rng=3, constant=0.4
        ),
        rounds=1,
        iterations=1,
    )


def test_spectral_vs_cut_sparsifier(benchmark, emit_table):
    """E8c: the related-work strengthening — effective-resistance
    (spectral) sampling vs plain cut sampling at equal design eps."""
    g = _dense(16)
    table = Table(
        title="E8c - spectral ([SS11]) vs cut sparsifier on K16",
        columns=["eps", "cut_kept", "spectral_kept",
                 "cut_mean_err", "spectral_mean_err"],
    )
    for eps in (0.9, 0.6, 0.4):
        cut_sketch = SparsifierSketch.from_undirected(
            g, epsilon=eps, rng=21, constant=0.4, connectivity="exact"
        )
        spectral = SpectralSketch(g, epsilon=eps, rng=21, constant=0.4)
        cut_errors = []
        spectral_errors = []
        for side, value in all_undirected_cut_values(g):
            cut_errors.append(abs(cut_sketch.query(set(side)) - value) / value)
            spectral_errors.append(abs(spectral.query(set(side)) - value) / value)
        table.add_row(
            eps=eps,
            cut_kept=cut_sketch.sparse_graph.num_edges // 2,
            spectral_kept=spectral.sparse_graph.num_edges,
            cut_mean_err=float(np.mean(cut_errors)),
            spectral_mean_err=float(np.mean(spectral_errors)),
        )
    table.add_note(
        "both shrink ~1/eps^2; the spectral sample additionally preserves "
        "all quadratic forms (checked in tests), cuts being the special "
        "case x = 1_S"
    )
    emit_table(table)
    benchmark.pedantic(
        lambda: SpectralSketch(g, epsilon=0.6, rng=22, constant=0.4),
        rounds=1,
        iterations=1,
    )
