"""E11 — the CSR cut-kernel layer: batched vs per-cut evaluation.

The acceptance bar for the kernel layer: evaluating 4096 random cuts
through one :meth:`CSRGraph.cut_weights` call must beat 4096 individual
``DiGraph.cut_weight`` calls by at least 5x.  The table reports both
paths at several graph sizes plus the enumeration engines of
``all_directed_cut_values``; the registered pytest-benchmark kernel is
the 4096-cut batch on the largest graph.
"""

import time

import numpy as np

from repro.experiments.harness import Table
from repro.graphs.cuts import all_directed_cut_values
from repro.graphs.generators import random_balanced_digraph

#: Cuts per batch in the headline measurement (matches the PR gate).
BATCH_CUTS = 4096


def _random_sides(graph, k, rng):
    nodes = graph.nodes()
    n = len(nodes)
    sides = []
    for _ in range(k):
        size = int(rng.integers(1, n))
        picks = rng.choice(n, size=size, replace=False)
        sides.append(frozenset(nodes[i] for i in picks))
    return sides


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_cut_weights_speedup(benchmark, emit_table):
    table = Table(
        title="E11a - 4096 random cuts: batched CSR kernel vs dict loop",
        columns=["n", "m", "dict_s", "csr_s", "speedup"],
    )
    rng = np.random.default_rng(7)
    for n in (64, 128, 256):
        g = random_balanced_digraph(n, beta=2.0, density=0.3, rng=int(n))
        sides = _random_sides(g, BATCH_CUTS, rng)
        csr = g.freeze()
        member = csr.membership_matrix(sides)

        dict_s = _time(lambda: [g.cut_weight(side) for side in sides])
        csr_s = _time(lambda: csr.cut_weights(member))
        table.add_row(
            n=n,
            m=g.num_edges,
            dict_s=dict_s,
            csr_s=csr_s,
            speedup=dict_s / csr_s,
        )
    table.add_note(
        "one BLAS bilinear form M w_out - (M W).M replaces 4096 python "
        "dict scans; the gap widens with graph size"
    )
    emit_table(table)

    g = random_balanced_digraph(256, beta=2.0, density=0.3, rng=256)
    sides = _random_sides(g, BATCH_CUTS, rng)
    csr = g.freeze()
    member = csr.membership_matrix(sides)
    benchmark.pedantic(lambda: csr.cut_weights(member), rounds=3, iterations=1)


def test_enumeration_engines(benchmark, emit_table):
    table = Table(
        title="E11b - full 2^(n-1) directed cut enumeration: csr vs dict engine",
        columns=["n", "cuts", "dict_s", "csr_s", "speedup"],
    )
    for n in (12, 14, 16):
        g = random_balanced_digraph(n, beta=2.0, density=0.5, rng=n)
        cuts = 2 ** (n - 1) - 1
        dict_s = _time(
            lambda: list(all_directed_cut_values(g, engine="dict")), repeats=1
        )
        csr_s = _time(
            lambda: list(all_directed_cut_values(g, engine="csr")), repeats=1
        )
        table.add_row(
            n=n, cuts=cuts, dict_s=dict_s, csr_s=csr_s, speedup=dict_s / csr_s
        )
    table.add_note(
        "the csr engine batches enumeration in 1024-cut blocks; identical "
        "values and order to the dict engine (property-tested)"
    )
    emit_table(table)

    g = random_balanced_digraph(14, beta=2.0, density=0.5, rng=14)
    benchmark.pedantic(
        lambda: list(all_directed_cut_values(g, engine="csr")),
        rounds=3,
        iterations=1,
    )
