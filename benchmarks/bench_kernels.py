"""E12 — kernel backends: python reference vs compiled native kernels.

The PR gate (written to BENCH_PR6.json by ``scripts/bench_report.py
--pr6-only``): the native backend must reach a >= 5x geometric-mean
speedup over the python reference across the three ported hot kernels —
Dinic max-flow solves, Karger–Stein edge contraction, and Lemma 3.2
coefficient decoding.  The tables here report the same workloads at
several sizes, plus two honest non-gate rows: batched codeword
combination (where the python "reference" is already a vectorized BLAS
``matmul`` and native C is *not* expected to win) and the
shared-memory result transport against the pickle pipe.

Every backend pair is run on identical inputs; outputs are asserted
equal before a row is reported — a speedup over wrong answers is not a
speedup.
"""

import time

import numpy as np
import pytest

from repro.experiments.harness import Table
from repro.graphs.generators import random_balanced_digraph
from repro.kernels import KernelUnavailableError, reference, using_backend
from repro.linalg.hadamard import Lemma32Matrix
from repro.parallel import TrialPool, fork_available, shmipc


def _native_or_skip():
    from repro.kernels import native

    try:
        return native.load_native()
    except KernelUnavailableError as exc:
        pytest.skip(f"no native kernel toolchain: {exc}")


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_dinic_backend_speedup(benchmark, emit_table):
    _native_or_skip()
    table = Table(
        title="E12a - Dinic max-flow solves: python vs native kernel",
        columns=["n", "m", "flows", "python_s", "native_s", "speedup"],
    )
    for n in (100, 200):
        g = random_balanced_digraph(n, beta=2.0, density=0.15, rng=int(n))
        csr = g.freeze()
        sinks = list(range(1, 6))

        def flows():
            return [csr.max_flow(0, t).value for t in sinks]

        with using_backend("python"):
            python_s = _time(flows)
            python_values = flows()
        with using_backend("native"):
            native_s = _time(flows)
            native_values = flows()
        assert python_values == native_values
        table.add_row(
            n=n,
            m=g.num_edges,
            flows=len(sinks),
            python_s=python_s,
            native_s=native_s,
            speedup=python_s / native_s,
        )
    table.add_note(
        "identical flat arc arrays and traversal order; the residual "
        "network is built once per snapshot and reset between solves"
    )
    emit_table(table)

    g = random_balanced_digraph(200, beta=2.0, density=0.15, rng=200)
    csr = g.freeze()
    with using_backend("native"):
        benchmark.pedantic(
            lambda: [csr.max_flow(0, t) for t in range(1, 6)],
            rounds=3,
            iterations=1,
        )


def test_contraction_kernel_speedup(emit_table):
    nat = _native_or_skip()
    table = Table(
        title="E12b - edge-contraction kernel: python vs native",
        columns=["n", "m", "python_s", "native_s", "speedup"],
    )
    gen = np.random.default_rng(12)
    for n, m in ((200, 4000), (400, 12000)):
        tails = gen.integers(0, n, size=m).astype(np.int64)
        heads = (tails + 1 + gen.integers(0, n - 1, size=m)) % n
        heads = heads.astype(np.int64)
        weights = gen.random(m) + 0.5
        uniforms = gen.random(n)

        def run(kernel):
            parent = np.arange(n, dtype=np.int64)
            result = kernel(tails, heads, weights, parent, n, 2, uniforms)
            return result, parent

        python_s = _time(lambda: run(reference.contract_to))
        native_s = _time(lambda: run(nat.contract_to))
        (r_py, p_py), (r_nat, p_nat) = run(reference.contract_to), run(
            nat.contract_to
        )
        assert r_py == r_nat and np.array_equal(p_py, p_nat)
        table.add_row(
            n=n,
            m=m,
            python_s=python_s,
            native_s=native_s,
            speedup=python_s / native_s,
        )
    table.add_note(
        "one union-find array replaces per-step state clones; both "
        "backends consume the same pre-drawn uniform stream"
    )
    emit_table(table)


def test_hadamard_decode_speedup(emit_table):
    _native_or_skip()
    table = Table(
        title="E12c - Lemma 3.2 coefficient decode: python vs native",
        columns=["side", "coeffs", "python_s", "native_s", "speedup"],
    )
    gen = np.random.default_rng(3)
    for side in (8, 16):
        matrix = Lemma32Matrix(side)
        x = gen.integers(-30, 30, size=matrix.row_length).astype(np.float64)

        def decode_all():
            return [
                matrix.decode_coefficient(x, t)
                for t in range(matrix.num_rows)
            ]

        with using_backend("python"):
            python_s = _time(decode_all)
            python_values = decode_all()
        with using_backend("native"):
            native_s = _time(decode_all)
            native_values = decode_all()
        assert python_values == native_values
        table.add_row(
            side=side,
            coeffs=matrix.num_rows,
            python_s=python_s,
            native_s=native_s,
            speedup=python_s / native_s,
        )
    table.add_note(
        "native decodes one (i, j) row product in place of the python "
        "kron materialization per coefficient"
    )
    emit_table(table)


def test_hadamard_combine_is_an_honest_non_gate(emit_table):
    _native_or_skip()
    table = Table(
        title="E12d - batched codeword combine (informative, not gated)",
        columns=["side", "batch", "python_s", "native_s", "ratio"],
    )
    gen = np.random.default_rng(4)
    for side, batch in ((16, 256), (32, 64)):
        matrix = Lemma32Matrix(side)
        signs = gen.choice([-1, 1], size=(batch, matrix.num_rows)).astype(
            np.int8
        )
        with using_backend("python"):
            python_s = _time(lambda: matrix.combine_many(signs))
            a = matrix.combine_many(signs)
        with using_backend("native"):
            native_s = _time(lambda: matrix.combine_many(signs))
            b = matrix.combine_many(signs)
        assert np.array_equal(a, b)
        table.add_row(
            side=side,
            batch=batch,
            python_s=python_s,
            native_s=native_s,
            ratio=python_s / native_s,
        )
    table.add_note(
        "the python path is already one BLAS matmul - native C loops do "
        "not beat it and this row is excluded from the 5x gate"
    )
    emit_table(table)


@pytest.mark.skipif(not fork_available(), reason="fork start method required")
def test_shm_transport_speedup(emit_table, monkeypatch):
    table = Table(
        title="E12e - result transport: shared-memory arena vs pickle pipe",
        columns=["trials", "kib_each", "pickle_s", "shm_s", "speedup"],
    )
    monkeypatch.setenv(shmipc.SHM_SLOT_ENV, str(64 << 20))

    def payload(i):
        return np.full(65536, float(i))  # 512 KiB per result

    items = list(range(128))

    def timed(enabled):
        monkeypatch.setenv(shmipc.SHM_ENV, "1" if enabled else "0")
        pool = TrialPool(jobs=2, chunk_factor=2)
        best = _time(lambda: pool.map(payload, items))
        return best, dict(pool.last_transport_stats)

    pickle_s, pickle_stats = timed(False)
    shm_s, shm_stats = timed(True)
    assert pickle_stats["shm_chunks"] == 0
    assert shm_stats["pickle_chunks"] == 0
    table.add_row(
        trials=len(items),
        kib_each=512,
        pickle_s=pickle_s,
        shm_s=shm_s,
        speedup=pickle_s / shm_s,
    )
    table.add_note(
        "numeric result tables skip the executor pickle pipe; value "
        "lists are identical either way (tests/parallel/test_shmipc.py)"
    )
    emit_table(table)
